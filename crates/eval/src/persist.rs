//! Binary persistence for trained evaluation networks.
//!
//! Training the Table 2 / Figure 13 analogs takes minutes at full
//! budget; persisting the trained `MoeNet`s lets benchmark reruns and
//! downstream analyses reuse them. The format is a small versioned
//! little-endian layout (no external serialization crates, per
//! DESIGN.md's dependency policy):
//!
//! ```text
//! magic "KTNET\x01" | 7 x u32 config | f32 arrays in fixed order
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use crate::net::{MoeNet, NetConfig};

const MAGIC: &[u8; 6] = b"KTNET\x01";

/// Errors from persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a KTNET file or unsupported version.
    BadMagic,
    /// Config failed validation or arrays were truncated.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not a KTNET v1 file"),
            PersistError::Corrupt(what) => write!(f, "corrupt net file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn write_f32s(w: &mut impl Write, data: &[f32]) -> io::Result<()> {
    for &v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read, n: usize) -> Result<Vec<f32>, PersistError> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)
        .map_err(|_| PersistError::Corrupt(format!("expected {n} f32s")))?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

/// Serializes a network to a writer.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save(net: &MoeNet, w: &mut impl Write) -> Result<(), PersistError> {
    let c = net.config();
    w.write_all(MAGIC)?;
    for v in [
        c.input_dim,
        c.dim,
        c.hidden,
        c.n_blocks,
        c.n_experts,
        c.top_k,
        c.n_classes,
    ] {
        w.write_all(&(v as u32).to_le_bytes())?;
    }
    write_f32s(w, &net.input_w)?;
    for block in &net.blocks {
        write_f32s(w, &block.gate)?;
        for e in 0..c.n_experts {
            write_f32s(w, &block.w1[e])?;
            write_f32s(w, &block.w2[e])?;
        }
    }
    write_f32s(w, &net.head_w)?;
    Ok(())
}

/// Deserializes a network from a reader.
///
/// # Errors
///
/// Returns [`PersistError::BadMagic`] for foreign files and
/// [`PersistError::Corrupt`] for invalid configs or truncated payloads.
pub fn load(r: &mut impl Read) -> Result<MoeNet, PersistError> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut fields = [0u32; 7];
    for f in &mut fields {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        *f = u32::from_le_bytes(b);
    }
    let cfg = NetConfig {
        input_dim: fields[0] as usize,
        dim: fields[1] as usize,
        hidden: fields[2] as usize,
        n_blocks: fields[3] as usize,
        n_experts: fields[4] as usize,
        top_k: fields[5] as usize,
        n_classes: fields[6] as usize,
    };
    cfg.validate().map_err(PersistError::Corrupt)?;
    let mut net = MoeNet::random(cfg, 0);
    net.input_w = read_f32s(r, cfg.dim * cfg.input_dim)?;
    for block in &mut net.blocks {
        block.gate = read_f32s(r, cfg.n_experts * cfg.dim)?;
        for e in 0..cfg.n_experts {
            block.w1[e] = read_f32s(r, cfg.hidden * cfg.dim)?;
            block.w2[e] = read_f32s(r, cfg.dim * cfg.hidden)?;
        }
    }
    net.head_w = read_f32s(r, cfg.n_classes * cfg.dim)?;
    Ok(net)
}

/// Saves a network to a file.
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn save_file(net: &MoeNet, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    save(net, &mut f)
}

/// Loads a network from a file.
///
/// # Errors
///
/// Propagates I/O and deserialization errors.
pub fn load_file(path: impl AsRef<Path>) -> Result<MoeNet, PersistError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::net::EvalMode;
    use crate::tasks::{Task, TaskKind};
    use crate::train::{train, TrainConfig};

    fn small_net(seed: u64) -> MoeNet {
        MoeNet::random(
            NetConfig {
                input_dim: 8,
                dim: 10,
                hidden: 6,
                n_blocks: 2,
                n_experts: 4,
                top_k: 2,
                n_classes: 3,
            },
            seed,
        )
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let net = small_net(1);
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        let x = vec![0.25f32; 8];
        assert_eq!(
            net.forward(&x, EvalMode::Standard),
            loaded.forward(&x, EvalMode::Standard)
        );
        assert_eq!(
            net.forward(&x, EvalMode::Deferred { n_immediate: 1 }),
            loaded.forward(&x, EvalMode::Deferred { n_immediate: 1 })
        );
    }

    #[test]
    fn trained_net_survives_persistence() {
        let task = Task::generate(TaskKind::Blobs, 8, 200, 80, 2);
        let mut net = MoeNet::random(
            NetConfig {
                input_dim: 8,
                dim: 12,
                hidden: 12,
                n_blocks: 2,
                n_experts: 4,
                top_k: 2,
                n_classes: 6,
            },
            3,
        );
        train(
            &mut net,
            &task,
            &TrainConfig {
                epochs: 8,
                ..Default::default()
            },
        );
        let acc_before = accuracy(&net, &task.test, EvalMode::Standard);
        let dir = std::env::temp_dir().join("ktnet_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trained.ktnet");
        save_file(&net, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        let acc_after = accuracy(&loaded, &task.test, EvalMode::Standard);
        assert_eq!(acc_before, acc_after);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_rejected() {
        let junk = b"definitely not a net";
        assert!(matches!(
            load(&mut junk.as_slice()),
            Err(PersistError::BadMagic) | Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let net = small_net(4);
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        buf.truncate(buf.len() - 11);
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let net = small_net(5);
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        // Corrupt top_k (field 6 of 7) to exceed n_experts.
        let off = 6 + 5 * 4;
        buf[off..off + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }
}
