//! Trainable MoE residual networks with the three inference modes.
//!
//! `MoeNet` is the smallest architecture that exhibits the phenomenon
//! Expert Deferral relies on: residual blocks whose MoE contributions
//! can be delayed by one block with limited damage (§4.1, "the inherent
//! robustness of modern Transformer models to delayed intermediate
//! computations, primarily due to residual connections").
//!
//! Blocks compute `x_{k+1} = x_k + sum_{i in topk} p_i * E_i(x_k)` with
//! softmax gate scores `p` and two-layer ReLU experts. Inference
//! supports [`EvalMode::Standard`], [`EvalMode::Deferred`] (the bottom
//! `top_k - n_immediate` experts' outputs land one block later; the
//! final block never defers) and [`EvalMode::Skipped`] (those experts
//! are dropped), matching `kt_model::ExecMode` semantics exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Architecture of an evaluation network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Residual stream width.
    pub dim: usize,
    /// Expert hidden width.
    pub hidden: usize,
    /// Number of residual MoE blocks.
    pub n_blocks: usize,
    /// Experts per block.
    pub n_experts: usize,
    /// Experts activated per input.
    pub top_k: usize,
    /// Output classes.
    pub n_classes: usize,
}

impl NetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.input_dim == 0
            || self.dim == 0
            || self.hidden == 0
            || self.n_blocks == 0
            || self.n_classes == 0
        {
            return Err("all dimensions must be nonzero".into());
        }
        if self.top_k == 0 || self.top_k > self.n_experts {
            return Err(format!(
                "top_k {} must be in 1..={}",
                self.top_k, self.n_experts
            ));
        }
        Ok(())
    }
}

/// Inference mode (mirrors `kt_model::ExecMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Standard execution.
    Standard,
    /// Defer all but the `n_immediate` best experts by one block.
    Deferred {
        /// Immediate experts per block.
        n_immediate: usize,
    },
    /// Drop all but the `n_kept` best experts.
    Skipped {
        /// Retained experts per block.
        n_kept: usize,
    },
}

/// One MoE block's parameters (flat row-major matrices).
#[derive(Debug, Clone)]
pub(crate) struct MoeBlock {
    /// Gate, `n_experts x dim`.
    pub gate: Vec<f32>,
    /// Per expert: first layer, `hidden x dim`.
    pub w1: Vec<Vec<f32>>,
    /// Per expert: second layer, `dim x hidden`.
    pub w2: Vec<Vec<f32>>,
}

/// The evaluation network.
#[derive(Debug, Clone)]
pub struct MoeNet {
    pub(crate) cfg: NetConfig,
    /// Input projection, `dim x input_dim`.
    pub(crate) input_w: Vec<f32>,
    pub(crate) blocks: Vec<MoeBlock>,
    /// Classifier head, `n_classes x dim`.
    pub(crate) head_w: Vec<f32>,
}

/// `y += a * M x` for row-major `M` (`rows x cols`).
pub(crate) fn matvec_acc(m: &[f32], x: &[f32], y: &mut [f32], a: f32) {
    let cols = x.len();
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &m[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (w, v) in row.iter().zip(x) {
            acc += w * v;
        }
        *yr += a * acc;
    }
}

/// `y += a * M^T x` for row-major `M` (`rows x cols`), `x` of `rows`.
pub(crate) fn matvec_t_acc(m: &[f32], x: &[f32], y: &mut [f32], a: f32) {
    let cols = y.len();
    for (r, &xv) in x.iter().enumerate() {
        let row = &m[r * cols..(r + 1) * cols];
        for (yv, w) in y.iter_mut().zip(row) {
            *yv += a * xv * w;
        }
    }
}

pub(crate) fn softmax(v: &mut [f32]) {
    let max = v.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
}

/// RMS-normalizes `x` into a fresh vector, returning `(normed, rms)`.
///
/// Blocks consume the *normalized* stream (pre-norm, as transformers
/// do) while the residual accumulates raw outputs — the property that
/// makes delayed contributions benign (§4.1).
pub(crate) fn rms_norm(x: &[f32]) -> (Vec<f32>, f32) {
    let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let r = (ms + 1e-6).sqrt();
    (x.iter().map(|v| v / r).collect(), r)
}

/// Backward of [`rms_norm`]: accumulates `d/dx` of `f(norm(x))` into
/// `dx` given `dn = df/dnorm`, the normalized vector `n` and the rms
/// `r`.
pub(crate) fn rms_norm_backward(dn: &[f32], n: &[f32], r: f32, dx: &mut [f32]) {
    let d = n.len() as f32;
    let dot: f32 = dn.iter().zip(n).map(|(a, b)| a * b).sum();
    for ((dxv, &dnv), &nv) in dx.iter_mut().zip(dn).zip(n) {
        *dxv += (dnv - nv * dot / d) / r;
    }
}

/// Indices of the `k` largest values, descending.
pub(crate) fn topk_indices(v: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[b].total_cmp(&v[a]));
    idx.truncate(k);
    idx
}

impl MoeNet {
    /// Creates a network with seeded random parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations (construction-time programming
    /// error; validate first for fallible flows).
    pub fn random(cfg: NetConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid NetConfig");
        let mut rng = StdRng::seed_from_u64(seed);
        let init = |rows: usize, cols: usize, rng: &mut StdRng| {
            let std = (2.0 / cols as f32).sqrt();
            let mut m = vec![0.0f32; rows * cols];
            kt_tensor::rng::fill_normal(rng, &mut m, std);
            m
        };
        let input_w = init(cfg.dim, cfg.input_dim, &mut rng);
        let blocks = (0..cfg.n_blocks)
            .map(|_| MoeBlock {
                gate: init(cfg.n_experts, cfg.dim, &mut rng),
                w1: (0..cfg.n_experts)
                    .map(|_| init(cfg.hidden, cfg.dim, &mut rng))
                    .collect(),
                w2: (0..cfg.n_experts)
                    // Down-scale the second layer so residual updates
                    // start small (stable training).
                    .map(|_| {
                        let mut m = init(cfg.dim, cfg.hidden, &mut rng);
                        for v in &mut m {
                            *v *= 0.3;
                        }
                        m
                    })
                    .collect(),
            })
            .collect();
        let head_w = init(cfg.n_classes, cfg.dim, &mut rng);
        MoeNet {
            cfg,
            input_w,
            blocks,
            head_w,
        }
    }

    /// Network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Computes an expert's output `E_i(x)` (no gate weighting).
    pub(crate) fn expert_out(&self, block: &MoeBlock, e: usize, x: &[f32]) -> Vec<f32> {
        let mut h = vec![0.0f32; self.cfg.hidden];
        matvec_acc(&block.w1[e], x, &mut h, 1.0);
        for v in &mut h {
            *v = v.max(0.0);
        }
        let mut out = vec![0.0f32; self.cfg.dim];
        matvec_acc(&block.w2[e], &h, &mut out, 1.0);
        out
    }

    /// Gate probabilities for a block input.
    pub(crate) fn gate_probs(&self, block: &MoeBlock, x: &[f32]) -> Vec<f32> {
        let mut s = vec![0.0f32; self.cfg.n_experts];
        matvec_acc(&block.gate, x, &mut s, 1.0);
        softmax(&mut s);
        s
    }

    /// Forward pass in any mode, returning class logits.
    pub fn forward(&self, input: &[f32], mode: EvalMode) -> Vec<f32> {
        assert_eq!(input.len(), self.cfg.input_dim, "input dim mismatch");
        let mut x = vec![0.0f32; self.cfg.dim];
        matvec_acc(&self.input_w, input, &mut x, 1.0);

        // Deferred contribution from the previous block.
        let mut pending: Option<Vec<f32>> = None;
        let n_blocks = self.blocks.len();
        for (bi, block) in self.blocks.iter().enumerate() {
            let (n, _r) = rms_norm(&x);
            let p = self.gate_probs(block, &n);
            let sel = topk_indices(&p, self.cfg.top_k);
            let last = bi + 1 == n_blocks;

            let (immediate, deferred): (Vec<usize>, Vec<usize>) = match mode {
                EvalMode::Standard => (sel, Vec::new()),
                EvalMode::Skipped { n_kept } => {
                    (sel.into_iter().take(n_kept).collect(), Vec::new())
                }
                EvalMode::Deferred { n_immediate } => {
                    if last {
                        (sel, Vec::new())
                    } else {
                        let imm = sel.iter().copied().take(n_immediate).collect();
                        let def = sel.into_iter().skip(n_immediate).collect();
                        (imm, def)
                    }
                }
            };

            // Immediate contributions (computed on this block's input).
            let mut delta = vec![0.0f32; self.cfg.dim];
            for &e in &immediate {
                let out = self.expert_out(block, e, &n);
                for (d, o) in delta.iter_mut().zip(&out) {
                    *d += p[e] * o;
                }
            }
            // Deferred contributions of THIS block (also computed on
            // this block's input) land one block later.
            let next_pending = if deferred.is_empty() {
                None
            } else {
                let mut dp = vec![0.0f32; self.cfg.dim];
                for &e in &deferred {
                    let out = self.expert_out(block, e, &n);
                    for (d, o) in dp.iter_mut().zip(&out) {
                        *d += p[e] * o;
                    }
                }
                Some(dp)
            };

            for (xv, d) in x.iter_mut().zip(&delta) {
                *xv += d;
            }
            if let Some(prev) = pending.take() {
                for (xv, d) in x.iter_mut().zip(&prev) {
                    *xv += d;
                }
            }
            pending = next_pending;
        }
        // By construction the final block defers nothing.
        debug_assert!(pending.is_none());

        let mut logits = vec![0.0f32; self.cfg.n_classes];
        matvec_acc(&self.head_w, &x, &mut logits, 1.0);
        logits
    }

    /// Predicted class.
    pub fn predict(&self, input: &[f32], mode: EvalMode) -> usize {
        let logits = self.forward(input, mode);
        let mut best = 0;
        for (i, &l) in logits.iter().enumerate() {
            if l > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Expert selection counts over a dataset (for balance checks).
    pub fn expert_usage(&self, inputs: &[Vec<f32>]) -> Vec<Vec<usize>> {
        let mut usage = vec![vec![0usize; self.cfg.n_experts]; self.cfg.n_blocks];
        for input in inputs {
            let mut x = vec![0.0f32; self.cfg.dim];
            matvec_acc(&self.input_w, input, &mut x, 1.0);
            for (bi, block) in self.blocks.iter().enumerate() {
                let (n, _r) = rms_norm(&x);
                let p = self.gate_probs(block, &n);
                for &e in &topk_indices(&p, self.cfg.top_k) {
                    usage[bi][e] += 1;
                    let out = self.expert_out(block, e, &n);
                    for (xv, o) in x.iter_mut().zip(&out) {
                        *xv += p[e] * o;
                    }
                }
            }
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetConfig {
        NetConfig {
            input_dim: 8,
            dim: 12,
            hidden: 10,
            n_blocks: 3,
            n_experts: 8,
            top_k: 4,
            n_classes: 3,
        }
    }

    #[test]
    fn config_validation() {
        assert!(cfg().validate().is_ok());
        let mut c = cfg();
        c.top_k = 9;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.dim = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn forward_is_deterministic_and_finite() {
        let net = MoeNet::random(cfg(), 1);
        let x = vec![0.5f32; 8];
        let a = net.forward(&x, EvalMode::Standard);
        let b = net.forward(&x, EvalMode::Standard);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deferral_with_full_immediate_is_standard() {
        let net = MoeNet::random(cfg(), 2);
        let x = vec![0.3f32, -0.2, 0.9, 0.0, 0.1, -0.5, 0.7, 0.4];
        let std = net.forward(&x, EvalMode::Standard);
        let def = net.forward(&x, EvalMode::Deferred { n_immediate: 4 });
        assert_eq!(std, def);
    }

    #[test]
    fn skipping_all_is_residual_only() {
        let net = MoeNet::random(cfg(), 3);
        let x = vec![0.2f32; 8];
        let skipped = net.forward(&x, EvalMode::Skipped { n_kept: 0 });
        // Residual-only output: head(input_w * x).
        let mut h = vec![0.0f32; 12];
        matvec_acc(&net.input_w, &x, &mut h, 1.0);
        let mut expect = vec![0.0f32; 3];
        matvec_acc(&net.head_w, &h, &mut expect, 1.0);
        for (a, b) in skipped.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn deferral_perturbs_less_than_skipping() {
        // The §4.1 intuition at network scale, averaged over inputs.
        let net = MoeNet::random(cfg(), 4);
        let mut rng = kt_tensor::rng::seeded(5);
        let mut d_def = 0.0f64;
        let mut d_skip = 0.0f64;
        for _ in 0..50 {
            let mut x = vec![0.0f32; 8];
            kt_tensor::rng::fill_uniform(&mut rng, &mut x, 1.0);
            let std = net.forward(&x, EvalMode::Standard);
            let def = net.forward(&x, EvalMode::Deferred { n_immediate: 2 });
            let skip = net.forward(&x, EvalMode::Skipped { n_kept: 2 });
            let dist = |a: &[f32], b: &[f32]| -> f64 {
                a.iter()
                    .zip(b)
                    .map(|(p, q)| ((p - q) * (p - q)) as f64)
                    .sum::<f64>()
                    .sqrt()
            };
            d_def += dist(&std, &def);
            d_skip += dist(&std, &skip);
        }
        assert!(
            d_def < d_skip,
            "deferral divergence {d_def} should be below skipping {d_skip}"
        );
    }

    #[test]
    fn final_block_never_defers() {
        // With one block, deferral must equal standard (the only block
        // is the last).
        let mut c = cfg();
        c.n_blocks = 1;
        let net = MoeNet::random(c, 6);
        let x = vec![0.1f32; 8];
        assert_eq!(
            net.forward(&x, EvalMode::Standard),
            net.forward(&x, EvalMode::Deferred { n_immediate: 1 })
        );
    }

    #[test]
    fn expert_usage_counts_sum_correctly() {
        let net = MoeNet::random(cfg(), 7);
        let inputs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32 * 0.1; 8]).collect();
        let usage = net.expert_usage(&inputs);
        for block_usage in &usage {
            let total: usize = block_usage.iter().sum();
            assert_eq!(total, 10 * 4, "top-4 over 10 inputs");
        }
    }

    #[test]
    fn topk_indices_are_descending() {
        let v = [0.1f32, 0.9, 0.5, 0.7];
        assert_eq!(topk_indices(&v, 3), vec![1, 3, 2]);
    }
}
