//! The Table 2 and Figure 13 analog experiments.
//!
//! Three MoE-network "model analogs" mirror the routing shapes of the
//! evaluated LLMs (DS-3: top-8, DS-2: top-6, QW-2: top-8), and each is
//! trained on the synthetic benchmark suite. Accuracy is then measured
//! under the paper's (I+D) deferral configurations (Table 2) and across
//! a sweep of affected-expert counts for Deferral vs Skipping
//! (Figure 13). A logit-divergence study on `kt-model`'s tiny
//! transformers corroborates the network-level result at the
//! architecture level.

use kt_model::{ExecMode, ModelPreset, MoeModel};
use kt_tensor::WeightDtype;

use crate::metrics::{accuracy, kl_divergence, top1_agreement};
use crate::net::{EvalMode, MoeNet, NetConfig};
use crate::tasks::{Task, TaskKind};
use crate::train::{train, TrainConfig};

/// A model analog: the routing shape of one evaluated LLM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelAnalog {
    /// Short display name ("DS-3"...).
    pub name: &'static str,
    /// Experts per block.
    pub n_experts: usize,
    /// Top-k.
    pub top_k: usize,
    /// The paper's quantized-deployment (immediate, deferred) split
    /// (Table 2: DS-3 2+6, DS-2 2+4, QW-2 4+4).
    pub paper_split: (usize, usize),
}

impl ModelAnalog {
    /// The three analogs of Table 2.
    pub fn all() -> [ModelAnalog; 3] {
        [
            ModelAnalog {
                name: "DS-3",
                n_experts: 16,
                top_k: 8,
                paper_split: (2, 6),
            },
            ModelAnalog {
                name: "DS-2",
                n_experts: 16,
                top_k: 6,
                paper_split: (2, 4),
            },
            ModelAnalog {
                name: "QW-2",
                n_experts: 16,
                top_k: 8,
                paper_split: (4, 4),
            },
        ]
    }

    /// Network config for this analog.
    pub fn net_config(&self, input_dim: usize, n_classes: usize) -> NetConfig {
        NetConfig {
            input_dim,
            dim: 24,
            hidden: 24,
            n_blocks: 10,
            n_experts: self.n_experts,
            top_k: self.top_k,
            n_classes,
        }
    }
}

/// Experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct EvalBudget {
    /// Training examples per task.
    pub n_train: usize,
    /// Test examples per task.
    pub n_test: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl EvalBudget {
    /// Small budget for unit tests.
    pub fn quick() -> Self {
        EvalBudget {
            n_train: 300,
            n_test: 150,
            epochs: 10,
        }
    }

    /// Full budget for the bench binaries.
    pub fn full() -> Self {
        EvalBudget {
            n_train: 1500,
            n_test: 500,
            epochs: 30,
        }
    }
}

/// One Table 2 analog row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Model analog name.
    pub model: &'static str,
    /// `(I, D)` configuration label, e.g. "(2+6)".
    pub config: String,
    /// Per-task accuracies (%) in `tasks` order.
    pub scores: Vec<f64>,
}

/// Trains one analog on one task and returns (net, task).
fn trained_net(analog: &ModelAnalog, kind: TaskKind, budget: &EvalBudget, seed: u64) -> (MoeNet, Task) {
    let dim = 16;
    let task = Task::generate(kind, dim, budget.n_train, budget.n_test, seed);
    let mut net = MoeNet::random(analog.net_config(dim, task.n_classes), seed ^ 0xA5A5);
    train(
        &mut net,
        &task,
        &TrainConfig {
            epochs: budget.epochs,
            seed,
            ..Default::default()
        },
    );
    (net, task)
}

/// Table 2 analog: accuracy with and without Expert Deferral, per model
/// analog, over `tasks`.
pub fn table2_analog(
    tasks: &[TaskKind],
    budget: &EvalBudget,
    seed: u64,
) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for analog in ModelAnalog::all() {
        let mut base_scores = Vec::new();
        let mut defer_scores = Vec::new();
        for (ti, &kind) in tasks.iter().enumerate() {
            let (net, task) = trained_net(&analog, kind, budget, seed + ti as u64);
            base_scores.push(accuracy(&net, &task.test, EvalMode::Standard) * 100.0);
            let (imm, _d) = analog.paper_split;
            defer_scores.push(
                accuracy(&net, &task.test, EvalMode::Deferred { n_immediate: imm }) * 100.0,
            );
        }
        rows.push(Table2Row {
            model: analog.name,
            config: format!("({}+0)", analog.top_k),
            scores: base_scores,
        });
        let (i, d) = analog.paper_split;
        rows.push(Table2Row {
            model: analog.name,
            config: format!("({i}+{d})"),
            scores: defer_scores,
        });
    }
    rows
}

/// One Figure 13 analog point: relative accuracy change (%) at a given
/// number of affected experts.
#[derive(Debug, Clone)]
pub struct Fig13Point {
    /// Affected (deferred or skipped) experts.
    pub affected: usize,
    /// Mean relative accuracy change under Deferral, %.
    pub deferral_delta_pct: f64,
    /// Mean relative accuracy change under Skipping, %.
    pub skipping_delta_pct: f64,
}

/// Figure 13 analog on the DS-3 analog (top-8): sweep affected experts,
/// compare Deferral against Skipping, averaged over `tasks`.
pub fn fig13_analog(
    tasks: &[TaskKind],
    budget: &EvalBudget,
    seed: u64,
) -> Vec<Fig13Point> {
    let analog = ModelAnalog::all()[0];
    // Train once per task; evaluate all configurations on the same nets.
    let trained: Vec<(MoeNet, Task)> = tasks
        .iter()
        .enumerate()
        .map(|(ti, &kind)| trained_net(&analog, kind, budget, seed + ti as u64))
        .collect();
    let baselines: Vec<f64> = trained
        .iter()
        .map(|(net, task)| accuracy(net, &task.test, EvalMode::Standard))
        .collect();

    (1..analog.top_k)
        .map(|affected| {
            let n_keep = analog.top_k - affected;
            let mut d_sum = 0.0;
            let mut s_sum = 0.0;
            for ((net, task), &base) in trained.iter().zip(&baselines) {
                let d = accuracy(net, &task.test, EvalMode::Deferred { n_immediate: n_keep });
                let s = accuracy(net, &task.test, EvalMode::Skipped { n_kept: n_keep });
                if base > 0.0 {
                    d_sum += (d - base) / base * 100.0;
                    s_sum += (s - base) / base * 100.0;
                }
            }
            Fig13Point {
                affected,
                deferral_delta_pct: d_sum / trained.len() as f64,
                skipping_delta_pct: s_sum / trained.len() as f64,
            }
        })
        .collect()
}

/// One logit-divergence row from the transformer-level study.
#[derive(Debug, Clone)]
pub struct DivergenceRow {
    /// Affected experts.
    pub affected: usize,
    /// Mean KL(standard || deferred).
    pub kl_deferral: f64,
    /// Mean KL(standard || skipped).
    pub kl_skipping: f64,
    /// Greedy-token agreement under deferral (fraction).
    pub agree_deferral: f64,
    /// Greedy-token agreement under skipping (fraction).
    pub agree_skipping: f64,
}

/// Transformer-level corroboration: on a tiny `kt-model` DeepSeek-V3
/// model, measure decode-logit divergence vs the standard path for
/// Deferral and Skipping across affected-expert counts.
///
/// # Errors
///
/// Propagates model construction/execution errors.
pub fn divergence_study(
    n_prompts: usize,
    seed: u64,
) -> Result<Vec<DivergenceRow>, kt_model::ModelError> {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let model = MoeModel::random(&cfg, WeightDtype::F32, seed)?;
    let top_k = cfg.top_k;
    let mut rows = Vec::new();
    for affected in 1..top_k {
        let n_keep = top_k - affected;
        let mut kl_d = 0.0;
        let mut kl_s = 0.0;
        let mut ag_d = 0usize;
        let mut ag_s = 0usize;
        let mut count = 0usize;
        for p in 0..n_prompts {
            let prompt: Vec<u32> =
                (0..6).map(|i| (seed as u32 + p as u32 * 37 + i * 11) % 256).collect();
            let run = |mode: ExecMode| -> Result<Vec<f32>, kt_model::ModelError> {
                let mut cache = model.new_cache();
                let _ = model.forward(&prompt, &mut cache, ExecMode::Standard, None)?;
                let logits = model.forward(&[7], &mut cache, mode, None)?;
                Ok(logits.row(0).to_vec())
            };
            let std_l = run(ExecMode::Standard)?;
            let def_l = run(ExecMode::Deferred { n_immediate: n_keep })?;
            let skip_l = run(ExecMode::Skipped { n_kept: n_keep })?;
            kl_d += kl_divergence(&std_l, &def_l);
            kl_s += kl_divergence(&std_l, &skip_l);
            ag_d += usize::from(top1_agreement(&std_l, &def_l));
            ag_s += usize::from(top1_agreement(&std_l, &skip_l));
            count += 1;
        }
        rows.push(DivergenceRow {
            affected,
            kl_deferral: kl_d / count as f64,
            kl_skipping: kl_s / count as f64,
            agree_deferral: ag_d as f64 / count as f64,
            agree_skipping: ag_s as f64 / count as f64,
        });
    }
    Ok(rows)
}

/// One row of the quantized-serving divergence gate.
#[derive(Debug, Clone)]
pub struct QuantDivergenceRow {
    /// Expert weight dtype under test.
    pub dtype: WeightDtype,
    /// Mean KL(f32 || quantized) over decode logits.
    pub kl: f64,
    /// Greedy-token agreement with the F32 reference (fraction).
    pub top1_agree: f64,
}

/// Quantized-serving accuracy gate at the transformer level.
///
/// `MoeModel`'s RNG stream is dtype-independent (weights are drawn
/// before packing), so same-seed models under different expert dtypes
/// share the underlying F32 weights: any logit divergence is purely
/// quantization error in the fused-dequant serving path. For each
/// dtype, decode logits are compared against the F32 reference with
/// KL divergence and greedy-token agreement, mirroring the Expert
/// Deferral methodology of [`divergence_study`].
///
/// # Errors
///
/// Propagates model construction/execution errors.
pub fn quant_divergence_study(
    dtypes: &[WeightDtype],
    n_prompts: usize,
    seed: u64,
) -> Result<Vec<QuantDivergenceRow>, kt_model::ModelError> {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let reference = MoeModel::random(&cfg, WeightDtype::F32, seed)?;
    let decode_logits = |m: &MoeModel, prompt: &[u32]| -> Result<Vec<f32>, kt_model::ModelError> {
        let mut cache = m.new_cache();
        let _ = m.forward(prompt, &mut cache, ExecMode::Standard, None)?;
        let logits = m.forward(&[7], &mut cache, ExecMode::Standard, None)?;
        Ok(logits.row(0).to_vec())
    };
    let mut rows = Vec::new();
    for &dtype in dtypes {
        let model = MoeModel::random(&cfg, dtype, seed)?;
        let mut kl = 0.0;
        let mut agree = 0usize;
        for p in 0..n_prompts {
            let prompt: Vec<u32> =
                (0..6).map(|i| (seed as u32 + p as u32 * 37 + i * 11) % 256).collect();
            let f32_l = decode_logits(&reference, &prompt)?;
            let q_l = decode_logits(&model, &prompt)?;
            kl += kl_divergence(&f32_l, &q_l);
            agree += usize::from(top1_agreement(&f32_l, &q_l));
        }
        rows.push(QuantDivergenceRow {
            dtype,
            kl: kl / n_prompts as f64,
            top1_agree: agree as f64 / n_prompts as f64,
        });
    }
    Ok(rows)
}

/// Rounds every expert weight of `net` through the tile-packed
/// quantized format (pack → unpack), exactly the dequantized values
/// the fused int8/int4 kernels serve. Task accuracy of the returned
/// net therefore measures the quantized serving path's accuracy.
///
/// # Panics
///
/// Panics if `dtype`'s group does not divide the net's `dim` and
/// `hidden` (programming error in the study configuration).
pub fn fake_quantize_net(net: &MoeNet, dtype: WeightDtype) -> MoeNet {
    use kt_tensor::{Matrix, PackedWeights};
    let roundtrip = |data: &[f32], rows: usize, cols: usize| -> Vec<f32> {
        let m = Matrix::from_rows(rows, cols, data).expect("net weight shape");
        let packed = PackedWeights::pack(&m, dtype).expect("group must divide net dims");
        packed.unpack().as_slice().to_vec()
    };
    let cfg = *net.config();
    let mut out = net.clone();
    for block in &mut out.blocks {
        for w in &mut block.w1 {
            *w = roundtrip(w, cfg.hidden, cfg.dim);
        }
        for w in &mut block.w2 {
            *w = roundtrip(w, cfg.dim, cfg.hidden);
        }
    }
    out
}

/// One row of the quantized-serving task-accuracy gate.
#[derive(Debug, Clone)]
pub struct QuantAccuracyRow {
    /// Expert weight dtype under test.
    pub dtype: WeightDtype,
    /// Mean F32 accuracy over tasks, %.
    pub base_acc: f64,
    /// Mean fake-quantized accuracy over tasks, %.
    pub quant_acc: f64,
}

/// Synthetic-task accuracy under quantized experts: trains the DS-3
/// analog per task in F32, fake-quantizes the trained experts per
/// dtype ([`fake_quantize_net`]) and compares test accuracy.
pub fn quant_accuracy_study(
    dtypes: &[WeightDtype],
    tasks: &[TaskKind],
    budget: &EvalBudget,
    seed: u64,
) -> Vec<QuantAccuracyRow> {
    let analog = ModelAnalog::all()[0];
    let trained: Vec<(MoeNet, Task)> = tasks
        .iter()
        .enumerate()
        .map(|(ti, &kind)| trained_net(&analog, kind, budget, seed + ti as u64))
        .collect();
    let base: f64 = trained
        .iter()
        .map(|(net, task)| accuracy(net, &task.test, EvalMode::Standard) * 100.0)
        .sum::<f64>()
        / trained.len() as f64;
    dtypes
        .iter()
        .map(|&dtype| {
            let quant: f64 = trained
                .iter()
                .map(|(net, task)| {
                    let q = fake_quantize_net(net, dtype);
                    accuracy(&q, &task.test, EvalMode::Standard) * 100.0
                })
                .sum::<f64>()
                / trained.len() as f64;
            QuantAccuracyRow {
                dtype,
                base_acc: base,
                quant_acc: quant,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analogs_match_paper_routing() {
        let a = ModelAnalog::all();
        assert_eq!(a[0].top_k, 8);
        assert_eq!(a[1].top_k, 6);
        assert_eq!(a[2].top_k, 8);
        assert_eq!(a[0].paper_split, (2, 6));
        assert_eq!(a[1].paper_split, (2, 4));
        assert_eq!(a[2].paper_split, (4, 4));
        for an in a {
            assert_eq!(an.paper_split.0 + an.paper_split.1, an.top_k);
            an.net_config(16, 4).validate().unwrap();
        }
    }

    #[test]
    fn table2_deferral_stays_close_to_baseline() {
        // Quick variant over two tasks: deferral must stay within a few
        // points of the baseline (the paper sees <= 2 points).
        let rows = table2_analog(&[TaskKind::Blobs], &EvalBudget::quick(), 11);
        assert_eq!(rows.len(), 6); // 3 analogs x (base, deferred)
        for pair in rows.chunks(2) {
            let base = pair[0].scores[0];
            let def = pair[1].scores[0];
            assert!(base > 40.0, "{}: base acc too low: {base}", pair[0].model);
            assert!(
                (base - def).abs() < 15.0,
                "{}: deferral moved accuracy too much: {base} -> {def}",
                pair[0].model
            );
        }
    }

    #[test]
    fn fig13_deferral_beats_skipping_at_high_affected_counts() {
        let points = fig13_analog(&[TaskKind::Blobs], &EvalBudget::quick(), 13);
        assert_eq!(points.len(), 7); // affected = 1..=7
        // At 6 affected experts (the paper's configuration), skipping
        // must hurt much more than deferral.
        let p6 = &points[5];
        assert_eq!(p6.affected, 6);
        assert!(
            p6.deferral_delta_pct >= p6.skipping_delta_pct,
            "deferral {p6:?}"
        );
        // Skipping 7 of 8 experts must visibly hurt and hurt more than
        // deferring 7 of 8 (the full-budget bench run shows the larger
        // paper-scale gap; the quick budget here only checks the shape).
        let p7 = &points[6];
        assert!(p7.skipping_delta_pct < -1.0, "{p7:?}");
        assert!(p7.deferral_delta_pct > p7.skipping_delta_pct, "{p7:?}");
    }

    #[test]
    fn quant_divergence_within_serving_thresholds() {
        let dtypes = [
            WeightDtype::Bf16,
            WeightDtype::Int8 { group: 8 },
            WeightDtype::Int4 { group: 8 },
        ];
        let rows = quant_divergence_study(&dtypes, 4, 23).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.kl.is_finite() && r.kl >= 0.0, "{r:?}");
            eprintln!("quant divergence: {r:?}");
        }
        // Precision ordering: more bits, less divergence.
        assert!(rows[0].kl <= rows[2].kl, "bf16 {rows:?}");
        assert!(rows[1].kl <= rows[2].kl, "int8 {rows:?}");
        // Serving gates (generous multiples of observed values).
        assert!(rows[1].kl < 0.05, "int8 KL too high: {rows:?}");
        assert!(rows[2].kl < 0.5, "int4 KL too high: {rows:?}");
        assert!(rows[1].top1_agree >= 0.75, "int8 agreement: {rows:?}");
    }

    #[test]
    fn fake_quant_f32_roundtrip_is_exact() {
        let analog = ModelAnalog::all()[0];
        let net = MoeNet::random(analog.net_config(16, 4), 31);
        let q = fake_quantize_net(&net, WeightDtype::F32);
        let x = vec![0.4f32; 16];
        assert_eq!(
            net.forward(&x, EvalMode::Standard),
            q.forward(&x, EvalMode::Standard),
            "F32 pack/unpack round-trip must be exact"
        );
    }

    #[test]
    fn quant_accuracy_stays_close_to_f32() {
        let dtypes = [
            WeightDtype::Int8 { group: 8 },
            WeightDtype::Int4 { group: 8 },
        ];
        let rows = quant_accuracy_study(&dtypes, &[TaskKind::Blobs], &EvalBudget::quick(), 29);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            eprintln!("quant accuracy: {r:?}");
            assert!(r.base_acc > 40.0, "base acc too low: {r:?}");
        }
        // Int8 must be nearly lossless; int4 within a few points.
        assert!(
            (rows[0].base_acc - rows[0].quant_acc).abs() < 5.0,
            "int8 moved accuracy too much: {rows:?}"
        );
        assert!(
            (rows[1].base_acc - rows[1].quant_acc).abs() < 15.0,
            "int4 moved accuracy too much: {rows:?}"
        );
    }

    #[test]
    fn divergence_study_shows_deferral_closer() {
        let rows = divergence_study(3, 17).unwrap();
        assert_eq!(rows.len(), 7); // tiny DS-3 top-8
        // Averaged over affected counts, deferral's KL must be lower.
        let mean_d: f64 = rows.iter().map(|r| r.kl_deferral).sum::<f64>() / rows.len() as f64;
        let mean_s: f64 = rows.iter().map(|r| r.kl_skipping).sum::<f64>() / rows.len() as f64;
        assert!(mean_d < mean_s, "KL deferral {mean_d} vs skipping {mean_s}");
        // KL grows with the number of affected experts for skipping.
        assert!(rows.last().unwrap().kl_skipping >= rows[0].kl_skipping);
    }
}
