//! Accuracy substrate for the Expert Deferral studies (§6.3).
//!
//! The paper evaluates deferral's accuracy impact on HumanEval, MBPP,
//! GSM8K, StrategyQA and LiveBench with the real 671B/236B/57B models —
//! which cannot run here. The substitution (documented in DESIGN.md)
//! keeps the *experimental design* and replaces the benchmark suite
//! with synthetic tasks and the LLMs with small MoE **residual networks
//! trained from scratch in Rust**:
//!
//! * [`tasks`] — a seeded synthetic benchmark suite (Gaussian blobs,
//!   XOR shells, modular sums, concentric bands) standing in for the
//!   paper's four benchmark families.
//! * [`net`] — `MoeNet`: a stack of residual top-k MoE blocks plus a
//!   linear classifier, with the three inference modes under study:
//!   Standard, **Deferred** (low-score experts' outputs land one block
//!   later; never at the last block) and **Skipped** (low-score experts
//!   dropped), mirroring `kt-model`'s `ExecMode` exactly.
//! * [`train`] — minibatch SGD with manual backprop through top-k
//!   routing and a Switch-style load-balancing auxiliary loss.
//! * [`experiments`] — the Table 2 analog (per-model (I+D) configs) and
//!   the Figure 13 analog (accuracy delta vs number of affected
//!   experts, deferral vs skipping), plus logit-divergence studies on
//!   the `kt-model` transformers.

pub mod experiments;
pub mod metrics;
pub mod net;
pub mod persist;
pub mod tasks;
pub mod train;

pub use metrics::{accuracy, kl_divergence, top1_agreement};
pub use net::{EvalMode, MoeNet, NetConfig};
pub use persist::{load_file, save_file, PersistError};
pub use tasks::{Task, TaskKind};
pub use train::{train, TrainConfig};
