//! Paged-KV ablation: how many sequences one KV byte budget sustains
//! concurrently with monolithic full-capacity leases vs fixed-size
//! pages behind the block allocator — plus the cost (none) and
//! fidelity (bitwise) of the machinery that makes paging safe:
//! preemption round trips and zero-copy prefix sharing.
//!
//! Arms:
//! * **monolithic** — flat leases (`page_rows = 0`): every admitted
//!   sequence reserves a whole `max_seq`-capacity cache up front, so
//!   the pool's byte budget caps concurrency at
//!   `budget / full_cache_bytes`, however short the requests are.
//! * **paged** — same byte budget converted to 16-row pages: admission
//!   charges only the pages a sequence actually grows into, so short
//!   requests pack ~`max_seq / rows_used` times denser. Both arms run
//!   the same workload; token streams must match bitwise.
//! * **pressure** — a pool barely above one full request, forced
//!   preemption under `AlwaysSwap` and `AlwaysRecompute`: preempt and
//!   resume round trips must leave the streams bitwise identical to
//!   the unpressured paged arm.
//! * **warm prefix** — zero-copy page sharing: a primed 384-token
//!   shared prefix seeds by reference (CoW on the divergent tail), so
//!   warm TTFT must hold the copy-on-seed line (`BENCH_prefix.json`:
//!   2.9 ms) or better.
//!
//! Modes:
//! * default — all arms, writes `BENCH_paged.json` (run from the repo
//!   root).
//! * `--smoke` — CI gate: paged arm sustains **>= 2x** the monolithic
//!   peak concurrency at equal pool bytes, streams bitwise identical
//!   (preemption arms included), and a single-stream decode guard vs
//!   the `BENCH_quant.json` f32 hotpath median (0.6x tolerance, the
//!   repo-wide guard tolerance).

use kt_bench::{section, table};
use kt_core::{BatchSeq, EngineConfig, HybridEngine, SchedMode};
use kt_kernels::dispatch::Backend;
use kt_model::pool::KvCachePool;
use kt_model::{model::argmax, KvCache, ModelPreset};
use kt_serve::{PreemptPolicy, Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

/// Rows per KV page in the paged arms.
const PAGE_ROWS: usize = 16;
/// Full-capacity caches the byte budget covers (the monolithic arm's
/// concurrency ceiling).
const FLAT_SLOTS: usize = 4;
/// Concurrency offered to both arms.
const CONCURRENT: usize = 32;
/// Prompt length of each workload request.
const PROMPT: usize = 24;
/// Tokens each request generates.
const MAX_NEW: usize = 16;
/// `BENCH_quant.json` `decode_guard.f32_hotpath_median` — the flat-KV
/// single-stream decode baseline the paged backend must hold.
const QUANT_F32_HOTPATH_TOK_S: f64 = 1900.1;
/// Repo-wide guard tolerance (CI containers timeshare cores).
const GUARD_TOLERANCE: f64 = 0.6;
/// `BENCH_prefix.json` warm `ttft_ms_median` — the copy-on-seed line
/// zero-copy sharing must hold or beat.
const PREFIX_WARM_TTFT_MS: f64 = 2.9;

fn engine(seed: u64) -> Arc<HybridEngine> {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                // Batch-size-invariant expert GEMMs: the two arms batch
                // very differently (4-wide vs 32-wide), and the token
                // streams must still compare bitwise.
                backend: Backend::TiledOnly,
                seed,
                ..Default::default()
            },
        )
        .expect("engine"),
    )
}

fn prompts() -> Vec<Vec<u32>> {
    (0..CONCURRENT)
        .map(|r| (0..PROMPT).map(|j| ((r * 31 + j * 7 + 5) % 251) as u32).collect())
        .collect()
}

/// Runs the workload (all requests submitted up front), returning the
/// token streams, the lease high-water mark, and the wall time.
fn run_arm(cfg: ServerConfig, n: usize) -> (Vec<Vec<u32>>, u64, f64) {
    let server = Server::start(engine(7), cfg).expect("valid config");
    let t0 = Instant::now();
    let handles: Vec<_> = prompts()
        .into_iter()
        .take(n)
        .map(|p| server.submit(Request::greedy(&p, MAX_NEW)))
        .collect();
    let tokens: Vec<Vec<u32>> = handles
        .iter()
        .map(|h| {
            let r = h.wait();
            assert!(r.is_completed(), "{:?}", r.outcome);
            r.tokens
        })
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let peak = server.stats().kv_leases_peak;
    server.shutdown();
    (tokens, peak, wall)
}

/// Pool pages equal in bytes to `FLAT_SLOTS` full flat caches
/// (`max_seq` divides by `PAGE_ROWS`, so the conversion is exact).
fn equal_byte_pages() -> usize {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    FLAT_SLOTS * cfg.n_layers * cfg.max_seq / PAGE_ROWS
}

fn base_cfg() -> ServerConfig {
    ServerConfig {
        prefill_chunk: 32,
        step_token_budget: 64,
        // Concurrency accounting only: no prefix retention.
        prefix_cache_bytes: 0,
        ..Default::default()
    }
}

/// Single-stream decode throughput through a **paged** pool lease and
/// the batch API (`ablation_hotpath` methodology: realistic vocab,
/// 2 warmups, deep timed window). The page-table indirection on every
/// attention read is the thing under test.
fn paged_decode_tokens_per_s(steps: usize) -> f64 {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.vocab = 8192;
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine");
    let fresh = engine.fresh_cache();
    let pool = KvCachePool::for_prototype(&fresh, 1).with_paged(4096, PAGE_ROWS);
    let mut lease = pool.lease().expect("fresh pool leases");
    assert!(lease.cache.is_paged(), "guard must run on the paged backend");

    let forward = |cache: KvCache, tokens: Vec<u32>, prefill: bool| {
        let mut seqs = vec![if prefill {
            BatchSeq::prefill(cache, tokens)
        } else {
            BatchSeq::decode(cache, tokens[0])
        }];
        let l = engine
            .forward_batch(&mut seqs)
            .expect("forward")
            .pop()
            .flatten()
            .expect("logits");
        let next = argmax(l.row(l.rows() - 1));
        engine.recycle_logits(l);
        (std::mem::replace(&mut seqs[0].cache, KvCache::new(&[], 0)), next)
    };

    let (mut cache, mut next) =
        forward(std::mem::replace(&mut lease.cache, KvCache::new(&[], 0)), vec![1, 2, 3], true);
    for _ in 0..2 {
        (cache, next) = forward(cache, vec![next], false);
    }
    let start = Instant::now();
    for _ in 0..steps {
        (cache, next) = forward(cache, vec![next], false);
    }
    let dt = start.elapsed().as_secs_f64();
    lease.cache = cache;
    pool.release(lease).expect("lease returns");
    steps as f64 / dt
}

/// Warm prefix-hit TTFT (ms, median of 3). `paged` selects zero-copy
/// page sharing; `!paged` the flat copy-on-seed path the
/// `BENCH_prefix.json` 2.9 ms line was recorded on, re-measured here
/// so the comparison shares one host state.
fn warm_prefix_ttft_ms(paged: bool) -> f64 {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.max_seq = 1024;
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 31,
                ..Default::default()
            },
        )
        .expect("engine"),
    );
    let server = Server::start(
        engine,
        ServerConfig {
            max_batch: 4,
            prefill_chunk: 64,
            step_token_budget: 96,
            prefix_cache_bytes: 32 << 20,
            page_rows: if paged { PAGE_ROWS } else { 0 },
            ..Default::default()
        },
    )
    .expect("valid config");
    let shared: Vec<u32> = (0..384).map(|i| ((i * 3 + 11) % 251) as u32).collect();
    let prompt = |r: usize| {
        let mut p = shared.clone();
        p.extend((0..8).map(|j| ((r * 17 + j * 5 + 97) % 251) as u32));
        p
    };
    let ttft = |p: &[u32]| {
        let r = server.submit(Request::greedy(p, 4)).wait();
        assert!(r.is_completed(), "{:?}", r.outcome);
        r.metrics.ttft_ns.expect("completed request has a TTFT") as f64 / 1e6
    };
    let _prime = ttft(&prompt(usize::MAX / 2));
    let mut samples: Vec<f64> = (0..3).map(|r| ttft(&prompt(r))).collect();
    assert_eq!(server.stats().prefix_hits, 3, "every timed request hit");
    if paged {
        // `kt_kv_pages_shared` counts pages co-held by a *live* lease,
        // so it reads 0 between requests. Observe it mid-flight: a
        // probe with a long generation holds its zero-copy seeded
        // prefix pages while decoding.
        let probe = server.submit(Request::greedy(&prompt(1000), 96));
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        let mut seen_shared = false;
        while Instant::now() < deadline {
            if server.stats().kv_pages_shared > 0 {
                seen_shared = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        assert!(probe.wait().is_completed(), "probe request completes");
        assert!(seen_shared, "warm seeding shared pages zero-copy");
    }
    server.shutdown();
    median(&mut samples)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let model_cfg = ModelPreset::DeepSeekV3.tiny_config();
    let pool_pages = equal_byte_pages();
    let full_cache_bytes = model_cfg.n_layers
        * model_cfg.max_seq
        * 2
        * (2 * 16) // GQA: kv_heads=2, head_dim=16, k and v rows
        * std::mem::size_of::<f32>();

    section(&format!(
        "Concurrency at equal pool bytes: {FLAT_SLOTS} full caches' worth \
         ({:.1} MiB) serving {CONCURRENT} requests of {} rows each",
        (FLAT_SLOTS * full_cache_bytes) as f64 / (1 << 20) as f64,
        PROMPT + MAX_NEW,
    ));

    let (flat_tokens, flat_peak, flat_wall) = run_arm(
        ServerConfig {
            max_batch: FLAT_SLOTS,
            page_rows: 0,
            ..base_cfg()
        },
        CONCURRENT,
    );
    let (paged_tokens, paged_peak, paged_wall) = run_arm(
        ServerConfig {
            max_batch: CONCURRENT,
            page_rows: PAGE_ROWS,
            kv_pool_pages: pool_pages,
            ..base_cfg()
        },
        CONCURRENT,
    );
    assert_eq!(
        flat_tokens, paged_tokens,
        "paged serving diverged from monolithic token streams"
    );

    table(
        &["Arm", "Peak concurrent seqs", "Wall (s)"],
        &[
            vec!["monolithic (flat leases)".into(), flat_peak.to_string(), format!("{flat_wall:.2}")],
            vec![format!("paged ({PAGE_ROWS}-row pages)"), paged_peak.to_string(), format!("{paged_wall:.2}")],
        ],
    );
    let density = paged_peak as f64 / flat_peak as f64;
    println!();
    println!("concurrency_gain {density:.1}x at equal KV pool bytes (streams bitwise identical)");

    // Pressure arms: a pool barely above one full request forces
    // preempt/resume round trips; streams must not move.
    section("Forced preemption round trips (pool barely above one request)");
    let n_pressure = 6;
    let largest = model_cfg.n_layers * (PROMPT + MAX_NEW).div_ceil(4);
    let mut pressure_rows: Vec<Vec<String>> = Vec::new();
    let mut preempt_counts = [0u64; 2];
    for (slot, policy) in [PreemptPolicy::AlwaysSwap, PreemptPolicy::AlwaysRecompute]
        .into_iter()
        .enumerate()
    {
        let t0 = Instant::now();
        let server = Server::start(
            engine(7),
            ServerConfig {
                max_batch: 3,
                prefill_chunk: 4,
                step_token_budget: 8,
                prefix_cache_bytes: 0,
                page_rows: 4,
                kv_pool_pages: largest + 1,
                preempt_policy: policy,
                ..Default::default()
            },
        )
        .expect("valid config");
        let handles: Vec<_> = prompts()
            .into_iter()
            .take(n_pressure)
            .map(|p| server.submit(Request::greedy(&p, MAX_NEW)))
            .collect();
        for (h, want) in handles.iter().zip(&paged_tokens) {
            let r = h.wait();
            assert!(r.is_completed(), "{:?}", r.outcome);
            assert_eq!(&r.tokens, want, "{policy:?}: preemption changed the stream");
        }
        let stats = server.stats();
        let n = stats.preempt_swap + stats.preempt_recompute;
        assert!(n > 0, "{policy:?}: pool never came under pressure");
        assert_eq!(stats.kv_pages_free, stats.kv_pages_total, "page leak");
        preempt_counts[slot] = n;
        pressure_rows.push(vec![
            format!("{policy:?}"),
            n.to_string(),
            format!("{:.2}", t0.elapsed().as_secs_f64()),
        ]);
        server.shutdown();
    }
    table(&["Policy", "Preemptions", "Wall (s)"], &pressure_rows);
    println!();
    println!("streams bitwise identical to the unpressured paged arm under both policies");

    // Decode guard: page-table indirection must not tax the hot path.
    section("Single-stream decode guard (paged lease, hotpath methodology)");
    let (reps, steps) = if smoke { (3, 448) } else { (5, 448) };
    let mut decode_samples: Vec<f64> = (0..reps).map(|_| paged_decode_tokens_per_s(steps)).collect();
    let decode_median = median(&mut decode_samples);
    println!(
        "decode_guard {decode_median:.1} tok/s vs BENCH_quant.json f32 hotpath \
         {QUANT_F32_HOTPATH_TOK_S} (tolerance {GUARD_TOLERANCE}x)"
    );

    if smoke {
        let mut fail = false;
        if density < 2.0 {
            eprintln!("SMOKE FAIL: paged sustains only {density:.1}x monolithic concurrency (< 2x)");
            fail = true;
        }
        if decode_median < GUARD_TOLERANCE * QUANT_F32_HOTPATH_TOK_S {
            eprintln!(
                "SMOKE FAIL: paged decode {decode_median:.1} tok/s below \
                 {GUARD_TOLERANCE}x of the {QUANT_F32_HOTPATH_TOK_S} baseline"
            );
            fail = true;
        }
        if fail {
            std::process::exit(1);
        }
        println!();
        println!(
            "SMOKE OK: {density:.1}x concurrency at equal bytes, decode guard \
             {decode_median:.1} tok/s, all streams bitwise identical"
        );
        return;
    }

    section("Warm prefix-hit TTFT (zero-copy page sharing vs copy-on-seed)");
    // Interleave the arms so host noise hits both alike; the recorded
    // `BENCH_prefix.json` line rides along for drift context.
    let mut warm_paged: Vec<f64> = Vec::new();
    let mut warm_flat: Vec<f64> = Vec::new();
    for _ in 0..3 {
        warm_paged.push(warm_prefix_ttft_ms(true));
        warm_flat.push(warm_prefix_ttft_ms(false));
    }
    let warm_ttft = median(&mut warm_paged);
    let warm_flat_ttft = median(&mut warm_flat);
    println!(
        "warm_ttft_ms_median {warm_ttft:.1} (zero-copy) vs {warm_flat_ttft:.1} \
         (copy-on-seed, same host) vs {PREFIX_WARM_TTFT_MS} recorded line \
         (BENCH_prefix.json)"
    );

    let json = format!(
        r#"{{
  "bench": "ablation_paged",
  "workload": {{
    "model": "DeepSeekV3 tiny preset (max_seq=512; warm-prefix arm max_seq=1024)",
    "engine": "n_cpu_workers=2, mode=AsyncGraph, n_deferred=2, backend=TiledOnly, seed=7",
    "requests": "{CONCURRENT} requests, {PROMPT}-token prompts, {MAX_NEW} new tokens ({rows} rows of {max_seq} capacity)"
  }},
  "method": "both arms get the byte budget of {FLAT_SLOTS} full flat caches; paged converts it to {pool_pages} {PAGE_ROWS}-row pages; peak concurrency from the lease high-water mark; streams compared bitwise across all arms",
  "monolithic": {{
    "peak_concurrent": {flat_peak},
    "wall_s": {flat_wall:.2}
  }},
  "paged": {{
    "page_rows": {PAGE_ROWS},
    "pool_pages": {pool_pages},
    "peak_concurrent": {paged_peak},
    "wall_s": {paged_wall:.2}
  }},
  "concurrency_gain": {density:.1},
  "bitwise_identical_streams": true,
  "preemption": {{
    "pool_pages": {tiny_pool},
    "always_swap_preemptions": {swap_n},
    "always_recompute_preemptions": {rec_n},
    "roundtrip_bitwise_identical": true
  }},
  "warm_prefix": {{
    "ttft_ms_median": {warm_ttft:.1},
    "copy_on_seed_same_host_ms_median": {warm_flat_ttft:.1},
    "copy_on_seed_line_ms": {PREFIX_WARM_TTFT_MS}
  }},
  "decode_guard": {{
    "method": "single-stream decode through a paged pool lease and forward_batch, vocab=8192, {steps} timed steps, {reps} reps",
    "decode_tokens_per_s_median": {decode_median:.1},
    "bench_quant_f32_hotpath_median": {QUANT_F32_HOTPATH_TOK_S},
    "tolerance": {GUARD_TOLERANCE}
  }}
}}
"#,
        rows = PROMPT + MAX_NEW,
        max_seq = model_cfg.max_seq,
        tiny_pool = largest + 1,
        swap_n = preempt_counts[0],
        rec_n = preempt_counts[1],
    );
    std::fs::write("BENCH_paged.json", &json).expect("write BENCH_paged.json");
    println!();
    println!("wrote BENCH_paged.json");
}
