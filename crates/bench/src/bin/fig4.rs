//! Regenerates Figure 4: GPU kernel launch analysis of DS-3 decode.

use kt_bench::{section, table};
use kt_hwsim::experiments::fig4_launch_analysis;
use kt_hwsim::Calibration;

fn main() {
    section("Figure 4: kernel launch analysis (DS-3 decode, A100)");
    let rows = fig4_launch_analysis(&Calibration::default()).expect("simulation");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                format!("{:.0}", r.launches_per_token),
                format!("{:.0}", r.launch_latency_us),
                format!("{:.0}%", r.gpu_overhead_frac * 100.0),
            ]
        })
        .collect();
    table(
        &["System", "Launches/token", "Launch latency (us)", "GPU time on launch"],
        &printable,
    );
    println!();
    println!("Paper reference: Fiddler >7000 launches x 16us (73% of GPU time);");
    println!("Llama.cpp ~3000 x 5us (21%); KTransformers' CUDA Graph ~0.");
}
