//! Regenerates Table 1: configuration of evaluated MoE models.

use kt_bench::{section, table};
use kt_model::config::format_params;
use kt_model::ModelPreset;

fn main() {
    section("Table 1: Configuration of evaluated MoE models");
    let presets = ModelPreset::all();
    let mut rows = Vec::new();
    let cfgs: Vec<_> = presets.iter().map(|p| p.full_config()).collect();
    let row = |name: &str, f: &dyn Fn(usize) -> String| {
        let mut r = vec![name.to_string()];
        for i in 0..cfgs.len() {
            r.push(f(i));
        }
        r
    };
    rows.push(row("Total Parameters", &|i| format_params(cfgs[i].total_params())));
    rows.push(row("GPU Parameters", &|i| format_params(cfgs[i].gpu_params())));
    rows.push(row("CPU Parameters", &|i| format_params(cfgs[i].cpu_params())));
    rows.push(row("MoE Layers", &|i| cfgs[i].n_moe_layers().to_string()));
    rows.push(row("Routed Experts per Layer", &|i| cfgs[i].n_routed_experts.to_string()));
    rows.push(row("Routing Strategy", &|i| format!("Top-{}", cfgs[i].top_k)));
    table(&["Model", "DS-3", "DS-2", "QW-2"], &rows);
    println!();
    println!("Paper reference: 671B/236B/57B total; 17B/13B/8B GPU; 654B/223B/49B CPU;");
    println!("58/59/28 MoE layers; 256/160/64 experts; Top-8/Top-6/Top-8.");
}
