//! Decode hot-path ablation: single-stream decode tokens/s plus the
//! step-arena allocation counters that certify the zero-allocation
//! steady state.
//!
//! Modes:
//! * default — timed run: prints decode tokens/s, cumulative arena
//!   counters, and per-step allocation counts for the timed window.
//! * `--smoke` — CI gate: short run that asserts the arenas perform
//!   **zero** fresh heap allocations across steady-state decode steps
//!   after a 2-step warmup; exits nonzero on any growth.

use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_model::{config::ModelConfig, ModelPreset};
use std::time::Instant;

fn hotpath_config() -> ModelConfig {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.name = "hotpath".into();
    // A realistic vocab/hidden ratio so the LM head is a real fraction
    // of the decode step, as it is at full scale.
    cfg.vocab = 8192;
    cfg
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = hotpath_config();
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine");

    // Deep single-stream generation: 3 prompt tokens + 2 warmup +
    // 448 timed steps ends at seq 453 of the preset's 512-position
    // budget, so the timed window covers the context depths where
    // per-step cost is dominated by attention over the cache.
    let n_decode = if smoke { 32usize } else { 448usize };
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    // Warmup: 2 decode steps (the arenas reach their steady-state
    // footprint here — everything after must be pure reuse).
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let warm = engine.workspace_stats();
    // Smoke mode samples the counters every step to pinpoint the first
    // offending step; the timed run keeps the loop pure (decode only).
    let mut per_step_allocs = Vec::with_capacity(n_decode);
    let mut prev_allocs = warm.allocations;
    let start = Instant::now();
    for _ in 0..n_decode {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
        if smoke {
            let now = engine.workspace_stats().allocations;
            per_step_allocs.push(now - prev_allocs);
            prev_allocs = now;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = engine.workspace_stats();
    let steady_allocs = stats.allocations - warm.allocations;
    let steady_bytes = stats.bytes_allocated - warm.bytes_allocated;

    println!("decode_tokens_per_s {:.1}", n_decode as f64 / secs);
    println!("arena_bytes_requested {}", stats.bytes_requested);
    println!("arena_bytes_served {}", stats.bytes_served);
    println!("arena_bytes_allocated {}", stats.bytes_allocated);
    println!("arena_allocations {}", stats.allocations);
    println!("arena_high_water_bytes {}", stats.high_water_bytes);
    println!("steady_state_allocations {steady_allocs}");
    println!("steady_state_alloc_bytes {steady_bytes}");
    println!(
        "steady_state_allocs_per_step {:.4}",
        steady_allocs as f64 / n_decode as f64
    );
    if smoke {
        let max_step = per_step_allocs.iter().copied().max().unwrap_or(0);
        println!("max_allocs_in_any_step {max_step}");
        if steady_allocs != 0 {
            let first_bad = per_step_allocs.iter().position(|&a| a != 0);
            eprintln!(
                "SMOKE FAIL: {steady_allocs} arena allocation(s) \
                 ({steady_bytes} bytes) after warmup; first growth at \
                 steady-state step {first_bad:?}"
            );
            std::process::exit(1);
        }
        println!("SMOKE OK: zero steady-state arena growth over {n_decode} decode steps");
    }
}
