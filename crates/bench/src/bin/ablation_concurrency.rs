//! Decode throughput vs serving concurrency, measured through the real
//! kt-serve continuous-batching scheduler (not the hwsim model).
//!
//! Each step of the batched decode loop pays a fixed launch cost (the
//! virtual GPU charges a graph-launch latency per replay, as a real
//! CUDA graph launch would) plus per-token compute. Continuous
//! batching amortizes the fixed part: at concurrency `c` one step
//! emits `c` tokens for roughly one step's overhead, so aggregate
//! tokens/s should scale well past the batch-1 baseline.

use kt_bench::{section, table};
use kt_core::{EngineConfig, HybridEngine, SchedMode, VgpuConfig};
use kt_model::ModelPreset;
use kt_serve::{Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tokens decoded per request.
const N_NEW: usize = 16;
/// Total requests per concurrency level (kept constant so every row
/// does the same amount of work).
const N_REQUESTS: usize = 16;

fn throughput_at(concurrency: usize) -> f64 {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                vgpu: VgpuConfig {
                    launch_latency: Duration::from_micros(20),
                    graph_launch_latency: Duration::from_micros(250),
                    ..Default::default()
                },
                seed: 13,
                ..Default::default()
            },
        )
        .expect("engine"),
    );
    let server = Server::start(
        engine,
        ServerConfig {
            max_batch: concurrency,
            ..Default::default()
        },
    )
    .expect("valid config");
    let prompts: Vec<Vec<u32>> = (0..N_REQUESTS)
        .map(|i| vec![(i as u32) % 251 + 1, 3, 5])
        .collect();

    let start = Instant::now();
    let handles: Vec<_> = prompts
        .iter()
        .map(|p| server.submit(Request::greedy(p, N_NEW)))
        .collect();
    let mut tokens = 0usize;
    for h in &handles {
        let r = h.wait();
        assert!(r.is_completed(), "{:?}", r.outcome);
        tokens += r.tokens.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    assert_eq!(stats.completed as usize, N_REQUESTS);
    server.shutdown();
    tokens as f64 / elapsed
}

fn main() {
    section("Decode throughput vs serving concurrency (kt-serve, tiny DS-3)");
    let mut rows = Vec::new();
    let mut base = 0.0;
    for c in [1usize, 2, 4, 8] {
        let tps = throughput_at(c);
        if c == 1 {
            base = tps;
        }
        rows.push(vec![
            c.to_string(),
            format!("{tps:.1}"),
            format!("{:.2}x", tps / base),
        ]);
    }
    table(&["Concurrency", "tok/s", "vs c=1"], &rows);
    println!();
    println!("Continuous batching amortizes the per-step graph-launch cost across");
    println!("every active sequence; per-request latency rises only by the extra");
    println!("expert compute each step carries (cf. the batch-size sweep in");
    println!("ablation_batch, which models the same effect analytically).");
}
