//! Chunked-prefill ablation: p99 inter-token gap and TTFT under a
//! mixed workload — short decode streams running while a long prompt
//! prefills — with the token-budget step scheduler's chunking enabled
//! vs disabled (monolithic prefill, the pre-chunking behavior).
//!
//! Modes:
//! * default — timed run: several interleaved enabled/disabled pairs,
//!   medians reported, and `BENCH_prefill.json` written to the current
//!   directory (run from the repo root). Also measures single-stream
//!   decode throughput with the `ablation_hotpath` methodology to show
//!   chunking infrastructure does not tax the pure-decode hot path.
//! * `--smoke` — CI gate: one pair; asserts the p99 inter-token gap of
//!   the decode streams is **strictly lower** with chunking than
//!   without; exits nonzero otherwise.

use kt_bench::{section, table};
use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_trace::LogHistogram;
use kt_model::{config::ModelConfig, ModelPreset};
use kt_serve::{Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Decode streams active while the long prompt arrives.
const N_DECODE_STREAMS: usize = 4;
/// Tokens each decode stream generates.
const DECODE_MAX_NEW: usize = 64;
/// Long-prompt length (the head-of-line blocker).
const LONG_PROMPT: usize = 512;

fn bench_config() -> ModelConfig {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.name = "prefill-bench".into();
    // Room for the 512-token prompt plus generation on top of the
    // decode streams (the tiny preset's 512 positions are too tight).
    cfg.max_seq = 1024;
    cfg
}

fn engine() -> Arc<HybridEngine> {
    Arc::new(
        HybridEngine::random(
            &bench_config(),
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 29,
                ..Default::default()
            },
        )
        .expect("engine"),
    )
}

struct MixedRun {
    /// p99 over every decode-stream inter-token gap, milliseconds.
    p99_itl_ms: f64,
    /// Worst single inter-token gap, milliseconds.
    max_itl_ms: f64,
    /// Long request's time to first token, milliseconds.
    ttft_long_ms: f64,
    /// Steps the scheduler ran (mixed steps under chunking).
    steps: u64,
}

/// Runs the mixed workload once: decode streams first, then the long
/// prompt lands while they generate.
fn mixed_workload(chunked: bool) -> MixedRun {
    let cfg = if chunked {
        ServerConfig {
            max_batch: 8,
            prefill_chunk: 64,
            step_token_budget: 96,
            // Both arms measure cold prefill; prefix reuse would let
            // repeated prompts skip the work under measurement.
            prefix_cache_bytes: 0,
            ..Default::default()
        }
    } else {
        // Chunk at or above the longest prompt = monolithic prefill:
        // the whole prompt joins one step, as before this scheduler.
        ServerConfig {
            max_batch: 8,
            prefill_chunk: 1024,
            step_token_budget: 1024,
            prefix_cache_bytes: 0,
            ..Default::default()
        }
    };
    let server = Server::start(engine(), cfg).expect("valid config");

    let decode_handles: Vec<_> = (0..N_DECODE_STREAMS)
        .map(|i| {
            let prompt = [i as u32 + 1, 7, 13, 2];
            server.submit(Request::greedy(&prompt, DECODE_MAX_NEW))
        })
        .collect();
    // Let every stream establish (first token out) before the blocker
    // arrives, so its prefill cost lands inside their gap samples.
    let deadline = Instant::now() + Duration::from_secs(60);
    while (server.stats().tokens_generated as usize) < N_DECODE_STREAMS {
        assert!(Instant::now() < deadline, "decode streams never started");
        std::thread::sleep(Duration::from_micros(200));
    }
    let long_prompt: Vec<u32> = (0..LONG_PROMPT).map(|i| (i % 251) as u32).collect();
    let long = server.submit(Request::greedy(&long_prompt, 4));

    let mut gaps = LogHistogram::new();
    for h in &decode_handles {
        let r = h.wait();
        assert!(r.is_completed(), "{:?}", r.outcome);
        gaps.record_all(r.metrics.token_latencies_ns.iter().copied());
    }
    let lr = long.wait();
    assert!(lr.is_completed(), "{:?}", lr.outcome);
    let stats = server.stats();
    server.shutdown();

    MixedRun {
        p99_itl_ms: gaps.percentile(99.0).unwrap() as f64 / 1e6,
        max_itl_ms: gaps.max().unwrap() as f64 / 1e6,
        ttft_long_ms: lr.metrics.ttft_ns.unwrap() as f64 / 1e6,
        steps: stats.steps,
    }
}

/// Single-stream decode throughput, `ablation_hotpath` methodology
/// (realistic vocab, deep timed window) — the guard that the chunking
/// scheduler costs the pure-decode hot path nothing.
fn decode_tokens_per_s() -> f64 {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.vocab = 8192;
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine");
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let n_decode = 448usize;
    let start = Instant::now();
    for _ in 0..n_decode {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    n_decode as f64 / start.elapsed().as_secs_f64()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn fmt_samples(xs: &[f64]) -> String {
    let cells: Vec<String> = xs.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let pairs = if smoke { 1 } else { 5 };

    section(&format!(
        "Chunked prefill vs monolithic: {N_DECODE_STREAMS} decode streams + \
         {LONG_PROMPT}-token prompt ({pairs} interleaved pair(s))"
    ));

    // Interleave enabled/disabled runs so host noise hits both arms
    // alike; medians across pairs.
    let mut mono_p99 = Vec::new();
    let mut mono_max = Vec::new();
    let mut mono_ttft = Vec::new();
    let mut chunk_p99 = Vec::new();
    let mut chunk_max = Vec::new();
    let mut chunk_ttft = Vec::new();
    let mut mono_steps = 0;
    let mut chunk_steps = 0;
    for _ in 0..pairs {
        let m = mixed_workload(false);
        mono_p99.push(m.p99_itl_ms);
        mono_max.push(m.max_itl_ms);
        mono_ttft.push(m.ttft_long_ms);
        mono_steps = m.steps;
        let c = mixed_workload(true);
        chunk_p99.push(c.p99_itl_ms);
        chunk_max.push(c.max_itl_ms);
        chunk_ttft.push(c.ttft_long_ms);
        chunk_steps = c.steps;
    }
    let m_p99 = median(&mut mono_p99);
    let c_p99 = median(&mut chunk_p99);
    let m_max = median(&mut mono_max);
    let c_max = median(&mut chunk_max);
    let m_ttft = median(&mut mono_ttft);
    let c_ttft = median(&mut chunk_ttft);

    table(
        &["Prefill", "p99 ITL (ms)", "max ITL (ms)", "long TTFT (ms)", "steps"],
        &[
            vec![
                "monolithic".into(),
                format!("{m_p99:.1}"),
                format!("{m_max:.1}"),
                format!("{m_ttft:.1}"),
                mono_steps.to_string(),
            ],
            vec![
                "chunked (64/96)".into(),
                format!("{c_p99:.1}"),
                format!("{c_max:.1}"),
                format!("{c_ttft:.1}"),
                chunk_steps.to_string(),
            ],
        ],
    );
    println!();
    println!("p99_itl_ratio {:.2}x", m_p99 / c_p99);
    println!(
        "The token budget bounds each mixed step, so a decode stream's worst"
    );
    println!(
        "gap is one chunk's work instead of the whole prompt's; TTFT of the"
    );
    println!("long request moves only by the decode work sharing its steps.");

    if smoke {
        if c_p99 < m_p99 {
            println!(
                "SMOKE OK: chunked p99 ITL {c_p99:.1} ms < monolithic {m_p99:.1} ms"
            );
        } else {
            eprintln!(
                "SMOKE FAIL: chunked p99 ITL {c_p99:.1} ms >= monolithic \
                 {m_p99:.1} ms — chunking did not bound the inter-token gap"
            );
            std::process::exit(1);
        }
        return;
    }

    // Full mode: decode-throughput guard + machine-readable artifact.
    section("Single-stream decode throughput (hotpath methodology)");
    let mut decode_samples: Vec<f64> = (0..5).map(|_| decode_tokens_per_s()).collect();
    let decode_median = median(&mut decode_samples);
    println!("decode_tokens_per_s_median {decode_median:.1}");

    let json = format!(
        r#"{{
  "bench": "ablation_prefill",
  "workload": {{
    "model": "DeepSeekV3 tiny preset, max_seq=1024",
    "engine": "n_cpu_workers=2, mode=AsyncGraph, n_deferred=2, seed=29",
    "mixed": "{N_DECODE_STREAMS} decode streams (4-token prompts, {DECODE_MAX_NEW} new tokens) + one {LONG_PROMPT}-token prompt submitted once all streams emitted a token",
    "configs": "chunked: prefill_chunk=64 step_token_budget=96; monolithic: prefill_chunk=1024 (>= prompt, single-step prefill)"
  }},
  "method": "{pairs} interleaved monolithic/chunked pairs, medians reported (this host has heavy CPU-steal noise)",
  "monolithic": {{
    "p99_itl_ms_samples": {mono_p99},
    "p99_itl_ms_median": {m_p99:.1},
    "max_itl_ms_median": {m_max:.1},
    "long_ttft_ms_median": {m_ttft:.1}
  }},
  "chunked": {{
    "p99_itl_ms_samples": {chunk_p99},
    "p99_itl_ms_median": {c_p99:.1},
    "max_itl_ms_median": {c_max:.1},
    "long_ttft_ms_median": {c_ttft:.1}
  }},
  "p99_itl_ratio_median": {ratio:.2},
  "decode_guard": {{
    "method": "single-stream decode, ablation_hotpath methodology (vocab=8192, 448 timed steps), 5 reps",
    "decode_tokens_per_s_samples": {decode_samples},
    "decode_tokens_per_s_median": {decode_median:.1},
    "pr2_baseline_median": 1766.4
  }}
}}
"#,
        mono_p99 = fmt_samples(&mono_p99),
        chunk_p99 = fmt_samples(&chunk_p99),
        ratio = m_p99 / c_p99,
        decode_samples = fmt_samples(&decode_samples),
    );
    std::fs::write("BENCH_prefill.json", &json).expect("write BENCH_prefill.json");
    println!();
    println!("wrote BENCH_prefill.json");
}
