//! Regenerates Figure 13 (analog): Expert Skipping vs Expert Deferral
//! accuracy deltas as the number of affected experts grows, plus the
//! transformer-level logit-divergence corroboration.

use kt_bench::{pct, section, table};
use kt_eval::experiments::{divergence_study, fig13_analog, EvalBudget};
use kt_eval::tasks::TaskKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let budget = if quick { EvalBudget::quick() } else { EvalBudget::full() };
    section("Figure 13 (analog): accuracy change vs affected experts (DS-3 analog)");
    let points = fig13_analog(&TaskKind::all(), &budget, 42);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.affected.to_string(),
                pct(p.deferral_delta_pct),
                pct(p.skipping_delta_pct),
            ]
        })
        .collect();
    table(&["Affected experts", "Deferral", "Skipping"], &rows);

    section("Transformer-level logit divergence (tiny DS-3, decode)");
    let rows = divergence_study(8, 42).expect("divergence study");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.affected.to_string(),
                format!("{:.4}", r.kl_deferral),
                format!("{:.4}", r.kl_skipping),
                format!("{:.0}%", r.agree_deferral * 100.0),
                format!("{:.0}%", r.agree_skipping * 100.0),
            ]
        })
        .collect();
    table(
        &["Affected", "KL deferral", "KL skipping", "Top-1 agree (defer)", "Top-1 agree (skip)"],
        &printable,
    );
    println!();
    println!("Paper reference: at 6 affected experts, LiveBench average drops 0.5%");
    println!("under Deferral vs 13.3% under Skipping; deferral wins at most counts.");
}
