//! Runs every table/figure regenerator in sequence (the one-shot
//! reproduction driver used to assemble EXPERIMENTS.md).
//!
//! Accuracy experiments honor `--quick` for a fast smoke run.

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bins = [
        "table1", "fig3", "fig4", "fig7", "fig10", "fig11", "fig12", "fig14",
        "ablation_numa", "ablation_graph", "ablation_sched", "ablation_multigpu",
        "ablation_batch", "ablation_kvoffload", "ablation_placement", "ablation_offload",
        "ablation_latency", "ablation_concurrency", "ablation_trace",
        "ablation_prefix", "ablation_slo", "ablation_quant", "ablation_paged",
        "table2", "fig13",
    ];
    // ablation_hotpath and ablation_prefill are excluded: they are
    // timed/artifact-writing runs with their own CI smoke modes.
    // ablation_trace also has a smoke mode (which additionally gates
    // flight-recorder capture and attribution coverage) but is cheap
    // enough to run in full here — its full run also exercises the
    // flight arm and writes the capture/coverage numbers into
    // BENCH_trace.json. ablation_prefix,
    // ablation_slo, ablation_placement and ablation_quant run in smoke
    // mode under --quick and in full (artifact-writing) mode otherwise.
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let mut cmd = Command::new(dir.join(bin));
        if quick && (bin == "table2" || bin == "fig13") {
            cmd.arg("--quick");
        }
        if quick
            && (bin == "ablation_prefix"
                || bin == "ablation_slo"
                || bin == "ablation_placement"
                || bin == "ablation_quant"
                || bin == "ablation_paged")
        {
            cmd.arg("--smoke");
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
}
