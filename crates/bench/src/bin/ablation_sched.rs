//! §3.2 ablation: dynamic vs static task scheduling under skewed expert
//! activation (real fused-MoE kernels) plus the simulated impact.

use kt_bench::{section, table};
use kt_hwsim::cost::{CpuKernel, CpuMoeOp, KernelPhase};
use kt_hwsim::hardware::CpuSpec;
use kt_hwsim::Calibration;
use kt_kernels::dispatch::Backend;
use kt_kernels::moe::{FusedMoE, MoeRouting};
use kt_kernels::schedule::{SchedulePolicy, ThreadPool};
use kt_tensor::rng::seeded;
use kt_tensor::{Matrix, WeightDtype};
use std::time::Instant;

fn main() {
    section("Dynamic scheduling ablation (simulated, DS-3 prefill layer)");
    let cal = Calibration::default();
    let cpu = CpuSpec::dual_xeon_8452y();
    let op = CpuMoeOp {
        tokens_per_expert: 256.0,
        n_active_experts: 256.0,
        flops: 256.0 * 256.0 * 3.0 * 2.0 * 7168.0 * 2048.0,
        bytes: 256.0 * 3.0 * 7168.0 * 2048.0 * 2.0,
    };
    let stat = cal.cpu_moe_time(CpuKernel::KtAmx, &op, &cpu, true, false, KernelPhase::Prefill);
    let dynam = cal.cpu_moe_time(CpuKernel::KtAmx, &op, &cpu, true, true, KernelPhase::Prefill);
    table(
        &["Scheduling", "Layer time (ms)"],
        &[
            vec!["static".into(), format!("{:.1}", stat * 1e3)],
            vec!["dynamic".into(), format!("{:.1}", dynam * 1e3)],
        ],
    );
    println!("Speedup: {:.2}x (paper: up to 1.83x)", stat / dynam);

    section("Dynamic scheduling (real fused MoE, skewed prefill routing)");
    let mut rng = seeded(11);
    let moe = FusedMoE::random(16, 64, 96, WeightDtype::F32, Backend::HybridAmxAvx512, &mut rng)
        .unwrap();
    // Skewed routing: most tokens pile onto two experts.
    let n_tokens = 64;
    let routing = MoeRouting::new(
        (0..n_tokens)
            .map(|t| {
                if t % 4 == 0 {
                    vec![(t % 16, 1.0)]
                } else {
                    vec![(0, 0.7), (1, 0.3)]
                }
            })
            .collect(),
    );
    let x = Matrix::random_uniform(n_tokens, 64, 1.0, &mut rng).unwrap();
    let pool = ThreadPool::new(4).unwrap();
    let time = |policy: SchedulePolicy| {
        // Warm up, then measure.
        let _ = moe.forward(&x, &routing, Some(&pool), policy).unwrap();
        let start = Instant::now();
        for _ in 0..10 {
            let _ = moe.forward(&x, &routing, Some(&pool), policy).unwrap();
        }
        start.elapsed().as_secs_f64() / 10.0
    };
    let t_static = time(SchedulePolicy::Static);
    let t_dynamic = time(SchedulePolicy::Dynamic);
    table(
        &["Scheduling", "Fused MoE forward (ms)"],
        &[
            vec!["static".into(), format!("{:.3}", t_static * 1e3)],
            vec!["dynamic".into(), format!("{:.3}", t_dynamic * 1e3)],
        ],
    );
    println!(
        "Real-kernel ratio: {:.2}x (parallel speedups require multi-core hosts)",
        t_static / t_dynamic
    );
}
