//! Summarizes exported per-request trace JSON: "why was this token
//! slow?" without opening Perfetto.
//!
//! Reads a Chrome-trace JSON array produced by
//! `Server::export_request_trace` / `Server::export_captured_traces`
//! (or any file containing the flight recorder's per-request track
//! groups) and prints one table row per request: SLO class, outcome,
//! violation flag, TTFT, ITL p50/p99, and the top-3 latency components
//! by attributed time.
//!
//! Usage: `trace_summarize <trace.json>` (or `-` / no argument for
//! stdin).
//!
//! The exporter writes one event per line with flat `args`, so the
//! parsing here is line-oriented string slicing — the same approach
//! the integration tests use — rather than a JSON dependency.

use std::collections::BTreeMap;
use std::io::Read;

/// Extracts the string value of `"key":"..."` from a single-line JSON
/// object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts a numeric field as an integer at nanosecond scale:
/// `"ts":1234.567` (exporter microseconds) parses to 1_234_567 when
/// `scale_us`; `"request_id":7` parses to 7 when not.
fn num_field(line: &str, key: &str, scale_us: bool) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest: String = line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    match rest.split_once('.') {
        Some((us, frac)) => {
            if !scale_us {
                return None;
            }
            Some(us.parse::<u64>().ok()? * 1_000 + frac.parse::<u64>().ok()?)
        }
        None => {
            let v: u64 = rest.parse().ok()?;
            Some(if scale_us { v * 1_000 } else { v })
        }
    }
}

/// Everything the table needs about one request, accumulated while
/// scanning the event lines.
#[derive(Debug, Default)]
struct Req {
    class: Option<u32>,
    outcome: String,
    violated: bool,
    enqueued_ns: Option<u64>,
    first_token_ns: Option<u64>,
    /// End time of every sampled step, in event order.
    sampled_end_ns: Vec<u64>,
    /// Attributed nanoseconds per component span name.
    components: BTreeMap<String, u64>,
}

/// Parses the track-group title the flight recorder writes:
/// `request <id> [class <c>] <outcome>[ SLO-VIOLATED]`.
fn parse_title(title: &str) -> Option<(u64, u32, String, bool)> {
    let rest = title.strip_prefix("request ")?;
    let (id, rest) = rest.split_once(" [class ")?;
    let (class, rest) = rest.split_once("] ")?;
    let violated = rest.ends_with(" SLO-VIOLATED");
    let outcome = rest.trim_end_matches(" SLO-VIOLATED").to_string();
    Some((id.parse().ok()?, class.parse().ok()?, outcome, violated))
}

fn summarize(json: &str) -> BTreeMap<u64, Req> {
    let mut reqs: BTreeMap<u64, Req> = BTreeMap::new();
    for raw in json.lines() {
        let line = raw.trim_end_matches(',');
        if line.contains("\"ph\":\"M\"") {
            // Track-group titles carry class/outcome/violation; the
            // event's own name is "thread_name", so look inside args.
            let Some(at) = line.find("\"args\":{\"name\":\"") else { continue };
            let title = &line[at + "\"args\":{\"name\":\"".len()..];
            let Some(end) = title.find('"') else { continue };
            if let Some((id, class, outcome, violated)) = parse_title(&title[..end]) {
                let r = reqs.entry(id).or_default();
                r.class = Some(class);
                r.outcome = outcome;
                r.violated = violated;
            }
            continue;
        }
        if !line.contains("\"ph\":\"X\"") {
            continue;
        }
        let Some(id) = num_field(line, "request_id", false) else { continue };
        let Some(name) = str_field(line, "name") else { continue };
        let Some(ts) = num_field(line, "ts", true) else { continue };
        let dur = num_field(line, "dur", true).unwrap_or(0);
        let r = reqs.entry(id).or_default();
        match name.as_str() {
            "request.first_token" => r.first_token_ns = Some(ts),
            "request.step" => {
                if num_field(line, "sampled", false) == Some(1) {
                    r.sampled_end_ns.push(ts + dur);
                }
            }
            "queue_wait" => {
                r.enqueued_ns = Some(ts);
                *r.components.entry(name).or_default() += dur;
            }
            // Component sub-spans: attention, gating, cpu_expert, ...
            _ => *r.components.entry(name).or_default() += dur,
        }
    }
    reqs
}

/// Nearest-rank percentile of an unsorted sample, in place.
fn percentile(xs: &mut [u64], p: f64) -> Option<u64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_unstable();
    let idx = (p / 100.0 * (xs.len() - 1) as f64).round() as usize;
    Some(xs[idx.min(xs.len() - 1)])
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn render(reqs: &BTreeMap<u64, Req>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}  {:>5}  {:<9}  {:<12}  {:>9}  {:>10}  {:>10}  top components\n",
        "request", "class", "outcome", "flags", "ttft_ms", "itl_p50_ms", "itl_p99_ms"
    ));
    for (id, r) in reqs {
        // Inter-token latencies: gaps between consecutive sampled-step
        // completions (the first sampled step ends at the first token,
        // so the gaps start there).
        let mut itl: Vec<u64> = r
            .sampled_end_ns
            .windows(2)
            .map(|w| w[1].saturating_sub(w[0]))
            .collect();
        let p50 = percentile(&mut itl, 50.0);
        let p99 = percentile(&mut itl, 99.0);
        let ttft = match (r.enqueued_ns, r.first_token_ns) {
            (Some(q), Some(f)) => Some(f.saturating_sub(q)),
            _ => None,
        };
        let total: u64 = r.components.values().sum();
        let mut comps: Vec<(&str, u64)> =
            r.components.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        comps.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let top: Vec<String> = comps
            .iter()
            .take(3)
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k} {:.1}%", *v as f64 / total.max(1) as f64 * 100.0))
            .collect();
        let na = || "-".to_string();
        out.push_str(&format!(
            "{:>8}  {:>5}  {:<9}  {:<12}  {:>9}  {:>10}  {:>10}  {}\n",
            id,
            r.class.map_or_else(na, |c| c.to_string()),
            if r.outcome.is_empty() { "?" } else { &r.outcome },
            if r.violated { "SLO-VIOLATED" } else { "-" },
            ttft.map_or_else(na, ms),
            p50.map_or_else(na, ms),
            p99.map_or_else(na, ms),
            top.join(" | "),
        ));
    }
    out
}

fn main() {
    let arg = std::env::args().nth(1);
    let json = match arg.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).expect("read stdin");
            buf
        }
        Some("--help") | Some("-h") => {
            eprintln!("usage: trace_summarize <trace.json>  (- or no arg reads stdin)");
            return;
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("trace_summarize: cannot read {path}: {e}");
            std::process::exit(1);
        }),
    };
    let reqs = summarize(&json);
    if reqs.is_empty() {
        eprintln!("trace_summarize: no per-request events found (export with \
                   Server::export_request_trace / export_captured_traces)");
        std::process::exit(1);
    }
    print!("{}", render(&reqs));
    println!("{} request(s)", reqs.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_trace::{Component, RequestTrace, StepTrace, TraceOutcome, N_COMPONENTS};

    /// A synthetic two-step trace with known numbers, round-tripped
    /// through the real exporter.
    fn trace() -> RequestTrace {
        let mut t = RequestTrace::begin(7, 1, 1_000_000);
        t.admitted(3_000_000);
        let mut comps = [0u64; N_COMPONENTS];
        comps[Component::Attention as usize] = 600_000;
        comps[Component::CpuExpert as usize] = 300_000;
        comps[Component::Merge as usize] = 100_000;
        // Prefill chunk ends (and samples the first token) at 8 ms;
        // two decode steps end at 9 and 10 ms: ITL gaps of 1 ms each.
        t.push_step(StepTrace::prefill(0, 3_000_000, 5_000_000, 16, true));
        t.push_step(StepTrace::decode(1, 8_000_000, 1_000_000, comps, 0));
        t.push_step(StepTrace::decode(2, 9_000_000, 1_000_000, comps, 0));
        t.finish(10_000_000, TraceOutcome::Completed, true, 2_000_000, Some(7_000_000), 2_000_000, 3);
        t
    }

    #[test]
    fn summarizes_ttft_itl_and_top_components() {
        let reqs = summarize(&trace().export_chrome());
        assert_eq!(reqs.len(), 1);
        let r = &reqs[&7];
        assert_eq!(r.class, Some(1));
        assert_eq!(r.outcome, "completed");
        assert!(r.violated);
        // TTFT = first token (8 ms) − enqueue (1 ms) = 7 ms.
        let ttft = r.first_token_ns.unwrap() - r.enqueued_ns.unwrap();
        assert_eq!(ttft, 7_000_000);
        let mut itl: Vec<u64> = r.sampled_end_ns.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(itl, vec![1_000_000, 1_000_000]);
        assert_eq!(percentile(&mut itl, 50.0), Some(1_000_000));
        assert_eq!(r.components["queue_wait"], 2_000_000);
        assert_eq!(r.components["prefill_chunk"], 5_000_000);
        assert_eq!(r.components["attention"], 1_200_000, "two decode steps");
        let table = render(&reqs);
        assert!(table.contains("SLO-VIOLATED"), "{table}");
        assert!(table.contains("7.000"), "ttft ms in:\n{table}");
        assert!(table.contains("prefill_chunk"), "top component in:\n{table}");
    }

    #[test]
    fn title_parser_handles_all_outcomes() {
        assert_eq!(
            parse_title("request 12 [class 2] shed SLO-VIOLATED"),
            Some((12, 2, "shed".to_string(), true))
        );
        assert_eq!(
            parse_title("request 3 [class 0] completed"),
            Some((3, 0, "completed".to_string(), false))
        );
        assert_eq!(parse_title("kt-vgpu stream 0"), None);
    }

    #[test]
    fn empty_or_foreign_traces_summarize_to_nothing() {
        assert!(summarize("[\n\n]\n").is_empty());
        // Engine-level spans without request ids are ignored.
        let foreign = "[\n{\"ph\":\"X\",\"name\":\"engine.attention\",\"cat\":\"kt\",\
                       \"pid\":0,\"tid\":3,\"ts\":1.000,\"dur\":2.000,\
                       \"args\":{\"a\":0,\"b\":0}}\n]\n";
        assert!(summarize(foreign).is_empty());
    }
}
