//! §5 extension: multi-GPU pipelined prefill (layers partitioned across
//! GPUs, prompt processed in chunks). Shows where extra GPUs help
//! (GPU-bound deployments) and where they cannot (CPU-bound DS-3).

use kt_bench::{section, table};
use kt_hwsim::policy::SystemPolicy;
use kt_hwsim::workload::Precision;
use kt_hwsim::{simulate_prefill_pipeline, Calibration, Platform};
use kt_model::ModelPreset;

fn main() {
    let cal = Calibration::default();
    let policy = SystemPolicy::ktransformers();
    let prompt = 8192;
    let chunk = 1024;

    for (label, preset, platform) in [
        (
            "DS-3 / A100 (CPU-bound prefill)",
            ModelPreset::DeepSeekV3,
            Platform::a100_dual_xeon(),
        ),
        (
            "QW-2 / RTX4080 + 4-socket CPU (GPU-bound prefill)",
            ModelPreset::Qwen2Moe,
            {
                let mut p = Platform::rtx4080_dual_xeon();
                p.cpu.sockets = 4;
                p
            },
        ),
    ] {
        section(&format!("Pipelined prefill, {label}"));
        let cfg = preset.full_config();
        let mut rows = Vec::new();
        for n_gpus in [1usize, 2, 4] {
            let rep = simulate_prefill_pipeline(
                &policy,
                &platform,
                &cfg,
                Precision::Bf16,
                prompt,
                n_gpus,
                chunk,
                &cal,
            )
            .expect("simulation");
            let utils: Vec<String> = rep
                .gpu_utils
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect();
            rows.push(vec![
                n_gpus.to_string(),
                format!("{:.0}", rep.tokens_per_s),
                format!("{:.0}%", rep.cpu_util * 100.0),
                utils.join(" "),
            ]);
        }
        table(&["GPUs", "Prefill tok/s", "CPU util", "GPU utils"], &rows);
    }
    println!();
    println!("Multi-GPU pipelining pays off exactly when the GPU side is the");
    println!("bottleneck; DS-3's routed experts keep the CPU saturated regardless.");
}
