//! Regenerates Figure 3: MoE-layer throughput (TFLOPS) on a single
//! socket vs tokens per expert, for PyTorch AMX (oneDNN), PyTorch
//! AVX-512 and the KTransformers AMX kernel (DS-3 layer).

use kt_bench::{section, series_table};
use kt_hwsim::experiments::fig3_kernel_throughput;
use kt_hwsim::Calibration;

fn main() {
    section("Figure 3: MoE layer throughput (TFLOPS), DS-3, 1 socket");
    let series = fig3_kernel_throughput(&Calibration::default());
    series_table("tokens/expert", &series, |v| format!("{v:.2}"));
    println!();
    println!("Paper reference: plateaus at ~5.4 (oneDNN AMX), ~1.8 (AVX-512),");
    println!("21.3 TFLOPS (KTransformers AMX, 3.98x over oneDNN).");
}
