//! Regenerates Figure 11: prefill throughput vs prompt length for every
//! deployment and system.

use kt_bench::{section, series_table, tput};
use kt_hwsim::experiments::fig11_prefill;
use kt_hwsim::Calibration;

fn main() {
    let prompts = [32usize, 128, 512, 2048, 8192];
    let all = fig11_prefill(&Calibration::default(), &prompts).expect("simulation");
    for (dep, series) in &all {
        section(&format!("Figure 11: prefill tok/s, {}", dep.label()));
        series_table("prompt", series, tput);
    }
    println!();
    println!("Paper reference: KTransformers leads at every prompt length");
    println!("(4.62-19.74x total prefill speedups); Llama.cpp beats Fiddler at");
    println!("short prompts, Fiddler (oneDNN AMX) wins at long prompts.");
}
