//! Regenerates Table 2 (analog): accuracy with and without Expert
//! Deferral on the synthetic benchmark suite.
//!
//! Substitution (DESIGN.md): trained small MoE residual networks on
//! synthetic tasks stand in for the 671B/236B/57B LLMs on
//! HumanEval/MBPP/GSM8K/StrategyQA. Pass `--quick` for a fast run.

use kt_bench::{section, table};
use kt_eval::experiments::{table2_analog, EvalBudget};
use kt_eval::tasks::TaskKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let budget = if quick { EvalBudget::quick() } else { EvalBudget::full() };
    section("Table 2 (analog): accuracy with/without Expert Deferral");
    let tasks = TaskKind::all();
    let rows = table2_analog(&tasks, &budget, 42);
    let mut printable = Vec::new();
    for r in &rows {
        let mut row = vec![format!("{} {}", r.model, r.config)];
        for s in &r.scores {
            row.push(format!("{s:.1}"));
        }
        printable.push(row);
    }
    let headers: Vec<&str> = std::iter::once("Model (I+D)")
        .chain(tasks.iter().map(|t| t.name()))
        .collect();
    table(&headers, &printable);
    println!();
    println!("Paper reference: deferral shifts scores by <= 2 points on");
    println!("HumanEval/MBPP/GSM8K/StrategyQA for all three models.");
}
