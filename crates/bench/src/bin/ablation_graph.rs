//! §3.3 ablation: single-CUDA-Graph decode vs per-op launches — both in
//! the simulator and on the real engine with injected launch latency.

use kt_bench::{section, table};
use kt_core::{EngineConfig, HybridEngine, SchedMode, VgpuConfig};
use kt_hwsim::experiments::ablation_graph;
use kt_hwsim::Calibration;
use kt_model::ModelPreset;
use std::time::{Duration, Instant};

fn main() {
    section("CUDA Graph ablation (simulated, DS-3 decode)");
    let rows = ablation_graph(&Calibration::default()).expect("simulation");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, t)| vec![n.clone(), format!("{t:.2} tok/s")])
        .collect();
    table(&["Launch mode", "Decode throughput"], &printable);
    println!("Speedup: {:.2}x (paper: up to 1.23x)", rows[1].1 / rows[0].1);

    section("CUDA Graph ablation (real engine, injected 30us launch latency)");
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let run = |mode: SchedMode| -> (f64, u64, u64) {
        let engine = HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode,
                vgpu: VgpuConfig {
                    launch_latency: Duration::from_micros(30),
                    graph_launch_latency: Duration::from_micros(30),
                    n_streams: 1,
                },
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let _ = engine.forward(&[1, 2, 3]).unwrap();
        engine.reset();
        let _ = engine.forward(&[1, 2, 3]).unwrap();
        let start = Instant::now();
        let n = 24;
        let _ = engine.generate_greedy(&[5], n).unwrap();
        let el = start.elapsed().as_secs_f64();
        let stats = engine.launch_stats();
        (n as f64 / el, stats.kernel_launches + stats.graph_replays, stats.launch_overhead_ns / 1000)
    };
    let (sync_tput, sync_launches, sync_ovh) = run(SchedMode::Sync);
    let (graph_tput, graph_launches, graph_ovh) = run(SchedMode::AsyncGraph);
    table(
        &["Mode", "tok/s", "host launches", "launch overhead (us)"],
        &[
            vec!["per-op launches".into(), format!("{sync_tput:.1}"), sync_launches.to_string(), sync_ovh.to_string()],
            vec!["single graph".into(), format!("{graph_tput:.1}"), graph_launches.to_string(), graph_ovh.to_string()],
        ],
    );
    println!("Real-engine speedup: {:.2}x", graph_tput / sync_tput);
}
