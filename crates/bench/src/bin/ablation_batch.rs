//! Batch-size sweep for decode: the paper evaluates batch 1 (the local
//! deployment setting); this shows how expert-weight traffic amortizes
//! as batch grows — the reason MoE decode also suits huge cloud batches
//! (§1's two deployment extremes).

use kt_bench::{section, table};
use kt_hwsim::policy::SystemPolicy;
use kt_hwsim::workload::Precision;
use kt_hwsim::{simulate_batch_decode, Calibration, Platform};
use kt_model::ModelPreset;

fn main() {
    let cal = Calibration::default();
    let platform = Platform::a100_dual_xeon();
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let policy = SystemPolicy::ktransformers();
    section("Decode throughput vs batch size (DS-3, BF16, A100)");
    let mut rows = Vec::new();
    let mut base = 0.0;
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let rep = simulate_batch_decode(
            &policy, &platform, &cfg, Precision::Bf16, 32, 8, batch, &cal,
        )
        .expect("simulation");
        if batch == 1 {
            base = rep.tokens_per_s;
        }
        rows.push(vec![
            batch.to_string(),
            format!("{:.1}", rep.tokens_per_s),
            format!("{:.2}", rep.tokens_per_s / base / batch as f64),
            format!("{:.0}%", rep.cpu_util * 100.0),
        ]);
    }
    table(
        &["Batch", "tok/s", "Per-request efficiency", "CPU util"],
        &rows,
    );
    println!();
    println!("DS-3's 256 experts mean little weight reuse at small batches (8");
    println!("tokens x top-8 hit ~57 distinct experts); amortization arrives once");
    println!("the expert pool saturates, at the cost of per-request throughput.");
}
