//! Dynamic expert placement ablation: the live cost-model-driven
//! placement policy (`PlacementPolicy::Dynamic` + the value-aware
//! VRAM expert cache) versus the paper's static all-CPU expert split,
//! on the real engine.
//!
//! Routing is imposed through the engine's routing-override hook so
//! both arms of a pair see the *identical* deterministic token→expert
//! stream:
//!
//! * **skewed** — Zipf(s=1.2) expert popularity: a handful of hot
//!   experts carry most of the gating mass, so the cache admits them,
//!   they run on the vGPU, and the CPU worker only sees the cold
//!   tail — CPU and vGPU expert work genuinely overlap.
//! * **uniform** — Zipf(s=0): no expert is persistently hot, the
//!   value function admits little, and dynamic placement must cost
//!   (almost) nothing over the static split.
//! * **cold cache** — skewed routing but a budget of one expert:
//!   value-driven admission must degrade gracefully instead of
//!   thrashing uploads.
//!
//! Correctness rider: dynamic placement partitions the immediate
//! routing by whole expert and merges bucket outputs in the same
//! serial expert order the CPU path uses, so logits are checked
//! **bitwise** against the static split before anything is timed.
//!
//! Headline metric: the **expert-phase critical path**, measured from
//! kt-trace spans (real host kernel durations, not simulated):
//!
//! ```text
//! crit = max(Σ cpu expert span ns, Σ vGPU expert span ns) + Σ merge ns
//! ```
//!
//! Under the static split the vGPU term is zero, so `crit` is the full
//! serial CPU expert time; under dynamic placement the two device
//! tracks run concurrently and only the bitwise-ordered merge is
//! serial. This is the latency the schedule achieves whenever the CPU
//! worker and the device thread have a core each — wall-clock decode
//! tok/s is also measured and reported, but on a container with a
//! single CPU core (CI runners included) every thread timeshares one
//! core and *no* placement policy can change wall-clock, so the gate
//! is on the span metric. Both appear in `BENCH_placement.json`
//! together with the core count the run observed.
//!
//! Modes:
//! * default — all arms, writes `BENCH_placement.json` (run from the
//!   repo root).
//! * `--smoke` — CI gate: skewed-routing expert-critical-path speedup
//!   ≥ 1.2x the static split, uniform-arm critical-path regression
//!   ≤ 3%, and the plain (no-hook) static decode path within the
//!   cross-container tolerance of BENCH_slo.json's recorded 2183.4
//!   tok/s median; exits nonzero otherwise.

use kt_bench::{section, table};
use kt_core::{EngineConfig, HybridEngine, PlacementPolicy, SchedMode};
use kt_kernels::moe::MoeRouting;
use kt_model::ModelPreset;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Zipf exponent of the skewed arm.
const SKEW: f64 = 1.2;
/// Expert-cache budget of the bounded arms, in expert-slots. The cache
/// is keyed by (layer, expert) and the budget spans all four MoE
/// layers, so 24 slots ≈ 6 hot experts per layer — 19% of the 128
/// (layer, expert) pairs.
const CACHE_EXPERTS: usize = 24;
/// Timed decode steps of the placement arms (expert-heavy config,
/// ~1-2 ms/step) and of the decode guard (hotpath config).
const N_DECODE: usize = 192;
const N_DECODE_GUARD: usize = 448;
const REPS: usize = 5;
/// Decode steps of one traced (span-measured) rep.
const N_TRACED: usize = 96;
const TRACED_REPS: usize = 3;
/// Decode-guard baseline: BENCH_slo.json's recorded median. That
/// baseline was recorded on a different container shape (this bench
/// records the core count it observed); the guard exists to catch
/// hot-path regressions from code changes, not cross-box drift, so
/// the tolerance is wide enough to absorb a 1-core container
/// timesharing the control, worker, and device threads.
const SLO_BASELINE_TOK_S: f64 = 2183.4;
const GUARD_TOLERANCE: f64 = 0.6;

/// Placement-arm model: the DS-3 tiny preset scaled so routed-expert
/// compute dominates the decode step (moe_inter 48 → 512, 16 → 32
/// experts, vocab 8192 → 512). With the tiny preset as-is the LM head
/// GEMM rivals total expert work, the device thread is never idle, and
/// no placement policy could buy anything — the interesting regime is
/// the paper's: CPU expert time on the critical path.
fn mk_engine(policy: PlacementPolicy, cache_bytes: usize) -> HybridEngine {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.vocab = 512;
    cfg.moe_inter = 512;
    cfg.n_routed_experts = 32;
    HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            placement: policy,
            expert_cache_bytes: cache_bytes,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine")
}

/// Decode-guard model: exactly the `ablation_hotpath` configuration
/// BENCH_slo.json's baseline was recorded on (tiny preset, vocab 8192,
/// natural router, static placement).
fn mk_guard_engine() -> HybridEngine {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.vocab = 8192;
    HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine")
}

/// Deterministic Zipf(s) routing override (s = 0 is uniform): each
/// row's `top_k` distinct experts are drawn from a Zipf rank
/// distribution seeded by (call counter, layer, row). The engine's
/// single control thread fixes the call order, so two arms started
/// with fresh hooks and the same token stream see the identical
/// routing sequence — which is what makes the bitwise cross-check and
/// the timing comparison apples-to-apples.
fn zipf_hook(
    n_experts: usize,
    top_k: usize,
    s: f64,
) -> impl Fn(usize, usize) -> Option<MoeRouting> + Send + Sync {
    // Inverse-CDF table over expert ranks: weight(e) = 1/(e+1)^s.
    let mut cdf = Vec::with_capacity(n_experts);
    let mut acc = 0.0f64;
    for e in 0..n_experts {
        acc += 1.0 / ((e + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    let calls = AtomicU64::new(0);
    move |layer, rows| {
        let c = calls.fetch_add(1, Ordering::Relaxed);
        let mut assignments = Vec::with_capacity(rows);
        for row in 0..rows {
            let mut x = (c.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ ((layer as u64) << 32)
                ^ ((row as u64) << 16)
                ^ 0x243F_6A88_85A3_08D3;
            let mut picked: Vec<usize> = Vec::with_capacity(top_k);
            while picked.len() < top_k {
                // xorshift64 draw → inverse CDF.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let u = (x >> 11) as f64 / (1u64 << 53) as f64 * total;
                let e = cdf.partition_point(|&v| v < u).min(n_experts - 1);
                if !picked.contains(&e) {
                    picked.push(e);
                }
            }
            let w = 1.0 / top_k as f32;
            assignments.push(picked.into_iter().map(|e| (e, w)).collect());
        }
        Some(MoeRouting::new(assignments))
    }
}

fn install_hook(engine: &HybridEngine, s: f64) {
    let cfg = engine.config().clone();
    engine.set_routing_override(zipf_hook(cfg.n_routed_experts, cfg.top_k, s));
}

/// Prefill + `steps` greedy decode steps, every logits matrix as raw
/// bits (bitwise identity, not float equality).
fn logits_bits(policy: PlacementPolicy, cache_bytes: usize, s: f64, steps: usize) -> Vec<Vec<u32>> {
    let engine = mk_engine(policy, cache_bytes);
    install_hook(&engine, s);
    let mut out = Vec::with_capacity(steps + 1);
    let l = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(l.row(l.rows() - 1));
    out.push(l.as_slice().iter().map(|v| v.to_bits()).collect());
    engine.recycle_logits(l);
    for _ in 0..steps {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        out.push(l.as_slice().iter().map(|v| v.to_bits()).collect());
        engine.recycle_logits(l);
    }
    out
}

/// Single-stream decode throughput, `ablation_hotpath` methodology
/// (prefill, 2 warmups, `steps` timed steps), with the given routing
/// skew imposed; `hook: None` leaves the natural router in place
/// (the plain decode-guard configuration BENCH_slo.json records).
fn decode_tokens_per_s(engine: HybridEngine, hook: Option<f64>, steps: usize) -> f64 {
    if let Some(s) = hook {
        install_hook(&engine, s);
    }
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let start = Instant::now();
    for _ in 0..steps {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let tok_s = steps as f64 / start.elapsed().as_secs_f64();
    if std::env::var_os("KT_PLACEMENT_DEBUG").is_some() {
        if let Some(s) = engine.expert_cache_stats() {
            eprintln!("  [debug] cache {s:?}");
        }
    }
    tok_s
}

/// Expert-phase span totals over one traced decode run, nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
struct ExpertPhase {
    /// CPU worker expert execution (immediate + deferred spans).
    cpu_ns: u64,
    /// vGPU routed-expert execution (dynamic placement only).
    gpu_ns: u64,
    /// Serial merge work in the merge op (scatter-add spans).
    merge_ns: u64,
    /// Device-track non-expert work (attention, shared experts, LM
    /// head) — context for judging whether the device track could
    /// become the bottleneck.
    device_other_ns: u64,
}

impl ExpertPhase {
    /// Critical-path ns assuming the CPU worker and the device thread
    /// run concurrently (they do whenever the host grants each thread
    /// a core): the slower expert track, plus the serial merge.
    fn critical_ns(&self) -> u64 {
        self.cpu_ns.max(self.gpu_ns) + self.merge_ns
    }
}

/// Runs `steps` decode steps with kt-trace enabled and aggregates the
/// expert-phase spans. Durations are real measured host kernel times;
/// only the *aggregation* assumes the two tracks overlap.
fn expert_phase(policy: PlacementPolicy, cache_bytes: usize, s: f64, steps: usize) -> ExpertPhase {
    use kt_trace::SpanKind;
    let engine = mk_engine(policy, cache_bytes);
    install_hook(&engine, s);
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    kt_trace::enable();
    let t0 = kt_trace::now_ns();
    for _ in 0..steps {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let snap = kt_trace::sink().snapshot();
    kt_trace::disable();
    let mut p = ExpertPhase::default();
    for sp in &snap.spans {
        if sp.start_ns < t0 {
            continue; // an earlier arm's spans, or warmup
        }
        match sp.kind {
            SpanKind::CpuExpertImmediate | SpanKind::CpuExpertDeferred => p.cpu_ns += sp.dur_ns,
            SpanKind::GpuExperts => p.gpu_ns += sp.dur_ns,
            SpanKind::ScatterAdd => p.merge_ns += sp.dur_ns,
            SpanKind::Attention | SpanKind::SharedExperts | SpanKind::LmHead => {
                p.device_other_ns += sp.dur_ns
            }
            _ => {}
        }
    }
    p
}

/// Median-by-critical-path of `TRACED_REPS` traced runs.
fn traced_arm(policy: PlacementPolicy, cache_bytes: usize, s: f64) -> ExpertPhase {
    let mut reps: Vec<ExpertPhase> = (0..TRACED_REPS)
        .map(|_| expert_phase(policy, cache_bytes, s, N_TRACED))
        .collect();
    reps.sort_by_key(|p| p.critical_ns());
    reps[reps.len() / 2]
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn fmt_samples(xs: &[f64]) -> String {
    let cells: Vec<String> = xs.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", cells.join(", "))
}

struct Arm {
    label: &'static str,
    samples: Vec<f64>,
    median: f64,
}

fn run_arm(label: &'static str, policy: PlacementPolicy, cache_bytes: usize, hook: Option<f64>) -> Arm {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| decode_tokens_per_s(mk_engine(policy, cache_bytes), hook, N_DECODE))
        .collect();
    let median = median(&mut samples);
    Arm { label, samples, median }
}

fn run_guard_arm() -> Arm {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| decode_tokens_per_s(mk_guard_engine(), None, N_DECODE_GUARD))
        .collect();
    let median = median(&mut samples);
    Arm { label: "static_no_hook", samples, median }
}

fn arm_json(a: &Arm) -> String {
    format!(
        r#"    "{}": {{"samples": {}, "median": {:.1}}}"#,
        a.label,
        fmt_samples(&a.samples),
        a.median
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // Cache budgets in bytes, probed from the live expert weights.
    let expert_bytes = mk_engine(PlacementPolicy::Static, 0)
        .expert_weight_bytes()
        .expect("model has routed experts");
    let bounded = CACHE_EXPERTS * expert_bytes;
    let cold = expert_bytes;

    section(&format!(
        "Dynamic expert placement vs static split: DS-3 tiny, moe_inter=512, \
         32 experts, 1 CPU worker, cache {CACHE_EXPERTS} experts ({bounded} B), Zipf s = {SKEW}"
    ));

    // Correctness before speed: dynamic placement must reproduce the
    // static split's logits bit for bit under both routing regimes,
    // including the one-expert cold cache (maximum churn).
    for (s, cache, what) in [
        (SKEW, bounded, "skewed/bounded"),
        (0.0, bounded, "uniform/bounded"),
        (SKEW, cold, "skewed/cold"),
    ] {
        let want = logits_bits(PlacementPolicy::Static, 0, s, 48);
        let got = logits_bits(PlacementPolicy::Dynamic, cache, s, 48);
        assert_eq!(want, got, "{what}: dynamic placement changed the bits");
    }
    println!("bitwise check: dynamic == static over 48 decode steps (skewed, uniform, cold cache)");

    // Span-measured expert-phase critical paths (the headline metric:
    // see the module docs for why wall-clock cannot move on a 1-core
    // container).
    let tr_static_skew = traced_arm(PlacementPolicy::Static, 0, SKEW);
    let tr_dyn_skew = traced_arm(PlacementPolicy::Dynamic, bounded, SKEW);
    let tr_static_uni = traced_arm(PlacementPolicy::Static, 0, 0.0);
    let tr_dyn_uni = traced_arm(PlacementPolicy::Dynamic, bounded, 0.0);
    let speedup = tr_static_skew.critical_ns() as f64 / tr_dyn_skew.critical_ns() as f64;
    let uniform_ratio = tr_static_uni.critical_ns() as f64 / tr_dyn_uni.critical_ns() as f64;

    let traced = [
        ("static_skewed", &tr_static_skew),
        ("dynamic_skewed", &tr_dyn_skew),
        ("static_uniform", &tr_static_uni),
        ("dynamic_uniform", &tr_dyn_uni),
    ];
    let us = |ns: u64| format!("{:.0}", ns as f64 / (N_TRACED as f64 * 1e3));
    let rows: Vec<Vec<String>> = traced
        .iter()
        .map(|(label, p)| {
            vec![
                (*label).into(),
                us(p.cpu_ns),
                us(p.gpu_ns),
                us(p.merge_ns),
                us(p.device_other_ns),
                us(p.critical_ns()),
            ]
        })
        .collect();
    table(
        &[
            "Arm",
            "CPU experts µs/step",
            "vGPU experts µs/step",
            "merge µs/step",
            "device other µs/step",
            "expert crit µs/step",
        ],
        &rows,
    );

    // Wall-clock arms (reported for transparency; gated only through
    // the decode guard below).
    let static_skew = run_arm("static_skewed", PlacementPolicy::Static, 0, Some(SKEW));
    let dyn_skew = run_arm("dynamic_skewed", PlacementPolicy::Dynamic, bounded, Some(SKEW));
    let static_uni = run_arm("static_uniform", PlacementPolicy::Static, 0, Some(0.0));
    let dyn_uni = run_arm("dynamic_uniform", PlacementPolicy::Dynamic, bounded, Some(0.0));
    let dyn_cold = run_arm("dynamic_skewed_cold_cache", PlacementPolicy::Dynamic, cold, Some(SKEW));
    let guard = run_guard_arm();

    let arms = [&static_skew, &dyn_skew, &static_uni, &dyn_uni, &dyn_cold, &guard];
    let rows: Vec<Vec<String>> = arms
        .iter()
        .map(|a| vec![a.label.into(), format!("{:.1}", a.median), fmt_samples(&a.samples)])
        .collect();
    println!();
    table(&["Arm", "Decode tok/s (median, wall-clock)", "Samples"], &rows);

    println!();
    println!(
        "skewed_speedup {speedup:.2}x (expert critical path: static {} µs/step vs dynamic {} µs/step)",
        us(tr_static_skew.critical_ns()),
        us(tr_dyn_skew.critical_ns()),
    );
    println!("uniform_ratio {uniform_ratio:.3} (critical-path regression beyond 3% fails the gate)");
    println!(
        "decode_guard {:.1} tok/s vs BENCH_slo.json median {SLO_BASELINE_TOK_S} (tolerance {GUARD_TOLERANCE}x, {} core(s) observed)",
        guard.median,
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );

    let mut failures = Vec::new();
    if speedup < 1.2 {
        failures.push(format!(
            "skewed-routing expert-critical-path speedup {speedup:.2}x below the 1.2x gate"
        ));
    }
    if uniform_ratio < 0.97 {
        failures.push(format!(
            "uniform-routing arm critical path regressed {:.1}% (> 3%)",
            (1.0 - uniform_ratio) * 100.0
        ));
    }
    if guard.median < GUARD_TOLERANCE * SLO_BASELINE_TOK_S {
        failures.push(format!(
            "decode guard {:.1} tok/s below {GUARD_TOLERANCE}x of the {SLO_BASELINE_TOK_S} baseline",
            guard.median
        ));
    }

    if smoke {
        if failures.is_empty() {
            println!(
                "SMOKE OK: skewed {speedup:.2}x >= 1.2x, uniform ratio {uniform_ratio:.3}, \
                 guard {:.1} tok/s",
                guard.median
            );
        } else {
            for f in &failures {
                eprintln!("SMOKE FAIL: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    for f in &failures {
        eprintln!("WARNING: {f}");
    }

    let json = format!(
        r#"{{
  "bench": "ablation_placement",
  "workload": {{
    "model": "DeepSeekV3 tiny preset scaled expert-heavy: moe_inter=512, n_routed_experts=32, vocab=512 (guard arm: unscaled tiny preset, vocab=8192)",
    "engine": "n_cpu_workers=1, mode=AsyncGraph, n_deferred=2, seed=17",
    "routing": "deterministic Zipf routing override shared by both arms of each pair; s={SKEW} skewed, s=0 uniform",
    "expert_cache": "bounded = {CACHE_EXPERTS} experts ({bounded} B), cold = 1 expert ({cold} B)"
  }},
  "method": "headline: expert-phase critical path from kt-trace spans (max(cpu expert ns, vgpu expert ns) + merge ns; measured host kernel durations over {N_TRACED} decode steps, median of {TRACED_REPS} reps); wall-clock: single-stream decode, ablation_hotpath methodology (2 warmups, {N_DECODE} timed steps; guard arm {N_DECODE_GUARD}), {REPS} reps, median; dynamic-vs-static logits checked bitwise over 48 decode steps (skewed, uniform, and cold-cache) before timing",
  "cores_observed": {cores},
  "expert_critical_path_us_per_step": {{
{traced_json}
  }},
  "skewed_speedup": {speedup:.3},
  "uniform_ratio": {uniform_ratio:.3},
  "wall_clock_arms": {{
{arms_json}
  }},
  "bitwise_identical": true,
  "decode_guard": {{
    "static_no_hook_median": {guard_median:.1},
    "bench_slo_baseline_median": {SLO_BASELINE_TOK_S},
    "tolerance": {GUARD_TOLERANCE}
  }}
}}
"#,
        cores = std::thread::available_parallelism().map_or(0, |n| n.get()),
        traced_json = traced
            .iter()
            .map(|(label, p)| {
                format!(
                    r#"    "{label}": {{"cpu": {}, "vgpu": {}, "merge": {}, "device_other": {}, "critical": {}}}"#,
                    us(p.cpu_ns),
                    us(p.gpu_ns),
                    us(p.merge_ns),
                    us(p.device_other_ns),
                    us(p.critical_ns()),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
        arms_json = arms.iter().map(|a| arm_json(a)).collect::<Vec<_>>().join(",\n"),
        guard_median = guard.median,
    );
    std::fs::write("BENCH_placement.json", &json).expect("write BENCH_placement.json");
    println!();
    println!("wrote BENCH_placement.json");
}
