//! §1 extension: Fiddler-style expert-popularity placement. With
//! Zipf-skewed routing (models without balanced shared-expert designs),
//! pinning hot experts to the GPU trades CPU traffic for GPU traffic —
//! up to an optimum, past which the GPU becomes the bottleneck.

use kt_bench::{section, table};
use kt_hwsim::experiments::placement_study;
use kt_hwsim::workload::Precision;
use kt_hwsim::Calibration;
use kt_model::ModelPreset;

fn main() {
    let cal = Calibration::default();
    let pinned = [0usize, 2, 4, 8, 16, 32, 64];
    for zipf_s in [0.0f64, 0.7, 1.0] {
        section(&format!(
            "Popularity placement, DS-3 Int4 decode on A100, Zipf skew s = {zipf_s}"
        ));
        let rows = placement_study(&cal, ModelPreset::DeepSeekV3, zipf_s, Precision::Int4, &pinned)
            .expect("simulation");
        let printable: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.n_pinned.to_string(),
                    format!("{:.0}%", r.coverage * 100.0),
                    format!("{:.2}", r.tokens_per_s),
                    format!(
                        "{:.0} GB{}",
                        r.vram_needed_gb,
                        if r.vram_feasible { "" } else { "  (exceeds VRAM!)" }
                    ),
                ]
            })
            .collect();
        table(
            &["Pinned experts", "Activation coverage", "Decode tok/s", "VRAM needed"],
            &printable,
        );
    }
    println!();
    println!("Balanced routers (s=0, DeepSeek's design goal) gain little from any");
    println!("FEASIBLE pin count; skewed routers gain meaningfully within the VRAM");
    println!("budget — quantifying §1's 'popular experts can still be identified");
    println!("via offline profiling' remark, and why shared experts (always-hot by");
    println!("construction) are the better design.");
}
