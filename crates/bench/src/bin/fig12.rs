//! Regenerates Figure 12: decode throughput for every deployment and
//! system, including Expert Deferral.

use kt_bench::{section, table};
use kt_hwsim::experiments::fig12_decode;
use kt_hwsim::Calibration;

fn main() {
    section("Figure 12: decode throughput (tokens/s)");
    let all = fig12_decode(&Calibration::default()).expect("simulation");
    let mut rows = Vec::new();
    for (dep, series) in &all {
        let mut row = vec![dep.label()];
        for s in series {
            row.push(format!("{:.2}", s.points[0].y));
        }
        rows.push(row);
    }
    // The deferral variant's expert count varies per deployment
    // (§6.3), so label the column generically.
    let headers = ["Deployment", "Fiddler", "Llama.cpp", "KTransformers", "KT+Deferral"];
    table(&headers, &rows);
    println!();
    println!("Paper reference (BF16): KT 2.42-4.09x over Fiddler, 1.25-1.76x over");
    println!("Llama.cpp; quantized: 1.77-1.93x over Llama.cpp; deferral adds up to");
    println!("45% for overall 1.66-2.56x over Llama.cpp.");
}
