//! §3.3 / §6.4 ablation: NUMA-aware tensor parallelism vs oblivious
//! placement, plus the real TensorParallel/ExpertParallel code paths.

use kt_bench::{section, table};
use kt_hwsim::experiments::ablation_numa;
use kt_hwsim::Calibration;
use kt_kernels::moe::MoeRouting;
use kt_kernels::numa::{ExpertParallelMoe, NumaTopology, TensorParallelMoe};
use kt_kernels::dispatch::Backend;
use kt_kernels::schedule::SchedulePolicy;
use kt_tensor::rng::seeded;
use kt_tensor::{Matrix, WeightDtype};

fn main() {
    section("NUMA ablation (simulated, DS-3 decode)");
    let rows = ablation_numa(&Calibration::default()).expect("simulation");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, t)| vec![n.clone(), format!("{t:.2} tok/s")])
        .collect();
    table(&["Placement", "Decode throughput"], &printable);
    let ratio = rows[1].1 / rows[0].1;
    println!("Speedup: {ratio:.2}x (paper: up to 1.63x)");

    section("NUMA placement balance (real kernels, skewed routing)");
    // Expert Parallelism leaves sockets idle under skewed routing;
    // Tensor Parallelism balances by construction.
    let mut rng = seeded(7);
    let hidden = 64;
    let inter = 64;
    let experts: Vec<_> = (0..8)
        .map(|_| {
            (
                Matrix::random_kaiming(inter, hidden, &mut rng).unwrap(),
                Matrix::random_kaiming(inter, hidden, &mut rng).unwrap(),
                Matrix::random_kaiming(hidden, inter, &mut rng).unwrap(),
            )
        })
        .collect();
    let topo = NumaTopology::new(2, 1).unwrap();
    let ep = ExpertParallelMoe::new(&experts, WeightDtype::F32, Backend::HybridAmxAvx512, topo)
        .unwrap();
    let tp = TensorParallelMoe::new(&experts, WeightDtype::F32, Backend::HybridAmxAvx512, topo)
        .unwrap();
    // Skewed: all tokens hit experts {0, 2, 4} (socket 0 under
    // round-robin placement).
    let routing = MoeRouting::new(vec![vec![(0, 0.5), (2, 0.3), (4, 0.2)]; 16]);
    let loads = ep.socket_loads(&routing);
    println!("Expert-parallel socket loads under skew: {loads:?} (imbalanced)");
    println!("Tensor-parallel splits every expert across sockets: balanced by design.");
    let x = Matrix::random_uniform(16, hidden, 1.0, &mut rng).unwrap();
    let a = ep.forward(&x, &routing, SchedulePolicy::Dynamic).unwrap();
    let b = tp.forward(&x, &routing, SchedulePolicy::Dynamic).unwrap();
    println!(
        "Numerical agreement EP vs TP: relative error {:.2e}",
        a.relative_error(&b)
    );
    println!();
    println!("Paper reference: NUMA-aware TP up to 1.63x decode speedup; Fiddler's");
    println!("2-socket run only improves a single socket by 16% (6.9ms -> 5.8ms).");
}
