//! SLO-class scheduling ablation: goodput-under-SLO of an open-loop
//! mixed-class workload with priority admission + load shedding
//! (`ServerConfig::slo`) versus the plain FIFO scheduler.
//!
//! Workload: seeded open-loop arrivals (`kt_bench::workload`) of a
//! 40/30/30 interactive/standard/batch mix, offered at 0.5x, 1x, and
//! 2x of the measured saturation rate. Goodput counts a request only
//! if it completed AND met its class targets *as the client sees
//! them*: submission-to-first-token (queue wait + TTFT) within the
//! class TTFT target and every inter-token gap within the ITL target.
//! Raw throughput treats a token that arrives after its deadline as
//! progress; goodput does not.
//!
//! Arms:
//! * **fifo** — `slo: None`: strict arrival order, no shedding.
//! * **slo** — priority admission, slack-based shedding, and
//!   priority-aware step composition under a policy whose targets are
//!   derived from the calibrated service time (so the ablation is
//!   host-speed-independent).
//!
//! Correctness rider: every completed request's tokens are compared
//! against an unloaded sequential reference run — scheduling policy
//! must never change the bits (`Backend::TiledOnly` pins one kernel
//! class so outputs are batch-composition-invariant).
//!
//! Modes:
//! * default — all rates + a bursty arrival run, decode-throughput
//!   guard, writes `BENCH_slo.json` (run from the repo root).
//! * `--smoke` — CI gate: the 2x-overload pair only; asserts the SLO
//!   arm's interactive goodput beats FIFO's, exits nonzero otherwise.

use kt_bench::workload::{assign_classes, offsets_ns, ArrivalPattern};
use kt_bench::{section, table};
use kt_core::{EngineConfig, HybridEngine, RequestMetrics, SchedMode};
use kt_model::ModelPreset;
use kt_serve::{
    Request, RequestHandle, RequestOutcome, Server, ServerConfig, SloClass, SloPolicy, SloTarget,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_BATCH: usize = 6;
/// Interactive / standard / batch traffic mix.
const WEIGHTS: [f64; 3] = [0.4, 0.3, 0.3];
const CLASS_SEED: u64 = 9;
const ARRIVAL_SEED: u64 = 77;
const RESOLVE_TIMEOUT: Duration = Duration::from_secs(120);

fn engine() -> Arc<HybridEngine> {
    Arc::new(
        HybridEngine::random(
            &ModelPreset::DeepSeekV3.tiny_config(),
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                // One kernel class keeps tokens bit-identical no matter
                // how the batch composition fluctuates.
                backend: kt_kernels::dispatch::Backend::TiledOnly,
                seed: 31,
                ..Default::default()
            },
        )
        .expect("engine"),
    )
}

fn server(slo: Option<SloPolicy>) -> Server {
    Server::start(
        engine(),
        ServerConfig {
            max_batch: MAX_BATCH,
            prefill_chunk: 32,
            step_token_budget: 64,
            // Prefix reuse off: this ablation isolates scheduling.
            prefix_cache_bytes: 0,
            slo,
            ..Default::default()
        },
    )
    .expect("valid config")
}

/// The i-th request, fully determined by its global index: prompt
/// contents are index-keyed so an unloaded sequential run yields the
/// bitwise reference output for every request of every arm.
fn make_request(i: usize, class: SloClass) -> Request {
    let (prompt_len, max_new) = match class {
        SloClass::Interactive => (12, 6),
        SloClass::Standard => (24, 8),
        SloClass::Batch => (48, 12),
    };
    let prompt: Vec<u32> = (0..prompt_len)
        .map(|j| ((i * 13 + j * 7 + 5) % 251) as u32)
        .collect();
    Request::greedy(&prompt, max_new).with_class(class)
}

fn classes_for(n: usize) -> Vec<SloClass> {
    assign_classes(CLASS_SEED, n, &WEIGHTS)
        .into_iter()
        .map(|c| SloClass::ALL[c])
        .collect()
}

/// Client-perceived SLO attainment: first token within the TTFT target
/// measured from *submission* (queue wait included), every gap within
/// the ITL target.
fn met_slo(m: &RequestMetrics, target: SloTarget) -> bool {
    let Some(ttft) = m.ttft_ns else { return false };
    m.queue_wait_ns.saturating_add(ttft) <= target.ttft_ns
        && m.token_latencies_ns.iter().all(|&g| g <= target.itl_ns)
}

struct Calib {
    /// Wall time of one full-batch service wave, nanoseconds.
    service_ns: u64,
    /// Measured saturation throughput, requests per second.
    rate_sat: f64,
}

/// Measures saturation throughput with a closed burst of 3 batches'
/// worth of requests on an unloaded FIFO server.
fn calibrate(classes: &[SloClass]) -> Calib {
    let server = server(None);
    // Warm the engine (first step pays one-time graph capture).
    let _ = server.submit(make_request(0, classes[0])).wait();
    let k = 3 * MAX_BATCH;
    let start = Instant::now();
    let handles: Vec<RequestHandle> = (0..k)
        .map(|i| server.submit(make_request(i, classes[i])))
        .collect();
    for h in handles {
        let r = h.wait_timeout(RESOLVE_TIMEOUT).expect("calibration resolves");
        assert!(r.is_completed(), "{:?}", r.outcome);
    }
    let wall = start.elapsed();
    server.shutdown();
    Calib {
        service_ns: (wall.as_nanos() as u64).saturating_mul(MAX_BATCH as u64) / k as u64,
        rate_sat: k as f64 / wall.as_secs_f64(),
    }
}

/// SLO targets in units of the calibrated service wave, so the
/// ablation's pass/fail is host-speed-independent.
fn policy_for(calib: &Calib) -> SloPolicy {
    let s = calib.service_ns.max(1);
    SloPolicy {
        targets: [
            SloTarget { ttft_ns: 6 * s, itl_ns: 4 * s },
            SloTarget { ttft_ns: 12 * s, itl_ns: 4 * s },
            SloTarget { ttft_ns: 20 * s, itl_ns: 4 * s },
        ],
        shed: true,
    }
}

/// Unloaded sequential reference: the bitwise-correct tokens of every
/// request index, produced with zero scheduling pressure.
fn reference_tokens(n: usize, classes: &[SloClass]) -> Vec<Vec<u32>> {
    let server = server(None);
    let out = (0..n)
        .map(|i| {
            let r = server.submit(make_request(i, classes[i])).wait();
            assert!(r.is_completed(), "reference request {i}: {:?}", r.outcome);
            r.tokens
        })
        .collect();
    server.shutdown();
    out
}

#[derive(Debug, Clone, Copy, Default)]
struct ClassTally {
    submitted: u64,
    completed: u64,
    shed: u64,
    met: u64,
}

impl ClassTally {
    fn goodput(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.met as f64 / self.submitted as f64
    }
}

/// One open-loop run: submit `n` requests on the arrival schedule,
/// wait for every one, tally outcomes per class, and check every
/// completion bitwise against the reference.
fn run_arm(
    slo: Option<SloPolicy>,
    pattern: &ArrivalPattern,
    n: usize,
    classes: &[SloClass],
    targets: &[SloTarget; 3],
    reference: &[Vec<u32>],
) -> [ClassTally; 3] {
    let server = server(slo);
    let offs = offsets_ns(pattern, ARRIVAL_SEED, n);
    let start = Instant::now();
    let handles: Vec<RequestHandle> = offs
        .iter()
        .enumerate()
        .map(|(i, &off)| {
            let due = Duration::from_nanos(off);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
            server.submit(make_request(i, classes[i]))
        })
        .collect();
    let mut tally = [ClassTally::default(); 3];
    for (i, h) in handles.into_iter().enumerate() {
        let r = h
            .wait_timeout(RESOLVE_TIMEOUT)
            .unwrap_or_else(|| panic!("request {i} did not resolve"));
        let t = &mut tally[classes[i].index()];
        t.submitted += 1;
        match r.outcome {
            RequestOutcome::Completed => {
                t.completed += 1;
                assert_eq!(
                    r.tokens, reference[i],
                    "request {i}: scheduling changed the bits"
                );
                if met_slo(&r.metrics, targets[classes[i].index()]) {
                    t.met += 1;
                }
            }
            RequestOutcome::Shed => t.shed += 1,
            other => panic!("request {i}: unexpected outcome {other:?}"),
        }
    }
    server.shutdown();
    tally
}

fn tally_rows(label: &str, tally: &[ClassTally; 3]) -> Vec<Vec<String>> {
    SloClass::ALL
        .iter()
        .map(|c| {
            let t = tally[c.index()];
            vec![
                label.into(),
                c.as_str().into(),
                t.submitted.to_string(),
                t.completed.to_string(),
                t.shed.to_string(),
                t.met.to_string(),
                format!("{:.2}", t.goodput()),
            ]
        })
        .collect()
}

fn tally_json(tally: &[ClassTally; 3]) -> String {
    let cells: Vec<String> = SloClass::ALL
        .iter()
        .map(|c| {
            let t = tally[c.index()];
            format!(
                r#""{}": {{"submitted": {}, "completed": {}, "shed": {}, "slo_met": {}, "goodput": {:.3}}}"#,
                c.as_str(),
                t.submitted,
                t.completed,
                t.shed,
                t.met,
                t.goodput()
            )
        })
        .collect();
    format!("{{{}}}", cells.join(", "))
}

/// Single-stream decode throughput, `ablation_hotpath` methodology —
/// the guard that the SLO machinery costs the pure-decode hot path
/// nothing (with `slo: None` the scheduler is the pre-SLO FIFO path).
fn decode_tokens_per_s() -> f64 {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.vocab = 8192;
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine");
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let n_decode = 448usize;
    let start = Instant::now();
    for _ in 0..n_decode {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    n_decode as f64 / start.elapsed().as_secs_f64()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn fmt_samples(xs: &[f64]) -> String {
    let cells: Vec<String> = xs.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The 2x run must build a backlog several times the interactive
    // TTFT target (6 service waves) for overload to be visible: the
    // terminal queue wait is ~n/(2 x rate_sat) seconds, so n well above
    // 12 x max_batch keeps the late arrivals far past their deadline
    // under FIFO.
    let n = if smoke { 240 } else { 320 };

    let classes = classes_for(n);
    let calib = calibrate(&classes);
    let policy = policy_for(&calib);
    let targets = policy.targets;
    section(&format!(
        "SLO scheduling ablation: {n} requests, 40/30/30 mix, \
         calibrated saturation {:.0} req/s, service wave {:.1} ms",
        calib.rate_sat,
        calib.service_ns as f64 / 1e6
    ));
    println!(
        "targets (x service wave): interactive ttft 6x / standard 12x / batch 20x, itl 4x"
    );

    let reference = reference_tokens(n, &classes);

    let rates: &[f64] = if smoke { &[2.0] } else { &[0.5, 1.0, 2.0] };
    let mut rows = Vec::new();
    let mut json_runs: Vec<String> = Vec::new();
    let mut gate: Option<(f64, f64)> = None; // (fifo, slo) interactive goodput at 2x
    for &mult in rates {
        let pattern = ArrivalPattern::Poisson {
            rate_per_s: mult * calib.rate_sat,
        };
        let fifo = run_arm(None, &pattern, n, &classes, &targets, &reference);
        let slo = run_arm(Some(policy.clone()), &pattern, n, &classes, &targets, &reference);
        rows.extend(tally_rows(&format!("fifo @{mult}x"), &fifo));
        rows.extend(tally_rows(&format!("slo  @{mult}x"), &slo));
        json_runs.push(format!(
            r#"    {{"arrivals": "poisson", "rate_multiplier": {mult}, "fifo": {}, "slo": {}}}"#,
            tally_json(&fifo),
            tally_json(&slo)
        ));
        if mult == 2.0 {
            gate = Some((
                fifo[SloClass::Interactive.index()].goodput(),
                slo[SloClass::Interactive.index()].goodput(),
            ));
        }
    }
    if !smoke {
        // Bursty arrivals at the saturation rate: correlated queue
        // spikes the Poisson stream rarely produces.
        let pattern = ArrivalPattern::Bursty {
            rate_per_s: calib.rate_sat,
            burst: 8,
            spread_ns: 2_000_000,
        };
        let fifo = run_arm(None, &pattern, n, &classes, &targets, &reference);
        let slo = run_arm(Some(policy.clone()), &pattern, n, &classes, &targets, &reference);
        rows.extend(tally_rows("fifo bursty@1x", &fifo));
        rows.extend(tally_rows("slo  bursty@1x", &slo));
        json_runs.push(format!(
            r#"    {{"arrivals": "bursty(burst=8)", "rate_multiplier": 1.0, "fifo": {}, "slo": {}}}"#,
            tally_json(&fifo),
            tally_json(&slo)
        ));
    }

    table(
        &["Arm", "Class", "Submitted", "Completed", "Shed", "SLO met", "Goodput"],
        &rows,
    );

    let (fifo_int, slo_int) = gate.expect("2x run present");
    println!();
    println!(
        "interactive_goodput_2x fifo={fifo_int:.2} slo={slo_int:.2} ({}x)",
        if fifo_int > 0.0 {
            format!("{:.2}", slo_int / fifo_int)
        } else {
            "inf".into()
        }
    );
    println!("Every completed request matched the unloaded reference bitwise.");

    if smoke {
        let pass = slo_int > fifo_int && (fifo_int == 0.0 || slo_int >= 1.5 * fifo_int);
        if pass {
            println!("SMOKE OK: interactive goodput at 2x overload {slo_int:.2} beats FIFO {fifo_int:.2}");
        } else {
            eprintln!(
                "SMOKE FAIL: interactive goodput at 2x overload {slo_int:.2} does not beat \
                 FIFO {fifo_int:.2} by 1.5x — SLO scheduling is not paying for itself"
            );
            std::process::exit(1);
        }
        return;
    }

    section("Single-stream decode throughput (hotpath methodology)");
    let mut decode_samples: Vec<f64> = (0..5).map(|_| decode_tokens_per_s()).collect();
    let decode_median = median(&mut decode_samples);
    println!("decode_tokens_per_s_median {decode_median:.1}");

    let json = format!(
        r#"{{
  "bench": "ablation_slo",
  "workload": {{
    "model": "DeepSeekV3 tiny preset",
    "engine": "n_cpu_workers=2, mode=AsyncGraph, n_deferred=2, backend=TiledOnly, seed=31",
    "mix": "40% interactive (12 prompt / 6 new), 30% standard (24 / 8), 30% batch (48 / 12)",
    "arrivals": "open-loop seeded Poisson at 0.5x/1x/2x calibrated saturation + bursty(burst=8) at 1x",
    "server": "max_batch={MAX_BATCH}, prefill_chunk=32, step_token_budget=64, prefix cache off"
  }},
  "method": "goodput = completed AND client-perceived TTFT (queue wait + TTFT) within class target AND every inter-token gap within ITL target; targets scale with the calibrated service wave (interactive 6x, standard 12x, batch 20x; itl 4x); every completion checked bitwise against an unloaded sequential reference",
  "calibration": {{
    "saturation_req_per_s": {rate_sat:.1},
    "service_wave_ms": {service_ms:.1}
  }},
  "runs": [
{runs}
  ],
  "interactive_goodput_2x": {{
    "fifo": {fifo_int:.3},
    "slo": {slo_int:.3},
    "ratio": {ratio}
  }},
  "decode_guard": {{
    "method": "single-stream decode, ablation_hotpath methodology (vocab=8192, 448 timed steps), 5 reps",
    "decode_tokens_per_s_samples": {decode_samples},
    "decode_tokens_per_s_median": {decode_median:.1},
    "pr5_baseline_median": 1837.6
  }}
}}
"#,
        rate_sat = calib.rate_sat,
        service_ms = calib.service_ns as f64 / 1e6,
        runs = json_runs.join(",\n"),
        ratio = if fifo_int > 0.0 {
            format!("{:.2}", slo_int / fifo_int)
        } else {
            "null".into()
        },
        decode_samples = fmt_samples(&decode_samples),
    );
    std::fs::write("BENCH_slo.json", &json).expect("write BENCH_slo.json");
    println!();
    println!("wrote BENCH_slo.json");
}
