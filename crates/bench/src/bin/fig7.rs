//! Regenerates Figure 7: MoE-layer latency of the KT AMX vs AVX-512
//! kernels at low tokens-per-expert, per model.

use kt_bench::{section, series_table};
use kt_hwsim::experiments::fig7_kernel_latency;
use kt_hwsim::Calibration;

fn main() {
    for (model, series) in fig7_kernel_latency(&Calibration::default()) {
        section(&format!("Figure 7: MoE layer latency (ms), {model}"));
        series_table("tokens/expert", &series, |v| format!("{v:.2}"));
    }
    println!();
    println!("Paper reference: AVX-512 wins at <= 4 tokens/expert (crossover),");
    println!("AMX wins above; hybrid dispatch uses AVX-512 at ARI <= 4.");
}
