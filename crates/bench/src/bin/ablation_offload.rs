//! §2.1 background reproduction: weight offloading (ship expert weights
//! over PCIe, compute on GPU) vs computation offloading (compute on the
//! CPU where the weights live). The paper's premise: "a dual-socket
//! Intel Xeon system with DDR5 memory can offer 440 GB/s of memory
//! bandwidth" vs PCIe 4.0's 32 GB/s.

use kt_bench::{section, table};
use kt_hwsim::policy::{simulate, Phase, SystemPolicy};
use kt_hwsim::workload::Precision;
use kt_hwsim::{Calibration, Platform};
use kt_model::ModelPreset;

fn main() {
    let cal = Calibration::default();
    let platform = Platform::a100_dual_xeon();
    section("Offloading strategy, decode (BF16, A100)");
    let mut rows = Vec::new();
    for preset in ModelPreset::all() {
        let cfg = preset.full_config();
        let run = |policy: &SystemPolicy| {
            simulate(
                policy,
                &platform,
                &cfg,
                Precision::Bf16,
                Precision::Bf16,
                Phase::Decode {
                    prompt: 32,
                    steps: 8,
                },
                &cal,
            )
            .expect("simulation")
            .tokens_per_s
        };
        let weight = run(&SystemPolicy::weight_offloading());
        let compute = run(&SystemPolicy::ktransformers());
        rows.push(vec![
            preset.short_name().to_string(),
            format!("{weight:.2}"),
            format!("{compute:.2}"),
            format!("{:.1}x", compute / weight),
        ]);
    }
    table(
        &["Model", "Weight offload tok/s", "Compute offload tok/s", "Advantage"],
        &rows,
    );
    println!();
    println!("Paper reference (§2.1): weight offloading 'quickly hits a bottleneck");
    println!("due to PCIe bandwidth limits (32 GB/s)'; computation offloading uses");
    println!("the CPU's 440 GB/s DRAM bandwidth instead.");
}
