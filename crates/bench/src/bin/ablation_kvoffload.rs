//! §5 extension: KV-cache offloading. Decode throughput vs context
//! length when only a window of recent positions stays in VRAM, for
//! MLA (DS-3, compressed latents) and GQA (QW-2) caches.

use kt_bench::{section, table};
use kt_hwsim::policy::SystemPolicy;
use kt_hwsim::workload::Precision;
use kt_hwsim::{kv_offload_decode_sweep, Calibration, Platform};
use kt_model::ModelPreset;

fn main() {
    let cal = Calibration::default();
    let platform = Platform::rtx4080_dual_xeon(); // 16 GB: windows matter
    let policy = SystemPolicy::ktransformers();
    let contexts = [1024usize, 4096, 8192, 16384];
    for preset in [ModelPreset::DeepSeekV3, ModelPreset::Qwen2Moe] {
        let cfg = preset.full_config();
        section(&format!(
            "KV offload, {} (window 4096, RTX 4080)",
            preset.short_name()
        ));
        let points = kv_offload_decode_sweep(
            &policy,
            &platform,
            &cfg,
            Precision::Int4,
            4096,
            &contexts,
            &cal,
        )
        .expect("simulation");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.context.to_string(),
                    format!("{:.1}", p.full_vram_tok_s),
                    format!("{:.1}", p.offloaded_tok_s),
                    format!("{:.2} GB", p.full_cache_bytes / 1e9),
                ]
            })
            .collect();
        table(
            &["Context", "Full-VRAM tok/s", "Offloaded tok/s", "Full cache size"],
            &rows,
        );
    }
    println!();
    println!("MLA's compressed latents halve the per-position cache vs QW-2's GQA");
    println!("(512 vs 1024 values per layer; plain MHA would be 7168), keeping the");
    println!("offload penalty mild even at 16k context.");
}
