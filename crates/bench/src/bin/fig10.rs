//! Regenerates Figure 10: CPU/GPU utilization and decode time under
//! 0/2/3/4 deferred experts (DS-3, BF16, A100).

use kt_bench::{render_timeline, section, table};
use kt_hwsim::experiments::{run_deployment, Deployment};
use kt_hwsim::policy::{Phase, SystemPolicy};
use kt_hwsim::workload::Precision;
use kt_hwsim::experiments::fig10_deferral_study;
use kt_hwsim::Calibration;
use kt_model::ModelPreset;

fn main() {
    section("Figure 10: Expert Deferral configurations (DS-3, BF16, A100)");
    let rows = fig10_deferral_study(&Calibration::default()).expect("simulation");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n_deferred.to_string(),
                format!("{:.0}%", r.cpu_util * 100.0),
                format!("{:.0}%", r.gpu_util * 100.0),
                format!("{:.2}", r.tokens_per_s),
                format!("{:.2}x", 1.0 / r.relative_time),
            ]
        })
        .collect();
    table(
        &["Deferred", "CPU util", "GPU util", "Decode tok/s", "Speedup vs 0"],
        &printable,
    );
    // Execution timelines of a mid-decode window, like Figure 10's
    // lanes: CPU saturates as experts are deferred.
    for n_def in [0usize, 3] {
        section(&format!("Timeline, {n_def} deferred experts (one decode step)"));
        let dep = Deployment {
            model: ModelPreset::DeepSeekV3,
            a100: true,
            precision: Precision::Bf16,
        };
        let policy = if n_def == 0 {
            SystemPolicy::ktransformers()
        } else {
            SystemPolicy::ktransformers_deferred(n_def)
        };
        let rep = run_deployment(
            &dep,
            &policy,
            Phase::Decode {
                prompt: 32,
                steps: 4,
            },
            &Calibration::default(),
        )
        .expect("simulation");
        let step = rep.result.makespan / 4.0;
        print!(
            "{}",
            render_timeline(&rep.result, &["CPU", "GPU", "PCIe"], step * 2.0, step * 2.2, 100)
        );
    }

    println!();
    println!("Paper reference: 0 deferred = 74%/28% CPU/GPU util; 3 deferred");
    println!("saturates the CPU (100%/37%), -26% layer time, +33% decode tput;");
    println!("4 deferred adds nothing (CPU already saturated).");
}
