//! Regenerates Figure 14: cumulative optimization breakdown (v/m/d/n/c)
//! normalized to the Fiddler baseline, prefill (8192) and decode.

use kt_bench::{section, table};
use kt_hwsim::experiments::fig14_breakdown;
use kt_hwsim::Calibration;

fn main() {
    let rows = fig14_breakdown(&Calibration::default()).expect("simulation");
    for (model, stages) in &rows {
        section(&format!("Figure 14: optimization breakdown, {model} (BF16, A100)"));
        let printable: Vec<Vec<String>> = stages
            .iter()
            .map(|(name, pre, dec)| {
                vec![name.clone(), format!("{pre:.2}x"), format!("{dec:.2}x")]
            })
            .collect();
        table(&["Stage", "Prefill speedup", "Decode speedup"], &printable);
    }
    println!();
    println!("Paper reference: AVX-512 kernel hurts prefill but helps decode");
    println!("(up to 2.22x); AMX kernel up to 3.14x prefill; dynamic scheduling up");
    println!("to 1.83x (prefill); NUMA TP up to 1.63x (decode); CUDA Graph up to");
    println!("1.23x (decode).");
}
