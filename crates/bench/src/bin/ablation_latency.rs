//! Request-latency view, two levels:
//!
//! 1. Hardware-simulated: time-to-first-token (prefill) and end-to-end
//!    latency for a representative full-scale request, per system —
//!    the quantities a local-deployment user actually feels.
//! 2. Measured: p50/p99 TTFT and inter-token-gap percentiles from the
//!    server's aggregated [`kt_trace::LogHistogram`]s under a
//!    concurrent workload, printed as a table and as one
//!    machine-readable JSON line (`latency_percentiles_json ...`).

use kt_bench::{section, table};
use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_hwsim::policy::{simulate, Phase, SystemPolicy};
use kt_hwsim::workload::Precision;
use kt_hwsim::{Calibration, Platform};
use kt_model::ModelPreset;
use kt_serve::{Request, Server, ServerConfig};
use std::sync::Arc;

fn simulated_full_scale() {
    let cal = Calibration::default();
    let platform = Platform::a100_dual_xeon();
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let prompt = 2048usize;
    let n_new = 256usize;
    section(&format!(
        "Request latency: DS-3 BF16 on A100, prompt {prompt}, {n_new} new tokens"
    ));
    let mut rows = Vec::new();
    for policy in [
        SystemPolicy::fiddler(),
        SystemPolicy::llamacpp(),
        SystemPolicy::ktransformers(),
        SystemPolicy::ktransformers_deferred(3),
    ] {
        let prefill = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            Phase::Prefill { prompt },
            &cal,
        )
        .expect("prefill sim");
        let decode = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            Phase::Decode {
                prompt,
                steps: 16,
            },
            &cal,
        )
        .expect("decode sim");
        let ttft = prompt as f64 / prefill.tokens_per_s;
        let decode_time = n_new as f64 / decode.tokens_per_s;
        rows.push(vec![
            policy.name.clone(),
            format!("{ttft:.1} s"),
            format!("{:.0} ms", 1000.0 / decode.tokens_per_s),
            format!("{:.1} s", ttft + decode_time),
        ]);
    }
    table(
        &["System", "Time to first token", "Per-token latency", "End-to-end"],
        &rows,
    );
    println!();
    println!("KTransformers' prefill advantage dominates TTFT; deferral only");
    println!("improves the decode tail (it is disabled during prefill).");
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn measured_serving_percentiles() {
    const N_REQUESTS: usize = 12;
    const MAX_NEW: usize = 24;
    section(&format!(
        "Measured serving latency percentiles: kt-serve, tiny DS-3, \
         {N_REQUESTS} concurrent requests x {MAX_NEW} tokens"
    ));
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 41,
                ..Default::default()
            },
        )
        .expect("engine"),
    );
    let server = Server::start(
        engine,
        ServerConfig {
            max_batch: 4,
            prefill_chunk: 8,
            step_token_budget: 16,
            // Cold-path latency bench: repeated prompts must not get
            // warm-seeded from the prefix cache mid-measurement.
            prefix_cache_bytes: 0,
            ..Default::default()
        },
    )
    .expect("valid config");

    let handles: Vec<_> = (0..N_REQUESTS)
        .map(|i| {
            let prompt: Vec<u32> = (0..(3 + i % 5)).map(|t| ((i + t) % 251) as u32).collect();
            server.submit(Request::greedy(&prompt, MAX_NEW))
        })
        .collect();
    for h in &handles {
        let r = h.wait();
        assert!(r.is_completed(), "{:?}", r.outcome);
    }
    // The server aggregates queue-wait / TTFT / inter-token gaps into
    // log-bucketed histograms as requests resolve — read those instead
    // of re-collecting raw samples per request.
    let (queue, ttft, itl) = server.latency_histograms();
    server.shutdown();
    assert_eq!(ttft.count() as usize, N_REQUESTS);

    let pcts = |h: &kt_trace::LogHistogram| {
        [50.0, 99.0].map(|p| ms(h.percentile(p).unwrap_or(0)))
    };
    let [q50, q99] = pcts(&queue);
    let [t50, t99] = pcts(&ttft);
    let [g50, g99] = pcts(&itl);
    table(
        &["Metric", "p50 (ms)", "p99 (ms)", "samples"],
        &[
            vec![
                "queue wait".into(),
                format!("{q50:.2}"),
                format!("{q99:.2}"),
                queue.count().to_string(),
            ],
            vec![
                "TTFT".into(),
                format!("{t50:.2}"),
                format!("{t99:.2}"),
                ttft.count().to_string(),
            ],
            vec![
                "inter-token gap".into(),
                format!("{g50:.2}"),
                format!("{g99:.2}"),
                itl.count().to_string(),
            ],
        ],
    );
    println!();
    println!(
        "latency_percentiles_json {{\"queue_wait_ms\":{{\"p50\":{q50:.3},\"p99\":{q99:.3}}},\
         \"ttft_ms\":{{\"p50\":{t50:.3},\"p99\":{t99:.3}}},\
         \"itl_ms\":{{\"p50\":{g50:.3},\"p99\":{g99:.3}}},\
         \"n_requests\":{},\"n_gap_samples\":{}}}",
        N_REQUESTS,
        itl.count()
    );
}

fn main() {
    simulated_full_scale();
    measured_serving_percentiles();
}
