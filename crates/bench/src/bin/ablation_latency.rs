//! Request-latency view: time-to-first-token (prefill) and end-to-end
//! latency for a representative request, per system — the quantities a
//! local-deployment user actually feels.

use kt_bench::{section, table};
use kt_hwsim::policy::{simulate, Phase, SystemPolicy};
use kt_hwsim::workload::Precision;
use kt_hwsim::{Calibration, Platform};
use kt_model::ModelPreset;

fn main() {
    let cal = Calibration::default();
    let platform = Platform::a100_dual_xeon();
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let prompt = 2048usize;
    let n_new = 256usize;
    section(&format!(
        "Request latency: DS-3 BF16 on A100, prompt {prompt}, {n_new} new tokens"
    ));
    let mut rows = Vec::new();
    for policy in [
        SystemPolicy::fiddler(),
        SystemPolicy::llamacpp(),
        SystemPolicy::ktransformers(),
        SystemPolicy::ktransformers_deferred(3),
    ] {
        let prefill = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            Phase::Prefill { prompt },
            &cal,
        )
        .expect("prefill sim");
        let decode = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            Phase::Decode {
                prompt,
                steps: 16,
            },
            &cal,
        )
        .expect("decode sim");
        let ttft = prompt as f64 / prefill.tokens_per_s;
        let decode_time = n_new as f64 / decode.tokens_per_s;
        rows.push(vec![
            policy.name.clone(),
            format!("{ttft:.1} s"),
            format!("{:.0} ms", 1000.0 / decode.tokens_per_s),
            format!("{:.1} s", ttft + decode_time),
        ]);
    }
    table(
        &["System", "Time to first token", "Per-token latency", "End-to-end"],
        &rows,
    );
    println!();
    println!("KTransformers' prefill advantage dominates TTFT; deferral only");
    println!("improves the decode tail (it is disabled during prefill).");
}
