//! Shared-prefix KV reuse ablation: TTFT of requests repeating a long
//! shared prompt prefix (system prompt / few-shot template) with the
//! radix prefix cache enabled vs disabled.
//!
//! Arms:
//! * **cold** — prefix cache disabled: every request prefills its full
//!   prompt from scratch.
//! * **warm** — prefix cache enabled and primed by one request: later
//!   requests seed the shared prefix from the cache and prefill only
//!   their unique suffix.
//! * **mixed** — enabled cache, alternating shared-prefix and
//!   all-unique prompts: reports the observed hit rate alongside the
//!   per-class TTFTs (the miss class must not regress).
//!
//! Modes:
//! * default — timed run: several interleaved cold/warm pairs, the
//!   mixed arm, medians reported, and `BENCH_prefix.json` written to
//!   the current directory (run from the repo root). Also measures
//!   single-stream decode throughput with the `ablation_hotpath`
//!   methodology to show the prefix plumbing costs the pure-decode hot
//!   path nothing.
//! * `--smoke` — CI gate: one pair; asserts warm-hit median TTFT is
//!   **under half** the cold median; exits nonzero otherwise.

use kt_bench::{section, table};
use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_model::{config::ModelConfig, ModelPreset};
use kt_serve::{Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

/// Shared prompt prefix length (the reusable system-prompt part).
const SHARED_PREFIX: usize = 384;
/// Unique per-request suffix length.
const SUFFIX: usize = 8;
/// Tokens each request generates.
const MAX_NEW: usize = 4;
/// Timed requests per arm run.
const N_REQS: usize = 3;

fn bench_config() -> ModelConfig {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.name = "prefix-bench".into();
    // Room for the 384-token shared prefix plus suffix and generation
    // (the tiny preset's 512 positions are too tight for headroom).
    cfg.max_seq = 1024;
    cfg
}

fn engine() -> Arc<HybridEngine> {
    Arc::new(
        HybridEngine::random(
            &bench_config(),
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 31,
                ..Default::default()
            },
        )
        .expect("engine"),
    )
}

fn shared_prefix() -> Vec<u32> {
    (0..SHARED_PREFIX).map(|i| ((i * 3 + 11) % 251) as u32).collect()
}

/// The r-th request's prompt: shared prefix + unique suffix.
fn shared_prompt(r: usize) -> Vec<u32> {
    let mut p = shared_prefix();
    p.extend((0..SUFFIX).map(|j| ((r * 17 + j * 5 + 97) % 251) as u32));
    p
}

/// An all-unique prompt of the same total length (the miss class).
fn unique_prompt(r: usize) -> Vec<u32> {
    (0..SHARED_PREFIX + SUFFIX)
        .map(|i| ((i * 7 + r * 41 + 3) % 251) as u32)
        .collect()
}

fn server(prefix_cache_bytes: usize) -> Server {
    Server::start(
        engine(),
        ServerConfig {
            max_batch: 4,
            prefill_chunk: 64,
            step_token_budget: 96,
            prefix_cache_bytes,
            ..Default::default()
        },
    )
    .expect("valid config")
}

/// Submits one request and returns its TTFT in milliseconds.
/// Sequential on purpose: queueing effects would pollute TTFT.
fn ttft_ms(server: &Server, prompt: &[u32]) -> f64 {
    let r = server.submit(Request::greedy(prompt, MAX_NEW)).wait();
    assert!(r.is_completed(), "{:?}", r.outcome);
    r.metrics.ttft_ns.expect("completed request has a TTFT") as f64 / 1e6
}

/// One cold-arm run: cache disabled, every request full-prefills.
fn cold_run() -> Vec<f64> {
    let server = server(0);
    let out = (0..N_REQS).map(|r| ttft_ms(&server, &shared_prompt(r))).collect();
    assert_eq!(server.stats().prefix_lookups, 0, "cache stayed disabled");
    server.shutdown();
    out
}

/// One warm-arm run: cache primed once, timed requests hit it.
fn warm_run() -> (Vec<f64>, u64) {
    let server = server(32 << 20);
    let _prime = ttft_ms(&server, &shared_prompt(usize::MAX / 2));
    let out = (0..N_REQS).map(|r| ttft_ms(&server, &shared_prompt(r))).collect();
    let stats = server.stats();
    assert_eq!(stats.prefix_hits, N_REQS as u64, "every timed request hit");
    let hit_tokens = stats.prefix_hit_tokens;
    server.shutdown();
    (out, hit_tokens)
}

/// The mixed arm: alternating hit-class and miss-class requests on one
/// enabled server. Returns (hit-class TTFTs, miss-class TTFTs, hit
/// rate over the timed requests).
fn mixed_run() -> (Vec<f64>, Vec<f64>, f64) {
    let server = server(32 << 20);
    let _prime = ttft_ms(&server, &shared_prompt(usize::MAX / 2));
    let before = server.stats();
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    for r in 0..N_REQS {
        hits.push(ttft_ms(&server, &shared_prompt(r)));
        misses.push(ttft_ms(&server, &unique_prompt(r)));
    }
    let stats = server.stats();
    let lookups = stats.prefix_lookups - before.prefix_lookups;
    let hit_rate = (stats.prefix_hits - before.prefix_hits) as f64 / lookups as f64;
    server.shutdown();
    (hits, misses, hit_rate)
}

/// Single-stream decode throughput, `ablation_hotpath` methodology
/// (realistic vocab, deep timed window) — the guard that the prefix
/// plumbing costs the pure-decode hot path nothing.
fn decode_tokens_per_s() -> f64 {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.vocab = 8192;
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine");
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let n_decode = 448usize;
    let start = Instant::now();
    for _ in 0..n_decode {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    n_decode as f64 / start.elapsed().as_secs_f64()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn fmt_samples(xs: &[f64]) -> String {
    let cells: Vec<String> = xs.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let pairs = if smoke { 1 } else { 5 };

    section(&format!(
        "Shared-prefix KV reuse: {SHARED_PREFIX}-token shared prefix + \
         {SUFFIX}-token unique suffix ({pairs} interleaved pair(s))"
    ));

    // Interleave cold/warm runs so host noise hits both arms alike;
    // medians across all timed requests of all runs.
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    let mut hit_tokens = 0;
    for _ in 0..pairs {
        cold.extend(cold_run());
        let (w, ht) = warm_run();
        warm.extend(w);
        hit_tokens = ht;
    }
    let c_med = median(&mut cold);
    let w_med = median(&mut warm);

    table(
        &["Arm", "TTFT median (ms)", "TTFT samples (ms)"],
        &[
            vec!["cold (cache off)".into(), format!("{c_med:.1}"), fmt_samples(&cold)],
            vec!["warm (primed hit)".into(), format!("{w_med:.1}"), fmt_samples(&warm)],
        ],
    );
    println!();
    println!("ttft_speedup {:.2}x", c_med / w_med);
    println!("Warm admission seeds the {SHARED_PREFIX}-token prefix from the radix");
    println!("cache ({hit_tokens} tokens served per run) and prefills only the");
    println!("{SUFFIX}-token suffix, so TTFT drops by roughly the prefill ratio.");

    if smoke {
        if w_med < 0.5 * c_med {
            println!("SMOKE OK: warm TTFT {w_med:.1} ms < 0.5x cold {c_med:.1} ms");
        } else {
            eprintln!(
                "SMOKE FAIL: warm TTFT {w_med:.1} ms >= 0.5x cold {c_med:.1} ms \
                 — prefix seeding did not pay for itself"
            );
            std::process::exit(1);
        }
        return;
    }

    // Full mode: mixed arm, decode-throughput guard, artifact.
    section("Mixed workload: alternating hit-class and miss-class prompts");
    let (mut mixed_hits, mut mixed_misses, hit_rate) = mixed_run();
    let mh_med = median(&mut mixed_hits);
    let mm_med = median(&mut mixed_misses);
    table(
        &["Class", "TTFT median (ms)"],
        &[
            vec!["shared prefix (hit)".into(), format!("{mh_med:.1}")],
            vec!["all-unique (miss)".into(), format!("{mm_med:.1}")],
        ],
    );
    println!("observed_hit_rate {hit_rate:.2}");

    section("Single-stream decode throughput (hotpath methodology)");
    let mut decode_samples: Vec<f64> = (0..5).map(|_| decode_tokens_per_s()).collect();
    let decode_median = median(&mut decode_samples);
    println!("decode_tokens_per_s_median {decode_median:.1}");

    let json = format!(
        r#"{{
  "bench": "ablation_prefix",
  "workload": {{
    "model": "DeepSeekV3 tiny preset, max_seq=1024",
    "engine": "n_cpu_workers=2, mode=AsyncGraph, n_deferred=2, seed=31",
    "prompts": "{SHARED_PREFIX}-token shared prefix + {SUFFIX}-token unique suffix, {MAX_NEW} new tokens, {N_REQS} sequential timed requests per run",
    "configs": "cold: prefix_cache_bytes=0; warm: 32 MiB cache primed by one untimed request; both prefill_chunk=64 step_token_budget=96"
  }},
  "method": "{pairs} interleaved cold/warm pairs, medians over all timed requests (this host has heavy CPU-steal noise)",
  "cold": {{
    "ttft_ms_samples": {cold_samples},
    "ttft_ms_median": {c_med:.1}
  }},
  "warm": {{
    "ttft_ms_samples": {warm_samples},
    "ttft_ms_median": {w_med:.1},
    "hit_tokens_per_run": {hit_tokens}
  }},
  "ttft_speedup_median": {speedup:.2},
  "mixed": {{
    "hit_ttft_ms_median": {mh_med:.1},
    "miss_ttft_ms_median": {mm_med:.1},
    "observed_hit_rate": {hit_rate:.2}
  }},
  "decode_guard": {{
    "method": "single-stream decode, ablation_hotpath methodology (vocab=8192, 448 timed steps), 5 reps",
    "decode_tokens_per_s_samples": {decode_samples},
    "decode_tokens_per_s_median": {decode_median:.1},
    "pr2_baseline_median": 1766.4
  }}
}}
"#,
        cold_samples = fmt_samples(&cold),
        warm_samples = fmt_samples(&warm),
        speedup = c_med / w_med,
        decode_samples = fmt_samples(&decode_samples),
    );
    std::fs::write("BENCH_prefix.json", &json).expect("write BENCH_prefix.json");
    println!();
    println!("wrote BENCH_prefix.json");
}
