//! Quantized serving ablation: decode throughput of the fused-dequant
//! int8/int4 expert hot path against the F32 and Bf16 baselines, on
//! the real engine.
//!
//! The workload is sized to be **weight-bandwidth-bound**, the regime
//! the paper's CPU expert path lives in: hidden 64 → 128, moe_inter
//! 48 → 1024, 16 → 64 routed experts, vocab 256 → 512. Each decode
//! step streams `top_k × 3 × moe_inter × hidden` routed-expert weights
//! per MoE layer (~25 MB at F32 across the two MoE layers) through
//! GEMV — far beyond L2, and with 128 (layer, expert) pairs the hot
//! set exceeds typical L3 slices, so F32 decode is paced by DRAM
//! bandwidth. Int8 streams 1/4 of those bytes and int4 1/8 (plus one
//! f32 scale per `group` codes), which is the entire mechanism behind
//! the speedup: the fused kernels widen codes in-register and fold the
//! group scale into the FMA, so no dequantized copy of the weights
//! ever exists in memory.
//!
//! Correctness riders, checked before anything is timed:
//!
//! * **chunked-prefill bitwise invariance** — for every quantized
//!   dtype, feeding a prompt in chunks produces bitwise the logits of
//!   the monolithic prefill (the row-stable kernel contract that PR 5
//!   established for F32, preserved by the fused-dequant kernels).
//! * **accuracy gates** — the kt-eval studies: decode-logit KL
//!   divergence of same-seed quantized models against the F32
//!   reference (the RNG stream is dtype-independent, so the arms share
//!   underlying weights), plus synthetic-task accuracy of fake-
//!   quantized trained MoE nets. Int8 must be near-lossless; int4 must
//!   stay within a few points.
//!
//! Headline metric: single-stream decode tok/s (ablation_hotpath
//! methodology — 2 warmups, timed steps, median of reps). Gate: int4
//! decode ≥ 2x the F32 median (full run), ≥ 1.5x in `--smoke` (CI
//! containers timeshare cores and vary in bandwidth). A decode guard
//! re-runs the unquantized hotpath configuration against the recorded
//! BENCH_slo.json baseline so the quantized path cannot buy its
//! speedup by regressing the F32 path.
//!
//! Modes:
//! * default — all arms, writes `BENCH_quant.json` (run from the repo
//!   root).
//! * `--smoke` — CI gate: int4 ≥ 1.5x F32, int8 ≥ 1.2x F32, KL gates,
//!   decode guard; exits nonzero otherwise.

use kt_bench::{section, table};
use kt_core::{BatchSeq, EngineConfig, HybridEngine, SchedMode};
use kt_eval::experiments::{quant_accuracy_study, quant_divergence_study, EvalBudget};
use kt_eval::TaskKind;
use kt_model::ModelPreset;
use kt_tensor::{PrecisionPolicy, WeightDtype};
use std::time::Instant;

/// Quantization group of the quantized arms (divides hidden 128 and
/// moe_inter 1024).
const GROUP: usize = 16;
/// Timed decode steps per rep and reps per arm.
const N_DECODE: usize = 48;
const REPS: usize = 5;
/// Decode guard: the `ablation_hotpath` configuration BENCH_slo.json's
/// baseline was recorded on, with the same wide cross-container
/// tolerance the other ablations use.
const N_DECODE_GUARD: usize = 448;
const SLO_BASELINE_TOK_S: f64 = 2183.4;
const GUARD_TOLERANCE: f64 = 0.6;
/// Accuracy gates (generous multiples of observed values; see
/// kt-eval's quant tests for the measured magnitudes).
const KL_GATE_INT8: f64 = 1e-3;
const KL_GATE_INT4: f64 = 0.05;
const ACC_DROP_GATE_PTS: f64 = 5.0;

/// The bandwidth-bound model: expert weights dominate every decode
/// step and exceed cache capacity at F32.
fn quant_config() -> kt_model::ModelConfig {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.vocab = 512;
    cfg.hidden = 128;
    cfg.moe_inter = 1024;
    cfg.dense_inter = 256;
    cfg.n_routed_experts = 64;
    cfg.n_layers = 3; // 1 dense + 2 MoE layers
    cfg.n_heads = 4;
    cfg.head_dim = 32;
    cfg
}

fn mk_engine(dtype: WeightDtype) -> HybridEngine {
    mk_engine_with(dtype, kt_kernels::dispatch::Backend::default())
}

fn mk_engine_with(dtype: WeightDtype, backend: kt_kernels::dispatch::Backend) -> HybridEngine {
    HybridEngine::random(
        &quant_config(),
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            backend,
            precision: PrecisionPolicy::experts(dtype),
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine")
}

fn mk_guard_engine() -> HybridEngine {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.vocab = 8192;
    HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine")
}

/// Prefill `prompt` through `engine` in the given chunk sizes (the
/// serving scheduler's chunked-prefill path: prefill-marked rows, so a
/// one-token chunk is not a deferral-eligible decode row) and return
/// the final position's logits as raw bits.
fn prefill_last_row_bits(engine: &HybridEngine, prompt: &[u32], chunks: &[usize]) -> Vec<u32> {
    let mut cache = engine.fresh_cache();
    let mut start = 0;
    let mut last: Option<Vec<u32>> = None;
    for (i, &len) in chunks.iter().enumerate() {
        let tokens = prompt[start..start + len].to_vec();
        let mut seqs = vec![if i + 1 == chunks.len() {
            BatchSeq::prefill(cache, tokens)
        } else {
            BatchSeq::prefill_chunk(cache, tokens)
        }];
        let mut out = engine.forward_batch(&mut seqs).expect("prefill chunk");
        if let Some(l) = out[0].take() {
            last = Some(l.row(l.rows() - 1).iter().map(|v| v.to_bits()).collect());
            engine.recycle_logits(l);
        }
        cache = seqs.pop().expect("one sequence").cache;
        start += len;
    }
    assert_eq!(start, prompt.len(), "chunks must cover the prompt");
    last.expect("final chunk produces logits")
}

/// Chunked prefill must be bitwise identical to monolithic prefill
/// under every quantized dtype. The invariant holds per kernel class —
/// the hybrid dispatcher picks the class by tokens-per-expert, which
/// chunking changes — so both classes are pinned: Tiled (staged
/// dequant) and Vector (the fused-dequant GEMV hot path). The check
/// runs on the unscaled tiny preset (the property is structural, and
/// `forward_batch` takes external caches, so one engine serves every
/// split); kernel-level coverage across shapes and groups lives in
/// kt-kernels' quant proptests.
fn check_chunked_prefill(dtype: WeightDtype) {
    use kt_kernels::dispatch::Backend;
    let prompt: Vec<u32> = (0..12).map(|i| (i * 37 + 5) % 256).collect();
    for backend in [Backend::TiledOnly, Backend::VectorOnly] {
        let engine = HybridEngine::random(
            &ModelPreset::DeepSeekV3.tiny_config(),
            EngineConfig {
                n_cpu_workers: 1,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                backend,
                precision: PrecisionPolicy::experts(dtype),
                seed: 17,
                ..Default::default()
            },
        )
        .expect("engine");
        let want = prefill_last_row_bits(&engine, &prompt, &[12]);
        for chunks in [vec![4, 4, 4], vec![1, 11], vec![7, 3, 2]] {
            let got = prefill_last_row_bits(&engine, &prompt, &chunks);
            assert_eq!(
                want, got,
                "chunked prefill changed the bits for {dtype:?}/{backend:?} with chunks {chunks:?}"
            );
        }
    }
}

/// Single-stream decode throughput (prefill, 2 warmups, `steps` timed
/// steps), one measurement on an already-constructed engine. The
/// engine is reused across reps — at this scale constructing the F32
/// arm draws ~400 MB of weights, and decode is stateless apart from
/// the growing KV cache (128-dim attention: negligible traffic next
/// to the expert weights).
fn decode_tokens_per_s(engine: &HybridEngine, steps: usize) -> f64 {
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let start = Instant::now();
    for _ in 0..steps {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    steps as f64 / start.elapsed().as_secs_f64()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn fmt_samples(xs: &[f64]) -> String {
    let cells: Vec<String> = xs.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", cells.join(", "))
}

struct Arm {
    label: &'static str,
    samples: Vec<f64>,
    median: f64,
    /// Stored routed-expert bytes per expert (the bandwidth driver).
    expert_bytes: usize,
}

fn run_arm(label: &'static str, dtype: WeightDtype) -> Arm {
    let engine = mk_engine(dtype);
    let expert_bytes = engine.expert_weight_bytes().expect("routed experts");
    let mut samples: Vec<f64> = (0..REPS).map(|_| decode_tokens_per_s(&engine, N_DECODE)).collect();
    let median = median(&mut samples);
    Arm { label, samples, median, expert_bytes }
}

fn arm_json(a: &Arm) -> String {
    format!(
        r#"    "{}": {{"samples": {}, "median": {:.1}, "expert_bytes": {}}}"#,
        a.label,
        fmt_samples(&a.samples),
        a.median,
        a.expert_bytes
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    section(&format!(
        "Fused-dequant quantized serving: DS-3 tiny scaled bandwidth-bound \
         (hidden=128, moe_inter=1024, 64 experts, 2 MoE layers), group {GROUP}"
    ));

    // Correctness before speed (group 8: the tiny preset's moe_inter
    // 48 caps the common divisor).
    for dtype in [
        WeightDtype::Bf16,
        WeightDtype::Int8 { group: 8 },
        WeightDtype::Int4 { group: 8 },
    ] {
        check_chunked_prefill(dtype);
    }
    println!("bitwise check: chunked prefill == monolithic prefill (bf16, int8, int4; tiled + vector)");

    // Accuracy gates on the kt-eval substrate (tiny model, group 8:
    // the tiny preset's hidden 24 caps the common divisor).
    let div = quant_divergence_study(
        &[WeightDtype::Int8 { group: 8 }, WeightDtype::Int4 { group: 8 }],
        4,
        23,
    )
    .expect("divergence study");
    let acc = quant_accuracy_study(
        &[WeightDtype::Int8 { group: 8 }, WeightDtype::Int4 { group: 8 }],
        &[TaskKind::Blobs, TaskKind::Xor],
        &EvalBudget::quick(),
        29,
    );
    let rows: Vec<Vec<String>> = div
        .iter()
        .zip(&acc)
        .map(|(d, a)| {
            vec![
                format!("{:?}", d.dtype),
                format!("{:.2e}", d.kl),
                format!("{:.2}", d.top1_agree),
                format!("{:.1}", a.base_acc),
                format!("{:.1}", a.quant_acc),
            ]
        })
        .collect();
    table(
        &["Dtype", "KL vs F32", "top-1 agree", "F32 acc %", "quant acc %"],
        &rows,
    );

    let mut failures = Vec::new();
    if div[0].kl >= KL_GATE_INT8 {
        failures.push(format!("int8 KL {:.2e} over the {KL_GATE_INT8:.0e} gate", div[0].kl));
    }
    if div[1].kl >= KL_GATE_INT4 {
        failures.push(format!("int4 KL {:.2e} over the {KL_GATE_INT4:.0e} gate", div[1].kl));
    }
    for a in &acc {
        if a.base_acc - a.quant_acc > ACC_DROP_GATE_PTS {
            failures.push(format!(
                "{:?} dropped task accuracy {:.1} -> {:.1} (> {ACC_DROP_GATE_PTS} pts)",
                a.dtype, a.base_acc, a.quant_acc
            ));
        }
    }

    // Throughput arms.
    let f32_arm = run_arm("f32", WeightDtype::F32);
    let bf16_arm = run_arm("bf16", WeightDtype::Bf16);
    let int8_arm = run_arm("int8", WeightDtype::Int8 { group: GROUP });
    let int4_arm = run_arm("int4", WeightDtype::Int4 { group: GROUP });
    let arms = [&f32_arm, &bf16_arm, &int8_arm, &int4_arm];

    println!();
    let rows: Vec<Vec<String>> = arms
        .iter()
        .map(|a| {
            vec![
                a.label.into(),
                format!("{:.1}", a.median),
                format!("{:.2}x", a.median / f32_arm.median),
                format!("{}", a.expert_bytes),
                fmt_samples(&a.samples),
            ]
        })
        .collect();
    table(
        &["Arm", "Decode tok/s (median)", "vs f32", "Bytes/expert", "Samples"],
        &rows,
    );

    let int8_speedup = int8_arm.median / f32_arm.median;
    let int4_speedup = int4_arm.median / f32_arm.median;
    // Fresh engine per rep: the tiny preset's RoPE table caps the
    // sequence, and 5 x 448 decode steps on one cache would run off it.
    let guard = {
        let mut samples: Vec<f64> = (0..REPS)
            .map(|_| decode_tokens_per_s(&mk_guard_engine(), N_DECODE_GUARD))
            .collect();
        median(&mut samples)
    };

    println!();
    println!("int4_speedup {int4_speedup:.2}x, int8_speedup {int8_speedup:.2}x over f32 decode");
    println!(
        "decode_guard {guard:.1} tok/s vs BENCH_slo.json median {SLO_BASELINE_TOK_S} \
         (tolerance {GUARD_TOLERANCE}x, {} core(s) observed)",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );

    let int4_gate = if smoke { 1.5 } else { 2.0 };
    if int4_speedup < int4_gate {
        failures.push(format!(
            "int4 decode speedup {int4_speedup:.2}x below the {int4_gate}x gate"
        ));
    }
    if smoke && int8_speedup < 1.05 {
        failures.push(format!("int8 decode speedup {int8_speedup:.2}x below the 1.05x gate"));
    }
    if guard < GUARD_TOLERANCE * SLO_BASELINE_TOK_S {
        failures.push(format!(
            "decode guard {guard:.1} tok/s below {GUARD_TOLERANCE}x of the {SLO_BASELINE_TOK_S} baseline"
        ));
    }

    if smoke {
        if failures.is_empty() {
            println!(
                "SMOKE OK: int4 {int4_speedup:.2}x >= 1.5x, int8 {int8_speedup:.2}x >= 1.05x, \
                 KL gates passed, guard {guard:.1} tok/s"
            );
        } else {
            for f in &failures {
                eprintln!("SMOKE FAIL: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    for f in &failures {
        eprintln!("WARNING: {f}");
    }

    let json = format!(
        r#"{{
  "bench": "ablation_quant",
  "workload": {{
    "model": "DeepSeekV3 tiny preset scaled bandwidth-bound: hidden=128, moe_inter=1024, n_routed_experts=64, n_layers=3 (2 MoE), vocab=512 (guard arm: unscaled tiny preset, vocab=8192)",
    "engine": "n_cpu_workers=1, mode=AsyncGraph, n_deferred=2, seed=17, precision=experts(dtype), group={GROUP}"
  }},
  "method": "single-stream decode, ablation_hotpath methodology (2 warmups, {N_DECODE} timed steps; guard arm {N_DECODE_GUARD}), {REPS} reps, median; chunked prefill checked bitwise against monolithic for every quantized dtype before timing; kt-eval divergence + fake-quant task-accuracy gates embedded",
  "cores_observed": {cores},
  "arms": {{
{arms_json}
  }},
  "int8_speedup": {int8_speedup:.3},
  "int4_speedup": {int4_speedup:.3},
  "chunked_prefill_bitwise_identical": true,
  "accuracy_gates": {{
    "int8": {{"kl_vs_f32": {kl8:.3e}, "top1_agree": {ag8:.3}, "task_acc_f32": {bacc8:.1}, "task_acc_quant": {qacc8:.1}}},
    "int4": {{"kl_vs_f32": {kl4:.3e}, "top1_agree": {ag4:.3}, "task_acc_f32": {bacc4:.1}, "task_acc_quant": {qacc4:.1}}},
    "gates": {{"kl_int8": {KL_GATE_INT8:.0e}, "kl_int4": {KL_GATE_INT4:.0e}, "max_task_acc_drop_pts": {ACC_DROP_GATE_PTS}}}
  }},
  "decode_guard": {{
    "f32_hotpath_median": {guard:.1},
    "bench_slo_baseline_median": {SLO_BASELINE_TOK_S},
    "tolerance": {GUARD_TOLERANCE}
  }}
}}
"#,
        cores = std::thread::available_parallelism().map_or(0, |n| n.get()),
        arms_json = arms.iter().map(|a| arm_json(a)).collect::<Vec<_>>().join(",\n"),
        kl8 = div[0].kl,
        ag8 = div[0].top1_agree,
        bacc8 = acc[0].base_acc,
        qacc8 = acc[0].quant_acc,
        kl4 = div[1].kl,
        ag4 = div[1].top1_agree,
        bacc4 = acc[1].base_acc,
        qacc4 = acc[1].quant_acc,
    );
    std::fs::write("BENCH_quant.json", &json).expect("write BENCH_quant.json");
    println!();
    println!("wrote BENCH_quant.json");
}
