//! Tracing-overhead ablation: decode throughput with the trace sink
//! (a) never touched, (b) enabled then disabled (the shipping default:
//! the per-span cost is one relaxed load), and (c) fully enabled.
//!
//! Each timed arm runs in a fresh child process (this binary re-execs
//! itself with `KT_TRACE_BENCH_ARM` set) so (a) the baseline arm is
//! genuinely never-enabled every repetition, and (b) the three arms
//! interleave rep by rep — sequential arms would let host-noise drift
//! masquerade as overhead.
//!
//! A fourth child arm, `flight`, exercises the tail-latency flight
//! recorder end to end: tracing on, a `kt_serve::Server` with
//! impossible (1 ns) SLO targets so every request violates and must be
//! captured, reporting how many waterfalls froze and what fraction of
//! the measured end-to-end time the attributed components explain.
//!
//! Modes:
//! * default — timed run: prints peak tokens/s for the three decode
//!   arms plus the flight arm's capture/coverage numbers, and writes
//!   `BENCH_trace.json`.
//! * `--smoke` — CI gate: short run asserting (a) the
//!   disabled-after-enable arm stays within 3% of the never-enabled
//!   baseline (the "tracing off is free" claim, with the flight
//!   recorder compiled in), (b) the recorder captured every induced
//!   SLO violation, and (c) attribution components sum to at least 90%
//!   of the measured end-to-end time in aggregate; exits nonzero
//!   otherwise.

use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_model::{config::ModelConfig, ModelPreset};
use kt_serve::{Request, Server, ServerConfig, SloPolicy, SloTarget};
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

fn trace_config() -> ModelConfig {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.name = "trace".into();
    cfg.vocab = 8192;
    cfg
}

/// One decode run: prefill 3 tokens, 2 warmup steps, `n_decode` timed
/// steps. Returns tokens/s over the timed window. Mirrors the
/// ablation_hotpath methodology so numbers are comparable.
fn decode_run(n_decode: usize) -> f64 {
    let cfg = trace_config();
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine");
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let start = Instant::now();
    for _ in 0..n_decode {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    n_decode as f64 / start.elapsed().as_secs_f64()
}

/// Peak throughput over the repetitions. Host noise (CPU steal on
/// shared runners) only ever *slows* a run, so the max is the stable
/// estimator of an arm's intrinsic speed — medians of short windows
/// still swing several percent here.
fn peak(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::MIN, f64::max)
}

/// Median per-repetition paired overhead of `arm` vs `base`, in
/// percent. The arms interleave within each repetition, so the
/// rep-local ratio cancels host drift that spans repetitions —
/// comparing each arm's global peak instead lets one lucky baseline
/// rep fail the gate on a noisy runner. The median then discards
/// outlier pairs in either direction; a real systematic cost shifts
/// the whole distribution and survives it.
fn paired_overhead_pct(base: &[f64], arm: &[f64]) -> f64 {
    let mut pairs: Vec<f64> = base
        .iter()
        .zip(arm)
        .map(|(b, a)| (b - a) / b * 100.0)
        .collect();
    pairs.sort_by(f64::total_cmp);
    pairs[pairs.len() / 2]
}

/// Flight-recorder arm: serve a small workload through a server whose
/// SLO targets (1 ns) no request can meet, with shedding off — every
/// request completes, violates, and must freeze into the recorder.
/// Reports serve throughput, how many waterfalls were captured, and
/// the aggregate attribution coverage (attributed component time over
/// measured queue-wait + TTFT + decode time).
fn flight_run(n_decode: usize) {
    kt_trace::enable();
    let cfg = trace_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 1,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 17,
                ..Default::default()
            },
        )
        .expect("engine"),
    );
    let policy = SloPolicy {
        targets: [SloTarget { ttft_ns: 1, itl_ns: 1 }; 3],
        shed: false,
    };
    let server = Server::start(
        engine,
        ServerConfig {
            max_batch: 2,
            prefill_chunk: 8,
            step_token_budget: 16,
            slo: Some(policy),
            ..Default::default()
        },
    )
    .expect("server");
    // 4 requests of 16-token prompts (2 chunks each) sharing the
    // 2-wide batch; generation length scales with the smoke/full knob.
    let max_new = (n_decode / 8).max(4);
    let prompts: Vec<Vec<u32>> = (0..4u32)
        .map(|i| (0..16).map(|t| (t * 5 + i + 1) % 250).collect())
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = prompts
        .iter()
        .map(|p| server.submit(Request::greedy(p, max_new)))
        .collect();
    let ids: Vec<u64> = handles.iter().map(|h| h.id()).collect();
    let mut tokens = 0usize;
    for h in handles {
        let r = h.wait();
        assert!(r.is_completed(), "flight workload completes: {:?}", r.outcome);
        tokens += r.tokens.len();
    }
    let tok_s = tokens as f64 / start.elapsed().as_secs_f64();
    let captured = server.captured_request_ids();
    let captured_all = ids.iter().filter(|id| captured.contains(id)).count();
    let (mut attributed, mut measured) = (0u64, 0u64);
    for &id in &ids {
        let b = server.breakdown(id).expect("breakdown retained");
        attributed += b.total_ns();
        measured += b.measured_total_ns();
    }
    let coverage_pct = if measured == 0 {
        0.0
    } else {
        attributed as f64 / measured as f64 * 100.0
    };
    println!("child_tokens_per_s {tok_s:.3}");
    println!("child_captured {captured_all} of {}", ids.len());
    println!("child_coverage_pct {coverage_pct:.2}");
    server.shutdown();
}

/// Child mode: run exactly one arm and report its throughput (and, for
/// the `on` arm, how many spans survived in the rings) on stdout.
fn run_child_arm(arm: &str, n_decode: usize) {
    match arm {
        "flight" => return flight_run(n_decode),
        // Never-enabled: span sites see tracing structurally untouched
        // — exactly the shipping default. Runs the same short warmup
        // engine as the `off` arm (just without ever enabling tracing)
        // so both arms enter the timed window with identical allocator
        // history; otherwise the off arm's extra engine lifetime shows
        // up as a phantom percent or two of "overhead".
        "baseline" => {
            decode_run(8);
        }
        // Disabled after having been enabled: a warmup run records
        // spans, then `disable()` leaves every span site paying one
        // relaxed bool load. This is the arm the 3% gate holds to the
        // baseline — enabling tracing once must not leave a residual
        // tax.
        "off" => {
            kt_trace::enable();
            decode_run(8);
            kt_trace::disable();
        }
        // Tracing fully on: spans recorded into per-thread rings.
        "on" => kt_trace::enable(),
        other => panic!("unknown arm {other}"),
    }
    let tok_s = decode_run(n_decode);
    println!("child_tokens_per_s {tok_s:.3}");
    if arm == "on" {
        println!("child_spans_recorded {}", kt_trace::sink().snapshot().spans.len());
    }
}

/// Spawns one child repetition of `arm`, returns (tokens/s, spans).
fn spawn_arm(arm: &str, n_decode: usize) -> (f64, usize) {
    let exe = std::env::current_exe().expect("current exe");
    let out = Command::new(exe)
        .env("KT_TRACE_BENCH_ARM", arm)
        .env("KT_TRACE_BENCH_DECODES", n_decode.to_string())
        .output()
        .expect("spawn child arm");
    assert!(out.status.success(), "child arm {arm} failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("child stdout utf8");
    let mut tok_s = None;
    let mut spans = 0usize;
    for line in stdout.lines() {
        if let Some(v) = line.strip_prefix("child_tokens_per_s ") {
            tok_s = Some(v.parse().expect("tokens/s"));
        } else if let Some(v) = line.strip_prefix("child_spans_recorded ") {
            spans = v.parse().expect("span count");
        }
    }
    (tok_s.expect("child printed throughput"), spans)
}

/// Spawns one flight-recorder repetition; returns (tokens/s, captured,
/// submitted, coverage %).
fn spawn_flight(n_decode: usize) -> (f64, usize, usize, f64) {
    let exe = std::env::current_exe().expect("current exe");
    let out = Command::new(exe)
        .env("KT_TRACE_BENCH_ARM", "flight")
        .env("KT_TRACE_BENCH_DECODES", n_decode.to_string())
        .output()
        .expect("spawn flight arm");
    assert!(out.status.success(), "flight arm failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("child stdout utf8");
    let (mut tok_s, mut captured, mut total, mut coverage) = (None, 0usize, 0usize, None);
    for line in stdout.lines() {
        if let Some(v) = line.strip_prefix("child_tokens_per_s ") {
            tok_s = Some(v.parse().expect("tokens/s"));
        } else if let Some(v) = line.strip_prefix("child_captured ") {
            let (c, t) = v.split_once(" of ").expect("captured form");
            captured = c.parse().expect("captured count");
            total = t.parse().expect("submitted count");
        } else if let Some(v) = line.strip_prefix("child_coverage_pct ") {
            coverage = Some(v.parse().expect("coverage"));
        }
    }
    (
        tok_s.expect("flight printed throughput"),
        captured,
        total,
        coverage.expect("flight printed coverage"),
    )
}

fn main() {
    if let Ok(arm) = std::env::var("KT_TRACE_BENCH_ARM") {
        let n_decode: usize = std::env::var("KT_TRACE_BENCH_DECODES")
            .expect("decode count env")
            .parse()
            .expect("decode count");
        run_child_arm(&arm, n_decode);
        return;
    }

    let smoke = std::env::args().any(|a| a == "--smoke");
    // The smoke gate needs enough repetitions that the median paired
    // overhead resolves 3% against per-child scheduler jitter of a few
    // percent: 41 pairs put the median's standard error near 1% while
    // the whole run (children are ~0.1 s each) stays around ten
    // seconds. The timed full run keeps fewer, longer-lived reps.
    let (n_decode, reps) = if smoke { (256usize, 41usize) } else { (256usize, 7usize) };

    let mut baseline = Vec::with_capacity(reps);
    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    let mut spans_recorded = 0usize;
    for _ in 0..reps {
        baseline.push(spawn_arm("baseline", n_decode).0);
        off.push(spawn_arm("off", n_decode).0);
        let (tok_s, spans) = spawn_arm("on", n_decode);
        on.push(tok_s);
        spans_recorded = spans;
    }

    // The flight arm measures capture completeness and attribution
    // coverage rather than overhead, so one fresh-process run suffices.
    let (flight_tok_s, captured, submitted, coverage_pct) = spawn_flight(n_decode);

    let base = peak(&baseline);
    let off_m = peak(&off);
    let on_m = peak(&on);
    let off_overhead = paired_overhead_pct(&baseline, &off);
    let on_overhead = paired_overhead_pct(&baseline, &on);

    println!("baseline_tokens_per_s {base:.1}");
    println!("tracing_off_tokens_per_s {off_m:.1}");
    println!("tracing_on_tokens_per_s {on_m:.1}");
    println!("tracing_off_overhead_pct {off_overhead:.2}");
    println!("tracing_on_overhead_pct {on_overhead:.2}");
    println!("spans_recorded_while_on {spans_recorded}");
    println!("flight_tokens_per_s {flight_tok_s:.1}");
    println!("flight_captured {captured} of {submitted}");
    println!("flight_coverage_pct {coverage_pct:.2}");
    let json = format!(
        "{{\"baseline_tok_s\":{base:.1},\"off_tok_s\":{off_m:.1},\
         \"on_tok_s\":{on_m:.1},\"off_overhead_pct\":{off_overhead:.2},\
         \"on_overhead_pct\":{on_overhead:.2},\
         \"flight_tok_s\":{flight_tok_s:.1},\"flight_captured\":{captured},\
         \"flight_submitted\":{submitted},\
         \"flight_coverage_pct\":{coverage_pct:.2},\
         \"n_decode\":{n_decode},\"reps\":{reps}}}"
    );
    println!("trace_overhead_json {json}");
    if !smoke {
        std::fs::write("BENCH_trace.json", format!("{json}\n")).expect("write BENCH_trace.json");
    }

    assert!(spans_recorded > 0, "tracing-on arm recorded no spans");
    if smoke {
        let mut failed = false;
        // 3% gate on the best rep-paired overhead: interleaved
        // fresh-process arms plus the pairing keep shared-runner noise
        // out of the margin.
        if off_overhead > 3.0 {
            eprintln!(
                "SMOKE FAIL: tracing-off decode is {off_overhead:.2}% slower than \
                 the never-enabled baseline (gate: 3%)"
            );
            failed = true;
        }
        if captured != submitted {
            eprintln!(
                "SMOKE FAIL: flight recorder captured {captured} of {submitted} \
                 induced SLO violations (gate: all)"
            );
            failed = true;
        }
        if coverage_pct < 90.0 {
            eprintln!(
                "SMOKE FAIL: attribution explains {coverage_pct:.2}% of measured \
                 end-to-end time (gate: 90%)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "SMOKE OK: tracing-off within {off_overhead:.2}% of baseline \
             (gate 3%); tracing-on overhead {on_overhead:.2}%; flight recorder \
             captured {captured}/{submitted} violations with {coverage_pct:.2}% \
             attribution coverage"
        );
    }
}
