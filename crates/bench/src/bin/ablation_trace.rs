//! Tracing-overhead ablation: decode throughput with the trace sink
//! (a) never touched, (b) enabled then disabled (the shipping default:
//! the per-span cost is one relaxed load), and (c) fully enabled.
//!
//! Each timed arm runs in a fresh child process (this binary re-execs
//! itself with `KT_TRACE_BENCH_ARM` set) so (a) the baseline arm is
//! genuinely never-enabled every repetition, and (b) the three arms
//! interleave rep by rep — sequential arms would let host-noise drift
//! masquerade as overhead.
//!
//! Modes:
//! * default — timed run: prints peak tokens/s for all three arms
//!   over several repetitions plus the relative overheads, and writes
//!   `BENCH_trace.json`.
//! * `--smoke` — CI gate: short run asserting the disabled-after-enable
//!   arm stays within 3% of the never-enabled baseline (the "tracing
//!   off is free" claim); exits nonzero otherwise.

use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_model::{config::ModelConfig, ModelPreset};
use std::process::Command;
use std::time::Instant;

fn trace_config() -> ModelConfig {
    let mut cfg = ModelPreset::DeepSeekV3.tiny_config();
    cfg.name = "trace".into();
    cfg.vocab = 8192;
    cfg
}

/// One decode run: prefill 3 tokens, 2 warmup steps, `n_decode` timed
/// steps. Returns tokens/s over the timed window. Mirrors the
/// ablation_hotpath methodology so numbers are comparable.
fn decode_run(n_decode: usize) -> f64 {
    let cfg = trace_config();
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 1,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            seed: 17,
            ..Default::default()
        },
    )
    .expect("engine");
    let logits = engine.forward(&[1, 2, 3]).expect("prefill");
    let mut next = kt_model::model::argmax(logits.row(logits.rows() - 1));
    engine.recycle_logits(logits);
    for _ in 0..2 {
        let l = engine.forward(&[next]).expect("warmup decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    let start = Instant::now();
    for _ in 0..n_decode {
        let l = engine.forward(&[next]).expect("decode");
        next = kt_model::model::argmax(l.row(0));
        engine.recycle_logits(l);
    }
    n_decode as f64 / start.elapsed().as_secs_f64()
}

/// Peak throughput over the repetitions. Host noise (CPU steal on
/// shared runners) only ever *slows* a run, so the max is the stable
/// estimator of an arm's intrinsic speed — medians of short windows
/// still swing several percent here.
fn peak(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::MIN, f64::max)
}

/// Child mode: run exactly one arm and report its throughput (and, for
/// the `on` arm, how many spans survived in the rings) on stdout.
fn run_child_arm(arm: &str, n_decode: usize) {
    match arm {
        // Never-enabled: span sites see tracing structurally untouched
        // — exactly the shipping default.
        "baseline" => {}
        // Disabled after having been enabled: a warmup run records
        // spans, then `disable()` leaves every span site paying one
        // relaxed bool load. This is the arm the 3% gate holds to the
        // baseline — enabling tracing once must not leave a residual
        // tax.
        "off" => {
            kt_trace::enable();
            decode_run(8);
            kt_trace::disable();
        }
        // Tracing fully on: spans recorded into per-thread rings.
        "on" => kt_trace::enable(),
        other => panic!("unknown arm {other}"),
    }
    let tok_s = decode_run(n_decode);
    println!("child_tokens_per_s {tok_s:.3}");
    if arm == "on" {
        println!("child_spans_recorded {}", kt_trace::sink().snapshot().spans.len());
    }
}

/// Spawns one child repetition of `arm`, returns (tokens/s, spans).
fn spawn_arm(arm: &str, n_decode: usize) -> (f64, usize) {
    let exe = std::env::current_exe().expect("current exe");
    let out = Command::new(exe)
        .env("KT_TRACE_BENCH_ARM", arm)
        .env("KT_TRACE_BENCH_DECODES", n_decode.to_string())
        .output()
        .expect("spawn child arm");
    assert!(out.status.success(), "child arm {arm} failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("child stdout utf8");
    let mut tok_s = None;
    let mut spans = 0usize;
    for line in stdout.lines() {
        if let Some(v) = line.strip_prefix("child_tokens_per_s ") {
            tok_s = Some(v.parse().expect("tokens/s"));
        } else if let Some(v) = line.strip_prefix("child_spans_recorded ") {
            spans = v.parse().expect("span count");
        }
    }
    (tok_s.expect("child printed throughput"), spans)
}

fn main() {
    if let Ok(arm) = std::env::var("KT_TRACE_BENCH_ARM") {
        let n_decode: usize = std::env::var("KT_TRACE_BENCH_DECODES")
            .expect("decode count env")
            .parse()
            .expect("decode count");
        run_child_arm(&arm, n_decode);
        return;
    }

    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_decode, reps) = if smoke { (96usize, 7usize) } else { (256usize, 7usize) };

    let mut baseline = Vec::with_capacity(reps);
    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    let mut spans_recorded = 0usize;
    for _ in 0..reps {
        baseline.push(spawn_arm("baseline", n_decode).0);
        off.push(spawn_arm("off", n_decode).0);
        let (tok_s, spans) = spawn_arm("on", n_decode);
        on.push(tok_s);
        spans_recorded = spans;
    }

    let base = peak(&baseline);
    let off_m = peak(&off);
    let on_m = peak(&on);
    let off_overhead = (base - off_m) / base * 100.0;
    let on_overhead = (base - on_m) / base * 100.0;

    println!("baseline_tokens_per_s {base:.1}");
    println!("tracing_off_tokens_per_s {off_m:.1}");
    println!("tracing_on_tokens_per_s {on_m:.1}");
    println!("tracing_off_overhead_pct {off_overhead:.2}");
    println!("tracing_on_overhead_pct {on_overhead:.2}");
    println!("spans_recorded_while_on {spans_recorded}");
    let json = format!(
        "{{\"baseline_tok_s\":{base:.1},\"off_tok_s\":{off_m:.1},\
         \"on_tok_s\":{on_m:.1},\"off_overhead_pct\":{off_overhead:.2},\
         \"on_overhead_pct\":{on_overhead:.2},\"n_decode\":{n_decode},\
         \"reps\":{reps}}}"
    );
    println!("trace_overhead_json {json}");
    if !smoke {
        std::fs::write("BENCH_trace.json", format!("{json}\n")).expect("write BENCH_trace.json");
    }

    assert!(spans_recorded > 0, "tracing-on arm recorded no spans");
    if smoke {
        // 3% gate on peak-vs-peak: interleaved fresh-process arms plus
        // the max estimator keep shared-runner noise out of the margin.
        if off_overhead > 3.0 {
            eprintln!(
                "SMOKE FAIL: tracing-off decode is {off_overhead:.2}% slower than \
                 the never-enabled baseline (gate: 3%)"
            );
            std::process::exit(1);
        }
        println!(
            "SMOKE OK: tracing-off within {off_overhead:.2}% of baseline \
             (gate 3%); tracing-on overhead {on_overhead:.2}%"
        );
    }
}
