//! Seeded open-loop arrival generators for serving benchmarks and
//! stress tests.
//!
//! Open-loop load (arrivals follow a clock, not the server's
//! responses) is what exposes queueing behavior: a closed loop slows
//! its own offered load down exactly when the server saturates, hiding
//! the overload the SLO machinery exists to handle. Everything here is
//! a pure function of `(pattern, seed, n)` so benchmark runs and test
//! failures reproduce bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of an open-loop arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalPattern {
    /// Memoryless arrivals at `rate_per_s`: i.i.d. exponential gaps,
    /// the standard model of independent request traffic.
    Poisson {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// Bursty arrivals with the same long-run `rate_per_s`: burst
    /// *heads* arrive as a Poisson process at `rate_per_s / burst`,
    /// and each head brings `burst` requests jittered uniformly within
    /// `spread_ns`. Stresses admission with correlated queue spikes a
    /// plain Poisson stream rarely produces.
    Bursty {
        /// Mean arrivals per second (across bursts).
        rate_per_s: f64,
        /// Requests per burst (≥ 1; 1 degenerates to Poisson).
        burst: usize,
        /// Window each burst's arrivals spread over, in nanoseconds.
        spread_ns: u64,
    },
    /// Replays recorded offsets (e.g. from a production trace),
    /// cycling if `n` exceeds the recording. Offsets are nanoseconds
    /// from the run start; cycling shifts each lap past the previous
    /// one so the result stays monotone.
    Replay {
        /// Recorded arrival offsets in nanoseconds, from run start.
        offsets_ns: Vec<u64>,
    },
}

/// Generates `n` arrival offsets in nanoseconds from the run start,
/// sorted non-decreasing. Deterministic in `(pattern, seed, n)`.
pub fn offsets_ns(pattern: &ArrivalPattern, seed: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b74_776f_726b_6c64); // "ktworkld"
    let mut out: Vec<u64> = Vec::with_capacity(n);
    match pattern {
        ArrivalPattern::Poisson { rate_per_s } => {
            let mut t = 0u64;
            for _ in 0..n {
                t = t.saturating_add(exp_gap_ns(&mut rng, *rate_per_s));
                out.push(t);
            }
        }
        ArrivalPattern::Bursty {
            rate_per_s,
            burst,
            spread_ns,
        } => {
            let burst = (*burst).max(1);
            let head_rate = rate_per_s / burst as f64;
            let mut head = 0u64;
            while out.len() < n {
                head = head.saturating_add(exp_gap_ns(&mut rng, head_rate));
                for _ in 0..burst.min(n - out.len()) {
                    let jitter = if *spread_ns > 0 {
                        rng.gen_range(0..*spread_ns)
                    } else {
                        0
                    };
                    out.push(head.saturating_add(jitter));
                }
            }
        }
        ArrivalPattern::Replay { offsets_ns } => {
            if offsets_ns.is_empty() {
                return vec![0; n];
            }
            let span = offsets_ns.last().copied().unwrap_or(0).saturating_add(1);
            for i in 0..n {
                let lap = (i / offsets_ns.len()) as u64;
                out.push(offsets_ns[i % offsets_ns.len()].saturating_add(lap.saturating_mul(span)));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Exponential inter-arrival gap for a Poisson process at
/// `rate_per_s`, in nanoseconds (inverse-CDF sampling).
fn exp_gap_ns(rng: &mut StdRng, rate_per_s: f64) -> u64 {
    assert!(rate_per_s > 0.0, "arrival rate must be positive");
    let u: f64 = rng.gen_range(0.0..1.0);
    // -ln(1-u)/λ seconds; 1-u is in (0, 1] so the log is finite.
    let gap_s = -(1.0 - u).ln() / rate_per_s;
    (gap_s * 1e9) as u64
}

/// Assigns each of `n` requests a class index, sampled independently
/// with probability proportional to `weights`. Deterministic in
/// `(seed, n, weights)`.
pub fn assign_classes(seed: u64, n: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "at least one class weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b74_636c_6173_7365); // "ktclasse"
    (0..n)
        .map(|_| {
            let mut x: f64 = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i;
                }
                x -= w;
            }
            weights.len() - 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_fixed_seed() {
        for pattern in [
            ArrivalPattern::Poisson { rate_per_s: 500.0 },
            ArrivalPattern::Bursty {
                rate_per_s: 500.0,
                burst: 8,
                spread_ns: 1_000_000,
            },
            ArrivalPattern::Replay {
                offsets_ns: vec![5, 10, 40],
            },
        ] {
            let a = offsets_ns(&pattern, 7, 100);
            let b = offsets_ns(&pattern, 7, 100);
            assert_eq!(a, b, "same seed, same schedule: {pattern:?}");
            let c = offsets_ns(&pattern, 8, 100);
            if !matches!(pattern, ArrivalPattern::Replay { .. }) {
                assert_ne!(a, c, "different seed, different schedule: {pattern:?}");
            }
        }
    }

    #[test]
    fn offsets_are_monotone() {
        for pattern in [
            ArrivalPattern::Poisson { rate_per_s: 2_000.0 },
            ArrivalPattern::Bursty {
                rate_per_s: 2_000.0,
                burst: 5,
                spread_ns: 3_000_000,
            },
            ArrivalPattern::Replay {
                offsets_ns: vec![3, 9, 9, 20],
            },
        ] {
            let offs = offsets_ns(&pattern, 42, 500);
            assert_eq!(offs.len(), 500);
            assert!(
                offs.windows(2).all(|w| w[0] <= w[1]),
                "non-decreasing: {pattern:?}"
            );
        }
    }

    #[test]
    fn poisson_hits_the_requested_rate() {
        let rate = 1_000.0; // 1 arrival per ms
        let offs = offsets_ns(&ArrivalPattern::Poisson { rate_per_s: rate }, 3, 4_000);
        let span_s = *offs.last().unwrap() as f64 / 1e9;
        let measured = offs.len() as f64 / span_s;
        assert!(
            (measured - rate).abs() / rate < 0.1,
            "measured {measured:.1}/s vs requested {rate}/s"
        );
    }

    #[test]
    fn bursty_matches_long_run_rate_and_clusters() {
        let rate = 1_000.0;
        let pattern = ArrivalPattern::Bursty {
            rate_per_s: rate,
            burst: 10,
            spread_ns: 100_000, // 0.1 ms spread vs 10 ms between bursts
        };
        let offs = offsets_ns(&pattern, 11, 4_000);
        let span_s = *offs.last().unwrap() as f64 / 1e9;
        let measured = offs.len() as f64 / span_s;
        assert!(
            (measured - rate).abs() / rate < 0.15,
            "measured {measured:.1}/s vs requested {rate}/s"
        );
        // Clustering: most gaps are tiny (inside a burst), a few are
        // large (between bursts) — the gap distribution is bimodal in
        // a way plain Poisson is not.
        let gaps: Vec<u64> = offs.windows(2).map(|w| w[1] - w[0]).collect();
        let tiny = gaps.iter().filter(|&&g| g < 200_000).count();
        assert!(
            tiny as f64 > 0.8 * gaps.len() as f64,
            "{tiny}/{} gaps inside bursts",
            gaps.len()
        );
    }

    #[test]
    fn replay_cycles_past_the_recording() {
        let pattern = ArrivalPattern::Replay {
            offsets_ns: vec![10, 30],
        };
        let offs = offsets_ns(&pattern, 0, 5);
        assert_eq!(offs, vec![10, 30, 41, 61, 72]);
        let empty = offsets_ns(&ArrivalPattern::Replay { offsets_ns: vec![] }, 0, 3);
        assert_eq!(empty, vec![0, 0, 0]);
    }

    #[test]
    fn class_assignment_is_seeded_and_weighted() {
        let a = assign_classes(5, 1_000, &[0.4, 0.3, 0.3]);
        let b = assign_classes(5, 1_000, &[0.4, 0.3, 0.3]);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c < 3));
        let n0 = a.iter().filter(|&&c| c == 0).count();
        assert!(
            (n0 as f64 - 400.0).abs() < 80.0,
            "class 0 near its 40% weight: {n0}"
        );
        // Zero-weight classes are never drawn.
        let none = assign_classes(6, 500, &[0.0, 1.0]);
        assert!(none.iter().all(|&c| c == 1));
    }
}
