//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary prints (a) the simulated/measured values and (b) the
//! paper's reference numbers where the paper states them, so
//! `EXPERIMENTS.md` can be assembled directly from the output.

pub mod workload;

use kt_hwsim::experiments::NamedSeries;
use kt_hwsim::{Segment, SegmentKind, SimResult};

/// Prints a titled section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints a simple fixed-width table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints x-indexed series side by side (one row per x value).
pub fn series_table(x_label: &str, series: &[NamedSeries], fmt: fn(f64) -> String) {
    let mut headers: Vec<&str> = vec![x_label];
    for s in series {
        headers.push(&s.name);
    }
    let n = series.first().map_or(0, |s| s.points.len());
    let mut rows = Vec::new();
    for i in 0..n {
        let mut row = vec![format!("{}", series[0].points[i].x)];
        for s in series {
            row.push(fmt(s.points[i].y));
        }
        rows.push(row);
    }
    table(&headers, &rows);
}

/// Renders an ASCII execution timeline (Figure 10-style) of a time
/// window: one row per resource, `#` for work, `.` for overhead, spaces
/// for idle.
pub fn render_timeline(
    result: &SimResult,
    resource_names: &[&str],
    t0: f64,
    t1: f64,
    width: usize,
) -> String {
    let mut out = String::new();
    let span = (t1 - t0).max(1e-12);
    let name_w = resource_names.iter().map(|n| n.len()).max().unwrap_or(4);
    for (r, name) in resource_names.iter().enumerate() {
        let mut row = vec![' '; width];
        for seg in result.timelines.get(r).map(Vec::as_slice).unwrap_or(&[]) {
            let Segment { start, end, kind, .. } = seg;
            if *end <= t0 || *start >= t1 {
                continue;
            }
            let a = (((start.max(t0) - t0) / span) * width as f64) as usize;
            let b = ((((end.min(t1)) - t0) / span) * width as f64).ceil() as usize;
            let ch = match kind {
                SegmentKind::Work => '#',
                SegmentKind::Overhead => '.',
            };
            for cell in row.iter_mut().take(b.min(width)).skip(a) {
                *cell = ch;
            }
        }
        out.push_str(&format!("{name:<name_w$} |"));
        out.extend(row);
        out.push_str("|
");
    }
    out.push_str(&format!(
        "{:<name_w$}  {}..{} ms ('#' work, '.' overhead)
",
        "",
        (t0 * 1e3).round(),
        (t1 * 1e3).round()
    ));
    out
}

/// Formats a throughput value.
pub fn tput(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_hwsim::experiments::SeriesPoint;

    #[test]
    fn formatting_helpers() {
        assert_eq!(tput(123.4), "123");
        assert_eq!(tput(4.678), "4.68");
        assert_eq!(pct(-0.5), "-0.5%");
        assert_eq!(pct(12.0), "+12.0%");
    }

    #[test]
    fn timeline_renders_work_and_overhead() {
        use kt_hwsim::{Sim, TaskSpec};
        let mut sim = Sim::new(2);
        let a = sim.push(TaskSpec::overhead(0, 0.5, vec![], "launch")).unwrap();
        sim.push(TaskSpec::work(0, 0.5, vec![a], "kernel")).unwrap();
        sim.push(TaskSpec::work(1, 1.0, vec![], "cpu")).unwrap();
        let r = sim.run();
        let s = render_timeline(&r, &["GPU", "CPU"], 0.0, 1.0, 20);
        assert!(s.contains("GPU"));
        assert!(s.contains('#'));
        assert!(s.contains('.'));
        // CPU row is fully busy: 20 '#' cells.
        let cpu_line = s.lines().nth(1).unwrap();
        assert_eq!(cpu_line.matches('#').count(), 20);
    }

    #[test]
    fn tables_print_without_panicking() {
        section("demo");
        table(
            &["a", "b"],
            &[vec!["1".into(), "very-long-cell".into()]],
        );
        series_table(
            "x",
            &[NamedSeries {
                name: "s".into(),
                points: vec![SeriesPoint { x: 1.0, y: 2.0 }],
            }],
            tput,
        );
    }
}
