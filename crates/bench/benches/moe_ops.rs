//! Criterion benchmarks of the fused MoE operator: scheduling policy,
//! decode vs prefill shapes, and quantized experts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kt_kernels::dispatch::Backend;
use kt_kernels::moe::{FusedMoE, MoeRouting};
use kt_kernels::schedule::{SchedulePolicy, ThreadPool};
use kt_tensor::rng::seeded;
use kt_tensor::{Matrix, WeightDtype};
use rand::Rng;

fn routing(n_tokens: usize, n_experts: usize, k: usize, seed: u64) -> MoeRouting {
    let mut rng = seeded(seed);
    MoeRouting::new(
        (0..n_tokens)
            .map(|_| {
                let mut picks: Vec<usize> = (0..n_experts).collect();
                for i in (1..picks.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    picks.swap(i, j);
                }
                picks[..k].iter().map(|&e| (e, 0.5f32)).collect()
            })
            .collect(),
    )
}

fn bench_moe_phases(c: &mut Criterion) {
    let mut rng = seeded(3);
    let hidden = 128;
    let inter = 128;
    let moe = FusedMoE::random(16, hidden, inter, WeightDtype::F32, Backend::HybridAmxAvx512, &mut rng)
        .unwrap();
    let pool = ThreadPool::new(2).unwrap();
    let mut group = c.benchmark_group("fused_moe");
    // Decode shape: 1 token, top-8.
    let decode_r = routing(1, 16, 8, 4);
    let decode_x = Matrix::random_uniform(1, hidden, 1.0, &mut rng).unwrap();
    group.bench_function("decode_top8", |b| {
        b.iter(|| {
            moe.forward(&decode_x, &decode_r, Some(&pool), SchedulePolicy::Dynamic)
                .unwrap()
        });
    });
    // Prefill shape: 32 tokens.
    let prefill_r = routing(32, 16, 8, 5);
    let prefill_x = Matrix::random_uniform(32, hidden, 1.0, &mut rng).unwrap();
    for policy in [SchedulePolicy::Static, SchedulePolicy::Dynamic] {
        group.bench_with_input(
            BenchmarkId::new("prefill32", format!("{policy:?}")),
            &policy,
            |b, &p| {
                b.iter(|| moe.forward(&prefill_x, &prefill_r, Some(&pool), p).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_quantized_moe(c: &mut Criterion) {
    let mut rng = seeded(6);
    let hidden = 128;
    let inter = 128;
    let mut group = c.benchmark_group("moe_dtype_decode");
    for (name, dt) in [
        ("f32", WeightDtype::F32),
        ("int8", WeightDtype::Int8 { group: 64 }),
        ("int4", WeightDtype::Int4 { group: 64 }),
    ] {
        let moe =
            FusedMoE::random(8, hidden, inter, dt, Backend::HybridAmxAvx512, &mut rng).unwrap();
        let r = routing(1, 8, 4, 7);
        let x = Matrix::random_uniform(1, hidden, 1.0, &mut rng).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| moe.forward(&x, &r, None, SchedulePolicy::Dynamic).unwrap());
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    // Shared-counter dynamic queue vs work-stealing deques on a skewed
    // task set (the §3.2 scheduling design space).
    use kt_kernels::{run_stealing, ThreadPool};
    use std::sync::atomic::{AtomicU64, Ordering};
    let n_tasks = 256;
    let cost = |i: usize| if i.is_multiple_of(16) { 40u64 } else { 4 };
    let work = |i: usize| {
        let mut acc = 0u64;
        for _ in 0..cost(i) * 100 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(acc);
    };
    let mut group = c.benchmark_group("schedulers_skewed");
    let pool = ThreadPool::new(4).unwrap();
    group.bench_function("dynamic_counter_queue", |b| {
        b.iter(|| {
            let done = AtomicU64::new(0);
            pool.run_dynamic(n_tasks, |i| {
                work(i);
                done.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(done.load(Ordering::Relaxed), n_tasks as u64);
        });
    });
    group.bench_function("work_stealing_deques", |b| {
        b.iter(|| {
            let done = AtomicU64::new(0);
            run_stealing(4, n_tasks, |i| i % 4, |i| {
                work(i);
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert_eq!(done.load(Ordering::Relaxed), n_tasks as u64);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_moe_phases, bench_quantized_moe, bench_schedulers);
criterion_main!(benches);
