//! Criterion benchmarks of the hybrid engine decode path: per-op
//! launches vs single-graph replay, with and without Expert Deferral.

use criterion::{criterion_group, criterion_main, Criterion};
use kt_core::{EngineConfig, HybridEngine, SchedMode, VgpuConfig};
use kt_model::ModelPreset;
use std::time::Duration;

fn engine(mode: SchedMode, n_deferred: usize, launch_us: u64) -> HybridEngine {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 2,
            mode,
            n_deferred,
            vgpu: VgpuConfig {
                launch_latency: Duration::from_micros(launch_us),
                graph_launch_latency: Duration::from_micros(launch_us),
                n_streams: 1,
            },
            seed: 1,
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_decode_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_decode");
    group.sample_size(10);
    for (name, mode, launch_us) in [
        ("sync_16us_launch", SchedMode::Sync, 16),
        ("graph_16us_launch", SchedMode::AsyncGraph, 16),
    ] {
        let e = engine(mode, 0, launch_us);
        let _ = e.forward(&[1, 2, 3]).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| e.forward(&[7]).unwrap());
        });
    }
    group.finish();
}

fn bench_deferral(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_deferral");
    group.sample_size(10);
    for (name, n_def) in [("defer0", 0usize), ("defer3", 3)] {
        let e = engine(SchedMode::AsyncGraph, n_def, 0);
        let _ = e.forward(&[1, 2, 3]).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| e.forward(&[7]).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decode_modes, bench_deferral);
criterion_main!(benches);
