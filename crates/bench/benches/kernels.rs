//! Criterion microbenchmarks of the real CPU kernels: the Figure 3/7
//! analog on this host — tiled ("AMX-class") vs vector ("AVX-512
//! class") kernels across arithmetic intensity and weight dtype.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kt_kernels::gemm::{gemm_tiled, gemv_vector};
use kt_tensor::rng::seeded;
use kt_tensor::{Matrix, PackedWeights, WeightDtype};

fn bench_ari_sweep(c: &mut Criterion) {
    // One "expert" projection: n x k weights, m tokens (the ARI axis).
    let n = 256;
    let k = 256;
    let mut rng = seeded(1);
    let wmat = Matrix::random_uniform(n, k, 1.0, &mut rng).unwrap();
    let w = PackedWeights::pack(&wmat, WeightDtype::F32).unwrap();

    let mut group = c.benchmark_group("ari_sweep_f32");
    for m in [1usize, 2, 4, 8, 16, 64] {
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng).unwrap();
        group.throughput(Throughput::Elements((2 * m * n * k) as u64));
        group.bench_with_input(BenchmarkId::new("tiled", m), &m, |b, _| {
            let mut out = Matrix::zeros(m, n).unwrap();
            b.iter(|| gemm_tiled(&a, &w, &mut out, None).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("vector", m), &m, |b, _| {
            let mut out = Matrix::zeros(m, n).unwrap();
            b.iter(|| {
                for i in 0..m {
                    let cols = out.cols();
                    let row = &mut out.as_mut_slice()[i * cols..(i + 1) * cols];
                    gemv_vector(a.row(i), &w, row, None).unwrap();
                }
            });
        });
    }
    group.finish();
}

fn bench_dtypes(c: &mut Criterion) {
    let n = 256;
    let k = 256;
    let m = 16;
    let mut rng = seeded(2);
    let wmat = Matrix::random_uniform(n, k, 1.0, &mut rng).unwrap();
    let a = Matrix::random_uniform(m, k, 1.0, &mut rng).unwrap();
    let mut group = c.benchmark_group("gemm_dtype");
    group.throughput(Throughput::Elements((2 * m * n * k) as u64));
    for (name, dt) in [
        ("f32", WeightDtype::F32),
        ("bf16", WeightDtype::Bf16),
        ("int8", WeightDtype::Int8 { group: 64 }),
        ("int4", WeightDtype::Int4 { group: 64 }),
    ] {
        let w = PackedWeights::pack(&wmat, dt).unwrap();
        group.bench_function(name, |b| {
            let mut out = Matrix::zeros(m, n).unwrap();
            b.iter(|| gemm_tiled(&a, &w, &mut out, None).unwrap());
        });
    }
    group.finish();
}

fn bench_simd_levels(c: &mut Criterion) {
    // Scalar vs AVX2 vs AVX-512 microkernels on one staged panel block
    // (skipping levels the host lacks).
    use kt_kernels::simd::{microkernel_scalar, simd_level, SimdLevel};
    use kt_tensor::NR;
    let kb = 256;
    let mut rng = seeded(9);
    let mut staged = vec![0.0f32; kb * NR];
    kt_tensor::rng::fill_uniform(&mut rng, &mut staged, 1.0);
    let mut rows = vec![vec![0.0f32; kb]; 4];
    for r in &mut rows {
        kt_tensor::rng::fill_uniform(&mut rng, r, 1.0);
    }
    let a: [&[f32]; 4] = std::array::from_fn(|i| rows[i].as_slice());
    let mut group = c.benchmark_group("simd_microkernel_m4_k256");
    group.throughput(Throughput::Elements((2 * 4 * kb * NR) as u64));
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = [[0.0f32; NR]; 4];
            microkernel_scalar::<4>(a, &staged, kb, &mut acc);
            std::hint::black_box(acc);
        });
    });
    #[cfg(target_arch = "x86_64")]
    {
        if simd_level() >= SimdLevel::Avx2Fma {
            group.bench_function("avx2_fma", |b| {
                b.iter(|| {
                    let mut acc = [[0.0f32; NR]; 4];
                    // SAFETY: level checked above.
                    unsafe {
                        kt_kernels::simd::microkernel_avx2::<4>(a, &staged, kb, &mut acc)
                    };
                    std::hint::black_box(acc);
                });
            });
        }
        if simd_level() >= SimdLevel::Avx512 {
            group.bench_function("avx512", |b| {
                b.iter(|| {
                    let mut acc = [[0.0f32; NR]; 4];
                    // SAFETY: level checked above.
                    unsafe {
                        kt_kernels::simd::microkernel_avx512::<4>(a, &staged, kb, &mut acc)
                    };
                    std::hint::black_box(acc);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ari_sweep, bench_dtypes, bench_simd_levels);
criterion_main!(benches);
