//! The serving layer's determinism contract: N requests decoded
//! concurrently through the continuous-batching scheduler emit
//! token-for-token what N sequential `generate_greedy` calls emit —
//! with Expert Deferral enabled, so per-row deferral gating is
//! exercised under a mixed, shifting batch.

use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_kernels::dispatch::Backend;
use kt_model::ModelPreset;
use kt_serve::{Request, Server, ServerConfig};
use std::sync::Arc;

fn engine(seed: u64) -> HybridEngine {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 2,
            mode: SchedMode::AsyncGraph,
            // Expert Deferral ON: deferral must stay per-sequence
            // under batching.
            n_deferred: 2,
            // A single kernel class makes expert GEMMs invariant to
            // how many tokens share a bucket, so batched == sequential
            // exactly (the default hybrid dispatch is only
            // tolerance-level equal across batch sizes).
            backend: Backend::TiledOnly,
            seed,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn concurrent_batching_matches_sequential_greedy_exactly() {
    let prompts: Vec<Vec<u32>> = vec![
        vec![1, 2, 3],
        vec![9, 8, 7, 6],
        vec![42],
        vec![5, 5, 5, 5, 5],
        vec![200, 100],
        vec![17, 34, 51],
    ];
    let n_new = 8;

    // Sequential reference: one conversation at a time on a private
    // engine with the same weights (same seed).
    let reference: Vec<Vec<u32>> = {
        let e = engine(7);
        prompts
            .iter()
            .map(|p| {
                e.reset();
                e.generate_greedy(p, n_new).unwrap()
            })
            .collect()
    };

    // Concurrent: all six submitted up front, batch width 4, so the
    // scheduler mixes prefill and decode and churns membership as
    // requests finish and queued ones are admitted. Run once with
    // monolithic prefill and once with a tiny chunk size: the token
    // streams must match the sequential reference exactly either way.
    for (label, cfg) in [
        (
            "monolithic",
            ServerConfig {
                max_batch: 4,
                prefill_chunk: 64,
                step_token_budget: 64,
                ..Default::default()
            },
        ),
        (
            "chunked",
            ServerConfig {
                max_batch: 4,
                prefill_chunk: 2,
                step_token_budget: 6,
                ..Default::default()
            },
        ),
    ] {
        let server = Server::start(Arc::new(engine(7)), cfg).unwrap();
        let handles: Vec<_> = prompts
            .iter()
            .map(|p| server.submit(Request::greedy(p, n_new)))
            .collect();
        let results: Vec<_> = handles.iter().map(|h| h.wait()).collect();

        for (i, (result, expect)) in results.iter().zip(&reference).enumerate() {
            assert!(
                result.is_completed(),
                "{label} request {i}: {:?}",
                result.outcome
            );
            assert_eq!(
                &result.tokens, expect,
                "{label} request {i} diverged from its sequential reference"
            );
        }

        let stats = server.stats();
        assert_eq!(stats.completed, prompts.len() as u64);
        assert_eq!(stats.tokens_generated, (prompts.len() * n_new) as u64);
        // The six requests really ran concurrently, not back to back.
        assert!(
            stats.mean_occupancy() >= 2.0,
            "{label}: expected real batching, got mean occupancy {}",
            stats.mean_occupancy()
        );
        server.shutdown();
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    // The whole serving pipeline is deterministic for greedy requests:
    // two separate server instances over identical weights produce
    // identical streams, whatever the admission interleaving.
    let prompts: Vec<Vec<u32>> = (0..5).map(|i| vec![i * 11 + 1, i + 2]).collect();
    let run = || -> Vec<Vec<u32>> {
        let server = Server::start(
            Arc::new(engine(23)),
            ServerConfig {
                max_batch: 3,
                prefill_chunk: 2,
                step_token_budget: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let handles: Vec<_> = prompts
            .iter()
            .map(|p| server.submit(Request::greedy(p, 6)))
            .collect();
        let out = handles.iter().map(|h| h.wait().tokens).collect();
        server.shutdown();
        out
    };
    assert_eq!(run(), run());
}
