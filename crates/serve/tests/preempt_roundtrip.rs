//! Preemption is pure scheduling: a server forced into page-pressure
//! preemption — swap, recompute, or the cost model's per-victim choice
//! — must emit token streams bitwise identical to an unpressured run,
//! complete every request, and hand every page back to the allocator.
//!
//! The pressured pool is sized just above the largest single request,
//! so concurrent growth overflows it quickly and sequences bounce
//! through preempt/resume round trips (including nested ones: a
//! resumed victim is the newest admission, hence the next victim).

use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_kernels::dispatch::Backend;
use kt_model::ModelPreset;
use kt_serve::{PreemptPolicy, Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_NEW: usize = 8;
const PAGE_ROWS: usize = 4;

fn engine(seed: u64) -> HybridEngine {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 2,
            mode: SchedMode::AsyncGraph,
            n_deferred: 2,
            // Batch-size-invariant expert GEMMs, so streams compare
            // exactly across different batching histories (same choice
            // as the equivalence suite).
            backend: Backend::TiledOnly,
            seed,
            ..Default::default()
        },
    )
    .unwrap()
}

fn prompts() -> Vec<Vec<u32>> {
    // Mixed lengths: long prompts create the pressure, short ones
    // keep admission interleaving (and victim churn) nontrivial.
    vec![
        (0..12).map(|j| (j * 7 + 3) as u32).collect(),
        vec![9, 8, 7, 6, 5, 4],
        (0..10).map(|j| (j * 13 + 1) as u32).collect(),
        vec![42, 41, 40, 39, 38, 37, 36, 35],
        vec![200, 100, 50, 25],
        (0..11).map(|j| (j * 5 + 2) as u32).collect(),
    ]
}

fn run(cfg: ServerConfig) -> (Vec<Vec<u32>>, kt_core::ServeStats) {
    let server = Server::start(Arc::new(engine(7)), cfg).unwrap();
    let handles: Vec<_> = prompts()
        .iter()
        .map(|p| server.submit(Request::greedy(p, N_NEW)))
        .collect();
    let results: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_completed(), "request {i}: {:?}", r.outcome);
    }
    // Resolution races lease release by a hair; wait for the scheduler
    // to fully drain before snapshotting page gauges.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active() != 0 || server.queued() != 0 {
        assert!(Instant::now() < deadline, "scheduler failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.stats();
    server.shutdown();
    (results.into_iter().map(|r| r.tokens).collect(), stats)
}

#[test]
fn preempted_streams_match_unpressured_run_bitwise() {
    let model = ModelPreset::DeepSeekV3.tiny_config();
    let longest = prompts().iter().map(Vec::len).max().unwrap() + N_NEW;
    // Just above one full-length sequence: any two concurrent growers
    // must collide and trigger preemption.
    let pool_pages = model.n_layers * longest.div_ceil(PAGE_ROWS) + 1;

    let base = ServerConfig {
        max_batch: 3,
        prefill_chunk: 4,
        step_token_budget: 8,
        // No prefix retention: at drain, every page must be free.
        prefix_cache_bytes: 0,
        ..Default::default()
    };

    // Reference: auto-sized pool (max_batch full-capacity sequences)
    // never comes under pressure.
    let (reference, ref_stats) = run(base.clone());
    assert_eq!(ref_stats.preempt_swap + ref_stats.preempt_recompute, 0);

    for policy in [
        PreemptPolicy::AlwaysSwap,
        PreemptPolicy::AlwaysRecompute,
        PreemptPolicy::Auto,
    ] {
        let (tokens, stats) = run(ServerConfig {
            page_rows: PAGE_ROWS,
            kv_pool_pages: pool_pages,
            preempt_policy: policy,
            ..base.clone()
        });
        assert_eq!(
            tokens, reference,
            "{policy:?}: preemption changed the token streams"
        );
        let preemptions = stats.preempt_swap + stats.preempt_recompute;
        assert!(preemptions > 0, "{policy:?}: pool never came under pressure");
        match policy {
            PreemptPolicy::AlwaysSwap => assert_eq!(stats.preempt_recompute, 0),
            PreemptPolicy::AlwaysRecompute => assert_eq!(stats.preempt_swap, 0),
            PreemptPolicy::Auto => {}
        }
        // Every page handed back, nothing stranded in the host tier.
        assert_eq!(stats.kv_pages_total, pool_pages as u64, "{policy:?}");
        assert_eq!(stats.kv_pages_free, stats.kv_pages_total, "{policy:?}");
        assert_eq!(stats.kv_pages_swapped, 0, "{policy:?}");
        assert_eq!(stats.kv_pages_shared, 0, "{policy:?}");
    }
}

#[test]
fn warm_prefix_resume_still_deduplicates_recompute() {
    // A recompute victim whose prompt is in the prefix cache resumes by
    // seeding shared pages, then re-prefilling only the generated
    // suffix — the round trip must stay bitwise faithful with sharing
    // in play (CoW on the divergent tail page).
    let model = ModelPreset::DeepSeekV3.tiny_config();
    let longest = prompts().iter().map(Vec::len).max().unwrap() + N_NEW;
    let pool_pages = 2 * model.n_layers * longest.div_ceil(PAGE_ROWS);

    let base = ServerConfig {
        max_batch: 3,
        prefill_chunk: 4,
        step_token_budget: 8,
        min_prefix_len: 4,
        ..Default::default()
    };
    let (reference, _) = run(base.clone());
    let (tokens, stats) = run(ServerConfig {
        page_rows: PAGE_ROWS,
        kv_pool_pages: pool_pages,
        preempt_policy: PreemptPolicy::AlwaysRecompute,
        ..base
    });
    assert_eq!(tokens, reference, "prefix-seeded resume diverged");
    assert!(stats.preempt_recompute > 0, "pool never came under pressure");
}
