//! Golden conformance test for the Prometheus text exposition.
//!
//! Parses the entire `Server::stats_text()` output back, line by line,
//! and checks the exposition-format invariants the [`kt_serve`]
//! metrics helpers promise:
//!
//! * every family has exactly one `# HELP` and one `# TYPE` line,
//!   HELP immediately followed by TYPE, both before any sample;
//! * every metric and label name matches `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * every sample belongs to a declared family — bare name for
//!   counters/gauges, `_bucket`/`_sum`/`_count` suffixes for
//!   histograms — and every value parses as a finite float;
//! * label values are properly quoted (escapes consumed), and
//!   histogram `_bucket` series close with an `le="+Inf"` bucket
//!   whose count equals the series' `_count`;
//! * OpenMetrics-style exemplar suffixes (` # {label="v"} value`)
//!   appear only on `_bucket` lines of histogram families.
//!
//! Runs in its own test binary: it enables tracing so the
//! `kt_latency_component_seconds` family (with exemplars) is
//! populated, and the trace sink is process-global.

use kt_core::{EngineConfig, HybridEngine};
use kt_model::ModelPreset;
use kt_serve::{Request, Server, ServerConfig, SloPolicy, SloTarget};
use std::collections::HashMap;
use std::sync::Arc;

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits one sample line into (name, labels, value), consuming a
/// trailing exemplar if present. Panics (failing the test) on any
/// malformed piece.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    exemplar: bool,
}

fn parse_sample(line: &str) -> Sample {
    let (series, rest) = match line.find('{') {
        Some(open) => {
            let close = scan_label_block(line, open);
            (&line[..close + 1], &line[close + 1..])
        }
        None => {
            let sp = line.find(' ').expect("sample has a value");
            (&line[..sp], &line[sp..])
        }
    };
    let (name, labels) = match series.find('{') {
        Some(open) => {
            assert!(series.ends_with('}'), "label block closes: {line}");
            (&series[..open], parse_labels(&series[open + 1..series.len() - 1], line))
        }
        None => (series, Vec::new()),
    };
    let rest = rest.trim_start();
    // `value [# {labels} exemplar_value]`
    let (value_str, exemplar) = match rest.split_once(" # ") {
        Some((v, ex)) => {
            let (exl, exv) = ex.split_once("} ").expect("exemplar closes: {line}");
            assert!(exl.starts_with('{'), "exemplar labels braced: {line}");
            parse_labels(&exl[1..], line);
            let exv: f64 = exv.trim().parse().expect("exemplar value parses");
            assert!(exv.is_finite());
            (v, true)
        }
        None => (rest, false),
    };
    let value: f64 = value_str.trim().parse().unwrap_or_else(|_| {
        panic!("value {value_str:?} parses in: {line}");
    });
    assert!(value.is_finite(), "finite value in: {line}");
    Sample {
        name: name.to_string(),
        labels,
        value,
        exemplar,
    }
}

/// Returns the index of the `}` closing the label block opened at
/// `open`, honoring quoted (and escaped) label values.
fn scan_label_block(line: &str, open: usize) -> usize {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open + 1) {
        match b {
            _ if escaped => escaped = false,
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return i,
            _ => {}
        }
    }
    panic!("unterminated label block: {line}");
}

fn parse_labels(block: &str, line: &str) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find("=\"").unwrap_or_else(|| panic!("label has =\" in: {line}"));
        let name = &rest[..eq];
        assert!(valid_name(name), "label name {name:?} valid in: {line}");
        // Find the closing quote, skipping escapes.
        let bytes = rest.as_bytes();
        let mut end = None;
        let mut escaped = false;
        for (i, &b) in bytes.iter().enumerate().skip(eq + 2) {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.unwrap_or_else(|| panic!("label value closes in: {line}"));
        let value = &rest[eq + 2..end];
        assert!(!value.contains('\n'), "raw newline in label value: {line}");
        labels.push((name.to_string(), value.to_string()));
        rest = rest[end + 1..].trim_start_matches(',');
    }
    labels
}

#[test]
fn stats_text_conforms_to_the_exposition_format() {
    kt_trace::enable();
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                backend: kt_kernels::dispatch::Backend::TiledOnly,
                seed: 44,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    // A policy with 1 ns targets guarantees violations, populating the
    // SLO counters and freezing traces so the exemplar-bearing
    // component histograms are non-empty.
    let policy = SloPolicy {
        targets: [SloTarget { ttft_ns: 1, itl_ns: 1 }; 3],
        shed: false,
    };
    let server = Server::start(
        engine,
        ServerConfig {
            max_batch: 2,
            slo: Some(policy),
            ..Default::default()
        },
    )
    .unwrap();
    for i in 0..3u32 {
        assert!(server
            .submit(Request::greedy(&[i + 1, 2 * i + 5, 3], 5))
            .wait()
            .is_completed());
    }
    let text = server.stats_text();
    server.shutdown();

    let mut help: HashMap<String, usize> = HashMap::new();
    let mut kind: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut last_meta: Option<(String, &str)> = None;
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, doc) = rest.split_once(' ').expect("HELP has text");
            assert!(valid_name(name), "family name {name:?}");
            assert!(!doc.is_empty(), "HELP text non-empty for {name}");
            *help.entry(name.to_string()).or_default() += 1;
            last_meta = Some((name.to_string(), "help"));
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, k) = rest.split_once(' ').expect("TYPE has a kind");
            assert!(
                matches!(k, "counter" | "gauge" | "histogram"),
                "known kind {k:?} for {name}"
            );
            // TYPE directly follows its own HELP: the pair is atomic.
            assert_eq!(
                last_meta,
                Some((name.to_string(), "help")),
                "TYPE for {name} must immediately follow its HELP"
            );
            let prev = kind.insert(name.to_string(), k.to_string());
            assert!(prev.is_none(), "exactly one TYPE for {name}");
            last_meta = Some((name.to_string(), "type"));
        } else {
            assert!(!line.starts_with('#'), "only HELP/TYPE comments: {line}");
            samples.push(parse_sample(line));
            last_meta = None;
        }
    }
    for (name, n) in &help {
        assert_eq!(*n, 1, "exactly one HELP for {name}");
        assert!(kind.contains_key(name), "{name} has a TYPE");
    }

    // Every sample resolves to a declared family with the right
    // suffix discipline, and exemplars only ride on histogram buckets.
    let mut seen: HashMap<String, u64> = HashMap::new();
    for s in &samples {
        assert!(valid_name(&s.name), "sample name {:?}", s.name);
        let family = if let Some(base) = s
            .name
            .strip_suffix("_bucket")
            .or_else(|| s.name.strip_suffix("_sum"))
            .or_else(|| s.name.strip_suffix("_count"))
            .filter(|base| kind.get(*base).is_some_and(|k| k == "histogram"))
        {
            base
        } else {
            s.name.as_str()
        };
        let k = kind
            .get(family)
            .unwrap_or_else(|| panic!("sample {} has a declared family", s.name));
        if family == s.name.as_str() {
            assert_ne!(k, "histogram", "histogram families only emit suffixed samples: {}", s.name);
        }
        if s.exemplar {
            assert!(
                s.name.ends_with("_bucket"),
                "exemplar outside a bucket line: {}",
                s.name
            );
        }
        if s.name.ends_with("_bucket") && k == "histogram" {
            let series_key: String = format!(
                "{family}|{}",
                s.labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .expect("bucket has le");
            // Cumulative: counts never decrease along a series.
            let prev = seen.entry(series_key.clone()).or_insert(0);
            assert!(s.value as u64 >= *prev, "cumulative buckets for {series_key}");
            *prev = s.value as u64;
            if le == "+Inf" {
                seen.insert(format!("{series_key}|inf"), s.value as u64);
            }
        }
    }
    // Every histogram series closed with +Inf and its _count agrees.
    for s in &samples {
        if let Some(base) = s.name.strip_suffix("_count") {
            if kind.get(base).is_some_and(|k| k == "histogram") {
                let series_key = format!(
                    "{base}|{}",
                    s.labels
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(",")
                );
                let inf = seen
                    .get(&format!("{series_key}|inf"))
                    .unwrap_or_else(|| panic!("+Inf bucket present for {series_key}"));
                assert_eq!(*inf, s.value as u64, "+Inf equals _count for {series_key}");
            }
        }
    }

    // The families this PR added are present and correctly typed.
    assert_eq!(kind.get("kt_build_info").map(String::as_str), Some("gauge"));
    assert_eq!(
        kind.get("kt_latency_component_seconds").map(String::as_str),
        Some("histogram")
    );
    assert!(
        samples.iter().any(|s| s.exemplar),
        "component histograms carry at least one exemplar"
    );
    let build = samples
        .iter()
        .find(|s| s.name == "kt_build_info")
        .expect("build info sample");
    assert_eq!(build.value, 1.0);
    for label in ["version", "git_hash", "simd", "placement"] {
        assert!(
            build.labels.iter().any(|(k, v)| k == label && !v.is_empty()),
            "kt_build_info carries {label}: {:?}",
            build.labels
        );
    }

    // Paged-KV families: the four page gauges and the preemption
    // counter. Both preempt modes are always exported (zero-valued
    // when the pool never came under pressure) so dashboards can rate()
    // them without series appearing mid-flight.
    for g in [
        "kt_kv_pages_total",
        "kt_kv_pages_free",
        "kt_kv_pages_shared",
        "kt_kv_pages_swapped",
    ] {
        assert_eq!(kind.get(g).map(String::as_str), Some("gauge"), "{g}");
        assert!(samples.iter().any(|s| s.name == g), "{g} sample present");
    }
    assert_eq!(
        kind.get("kt_preempt_total").map(String::as_str),
        Some("counter")
    );
    for mode in ["swap", "recompute"] {
        assert!(
            samples.iter().any(|s| s.name == "kt_preempt_total"
                && s.labels.iter().any(|(k, v)| k == "mode" && v == mode)),
            "kt_preempt_total carries mode={mode}"
        );
    }
}
