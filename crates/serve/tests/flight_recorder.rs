//! End-to-end acceptance test for the tentpole: an induced
//! SLO-violating request is captured by the flight recorder
//! automatically, its exported waterfall carries queue/prefill/expert/
//! merge spans labeled with its request id, and its latency breakdown
//! components sum to the measured end-to-end time within tolerance.
//!
//! Lives in its own integration-test binary, as one sequential test:
//! enabling the global trace sink and differencing the global phase
//! table are process-wide, so a concurrently serving second server
//! would pollute the attribution deltas.

use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_model::ModelPreset;
use kt_serve::{Component, Request, Server, ServerConfig, SloClass, SloPolicy, SloTarget};
use std::sync::Arc;

fn engine(seed: u64) -> Arc<HybridEngine> {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                backend: kt_kernels::dispatch::Backend::TiledOnly,
                seed,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

#[test]
fn violating_requests_are_captured_with_attributed_waterfalls() {
    kt_trace::enable();
    // 1 ns targets no real request can meet, with shedding off: every
    // request is served, completes, violates, and must end up frozen
    // in the flight recorder without any manual capture step.
    let policy = SloPolicy {
        targets: [SloTarget { ttft_ns: 1, itl_ns: 1 }; 3],
        shed: false,
    };
    let server = Server::start(
        engine(33),
        ServerConfig {
            max_batch: 2,
            prefill_chunk: 8,
            step_token_budget: 16,
            slo: Some(policy),
            ..Default::default()
        },
    )
    .unwrap();

    // 24-token prompts prefill across 3 chunks; 6 generated tokens add
    // decode steps — both step flavors appear in each waterfall.
    let prompts: Vec<Vec<u32>> = (0..3u32)
        .map(|i| (0..24).map(|t| (t * 7 + i + 1) % 250).collect())
        .collect();
    let handles: Vec<_> = prompts
        .iter()
        .map(|p| server.submit(Request::greedy(p, 6).with_class(SloClass::Interactive)))
        .collect();
    let ids: Vec<u64> = handles.iter().map(|h| h.id()).collect();
    for (h, &id) in handles.iter().zip(&ids) {
        let r = h.wait();
        assert!(r.is_completed(), "{:?}", r.outcome);
        assert_eq!(r.request_id, id, "result carries the handle's id");
        assert!(id >= 1, "ids start at 1");
    }

    // Every request violated its 1 ns TTFT target, so the recorder
    // froze all of them.
    let captured = server.captured_request_ids();
    for &id in &ids {
        assert!(captured.contains(&id), "request {id} frozen: {captured:?}");
    }

    for &id in &ids {
        let b = server.breakdown(id).expect("breakdown retained");
        assert_eq!(b.request_id, id);
        assert_eq!(b.tokens, 6);
        assert_eq!(b.prefill_steps, 3, "24 tokens / chunks of 8");
        assert_eq!(b.decode_steps, 5, "first token samples on the last chunk");
        assert!(b.component_ns(Component::PrefillChunk) > 0);
        assert!(b.component_ns(Component::Attention) > 0, "{b:?}");
        assert!(
            b.component_ns(Component::CpuExpert) + b.component_ns(Component::GpuExpert) > 0,
            "expert time attributed: {b:?}"
        );
        assert!(b.component_ns(Component::Merge) > 0, "{b:?}");
        // THE attribution invariant: components sum to the measured
        // queue wait + TTFT + decode time within tolerance. Below 1
        // only through unattributed inter-step scheduler gaps, above
        // only through clock-read jitter at step boundaries.
        let coverage = b.coverage();
        assert!(
            (0.75..=1.05).contains(&coverage),
            "coverage {coverage} out of tolerance: {b:?}"
        );
    }

    // The frozen waterfall exports as a per-request Perfetto track
    // group: queue wait, prefill chunks, expert + merge component
    // spans, every event labeled with the request id.
    let id = ids[0];
    let json = server.export_request_trace(id).expect("export retained");
    for name in [
        "queue_wait",
        "prefill_chunk",
        "attention",
        "merge",
        "request.step",
        "request.first_token",
    ] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "missing {name} span in:\n{json}"
        );
    }
    assert!(
        json.contains("\"name\":\"cpu_expert\"") || json.contains("\"name\":\"gpu_expert\""),
        "expert span present:\n{json}"
    );
    let id_label = format!("\"request_id\":{id}");
    let spans = json.lines().filter(|l| l.contains("\"ph\":\"X\"")).count();
    let with_id = json
        .lines()
        .filter(|l| l.contains("\"ph\":\"X\"") && l.contains(&id_label))
        .count();
    assert!(spans > 0 && spans == with_id, "every span carries the id");
    assert!(json.contains("SLO-VIOLATED"), "track name flags the violation");
    assert!(
        json.contains(&format!("\"tid\":{}", kt_trace::REQUEST_TRACK_BASE + id as u32)),
        "request renders on its reserved track"
    );
    // The combined captured export holds all frozen waterfalls.
    let all = server.export_captured_traces();
    for &id in &ids {
        assert!(all.contains(&format!("\"request_id\":{id}")));
    }

    // The component histograms surfaced in the exposition, with the
    // worst request ids attached to buckets as exemplars, and the
    // build-info gauge identifies the replica.
    let text = server.stats_text();
    assert!(
        text.contains("# TYPE kt_latency_component_seconds histogram"),
        "{text}"
    );
    for c in ["queue_wait", "attention", "other"] {
        assert!(
            text.contains(&format!(
                "kt_latency_component_seconds_bucket{{component=\"{c}\",le="
            )),
            "component {c} missing in:\n{text}"
        );
    }
    assert!(text.contains("# {request_id=\""), "bucket exemplars attached:\n{text}");
    assert!(text.contains("kt_build_info{version=\""), "{text}");
    assert!(text.contains("git_hash=\""), "{text}");
    assert!(text.contains("simd=\""), "{text}");
    assert!(text.contains("placement=\"static\""), "{text}");
    server.shutdown();

    // Second phase, same process (the trace sink stays enabled): with
    // no SLO policy nothing can violate, so nothing freezes — but
    // completions still circulate through the recent ring with full
    // breakdowns.
    let server = Server::start(
        engine(34),
        ServerConfig {
            max_batch: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let h = server.submit(Request::greedy(&[1, 2, 3, 4], 4));
    let id = h.id();
    assert!(h.wait().is_completed());
    assert!(server.captured_request_ids().is_empty(), "nothing froze");
    let b = server.breakdown(id).expect("recent ring retains it");
    assert!(b.measured_ttft_ns.is_some());
    assert!(!server.recent_breakdowns().is_empty(), "recent ring populated");
    assert!(server.export_request_trace(id).is_some());
    assert!(server.breakdown(id + 1000).is_none(), "unknown id");
    server.shutdown();
}
