//! End-to-end acceptance test for the tracing pipeline: run a real
//! serving workload with tracing enabled, export Chrome-trace JSON,
//! parse it back, and assert the §3.3 CPU/GPU overlap is *visible in
//! the artifact* — a CPU expert-execution span on a worker-thread
//! track overlapping a vGPU op span on a stream track.
//!
//! This test lives in its own integration-test binary on purpose:
//! enabling the global trace sink is process-wide, and no other test
//! in this process should observe tracing switched on.

use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_model::ModelPreset;
use kt_serve::{Request, Server, ServerConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// One `"ph":"X"` event parsed back out of the exported JSON.
#[derive(Debug, Clone)]
struct Ev {
    name: String,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
}

/// Extracts the string value of `"key":"..."` from a single-line JSON
/// object (the exporter writes one event per line, no nesting except
/// the flat `args` object).
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts a numeric field (integer or the exporter's `us.nnn`
/// microsecond form) as nanoseconds-scale integer: `"ts":1234.567`
/// parses to 1_234_567; `"tid":3` parses to 3.
fn num_field(line: &str, key: &str, scale_us: bool) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest: String = line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    match rest.split_once('.') {
        Some((us, frac)) => {
            assert!(scale_us, "unexpected fractional {key}");
            let us: u64 = us.parse().ok()?;
            let frac: u64 = frac.parse().ok()?;
            assert_eq!(rest.split_once('.').unwrap().1.len(), 3, "ns precision");
            Some(us * 1_000 + frac)
        }
        None => {
            let v: u64 = rest.parse().ok()?;
            Some(if scale_us { v * 1_000 } else { v })
        }
    }
}

fn parse_chrome(json: &str) -> (HashMap<u64, String>, Vec<Ev>, HashMap<String, u64>) {
    assert!(json.starts_with("[\n") && json.ends_with("\n]\n"), "JSON array format");
    let mut tracks = HashMap::new();
    let mut events = Vec::new();
    let mut counters = HashMap::new();
    for raw in json.lines() {
        let line = raw.trim_end_matches(',');
        if line.contains("\"ph\":\"M\"") {
            let tid = num_field(line, "tid", false).expect("metadata tid");
            let name = str_field(line, "name").expect("metadata name field");
            if name == "kt_counters" {
                // One flat args object of counter totals:
                // "args":{"prefix.lookups":3,...}. Slice out the inner
                // object and parse each "key":value pair.
                let open = line.find("\"args\":{").expect("metadata args") + "\"args\":{".len();
                let close = line[open..].find('}').expect("args closes") + open;
                for pair in line[open..close].split(',') {
                    let (k, v) = pair.split_once(':').expect("counter pair");
                    counters.insert(
                        k.trim_matches('"').to_string(),
                        v.parse().expect("counter value"),
                    );
                }
                continue;
            }
            assert_eq!(name, "thread_name");
            // The track's display name lives in args: {"name":"..."}.
            let args_at = line.find("\"args\"").expect("metadata args");
            let display = str_field(&line[args_at..], "name").expect("args.name");
            tracks.insert(tid, display);
        } else if line.contains("\"ph\":\"X\"") {
            let start_ns = num_field(line, "ts", true).expect("ts");
            let dur_ns = num_field(line, "dur", true).expect("dur");
            events.push(Ev {
                name: str_field(line, "name").expect("event name"),
                tid: num_field(line, "tid", false).expect("tid"),
                start_ns,
                end_ns: start_ns + dur_ns,
            });
        }
    }
    (tracks, events, counters)
}

fn overlaps(a: &Ev, b: &Ev) -> bool {
    a.start_ns < b.end_ns && b.start_ns < a.end_ns
}

#[test]
fn exported_trace_shows_cpu_expert_overlapping_gpu_stream() {
    kt_trace::enable();
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                backend: kt_kernels::dispatch::Backend::TiledOnly,
                seed: 21,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let server = Server::start(engine, ServerConfig {
        max_batch: 4,
        ..Default::default()
    })
    .unwrap();
    let handles: Vec<_> = (0..3)
        .map(|i| server.submit(Request::greedy(&[i + 1, 2 * i + 5, 3], 16)))
        .collect();
    for h in handles {
        assert!(h.wait().is_completed());
    }
    let stats_text = server.stats_text();
    server.shutdown();

    let json = kt_trace::sink().export_chrome();
    let (tracks, events, counters) = parse_chrome(&json);

    // Track layout: worker threads (engine device thread, CPU workers,
    // scheduler) plus one named track per vGPU stream.
    let cpu_tracks: Vec<u64> = tracks
        .iter()
        .filter(|(_, n)| n.starts_with("kt-cpu-"))
        .map(|(&t, _)| t)
        .collect();
    assert!(!cpu_tracks.is_empty(), "CPU worker tracks present: {tracks:?}");
    let stream_tracks: Vec<u64> = tracks
        .iter()
        .filter(|(_, n)| n.starts_with("vGPU stream "))
        .map(|(&t, _)| t)
        .collect();
    assert!(!stream_tracks.is_empty(), "stream tracks present: {tracks:?}");
    for &t in &stream_tracks {
        assert!(
            t >= u64::from(kt_trace::STREAM_TRACK_BASE),
            "stream tracks live in the reserved id range"
        );
    }

    // The decode path ran as a graph: replay markers on the stream.
    assert!(
        events.iter().any(|e| e.name == "vgpu.graph_replay"),
        "graph replays recorded"
    );
    // Engine phases and scheduler steps made it into the trace.
    for required in ["engine.step", "engine.attention", "serve.step", "vgpu.kernel"] {
        assert!(
            events.iter().any(|e| e.name == required),
            "span kind {required} present"
        );
    }

    // THE acceptance check: some CPU expert execution span (on a CPU
    // worker's track) overlaps some vGPU op span (on a stream track) —
    // the paper's CPU/GPU overlap, visible in the exported artifact.
    let cpu_spans: Vec<&Ev> = events
        .iter()
        .filter(|e| {
            (e.name == "cpu.expert_immediate" || e.name == "cpu.expert_deferred")
                && cpu_tracks.contains(&e.tid)
        })
        .collect();
    assert!(!cpu_spans.is_empty(), "CPU expert spans recorded");
    let gpu_spans: Vec<&Ev> = events
        .iter()
        .filter(|e| {
            (e.name == "vgpu.kernel" || e.name == "vgpu.host_func")
                && stream_tracks.contains(&e.tid)
        })
        .collect();
    assert!(!gpu_spans.is_empty(), "vGPU op spans recorded");
    assert!(
        cpu_spans
            .iter()
            .any(|c| gpu_spans.iter().any(|g| overlaps(c, g))),
        "a CPU expert span overlaps a vGPU stream span"
    );

    // Prefix-cache counter totals rode along in the kt_counters
    // metadata block: three distinct 3-token prompts → three lookups,
    // all misses (below min_prefix_len), zero hits.
    assert_eq!(counters.get("prefix.lookups"), Some(&3));
    assert_eq!(counters.get("prefix.misses"), Some(&3));
    assert_eq!(counters.get("prefix.hits"), Some(&0));

    // The metrics exposition rode along on the same run.
    assert!(stats_text.contains("kt_requests_completed_total 3"));
    assert!(stats_text.contains("kt_gpu_graph_replays_total"));
    assert!(stats_text.contains("kt_request_ttft_ns_bucket{le=\"+Inf\"} 3"));
    assert!(stats_text.contains("kt_prefix_lookups_total 3"));
    assert!(stats_text.contains("kt_prefix_misses_total 3"));
    assert!(stats_text.contains("kt_prefix_insertions_total 3"));
    assert!(stats_text.contains("kt_kv_leases_peak"));
}
