//! Serving-layer stress test: many client threads, random
//! cancellations, and injected expert-path faults. The contract under
//! chaos is liveness and accounting — no deadlock, no panic, and
//! every submitted request resolves (completed, cancelled, or failed)
//! within the timeout.

use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_inject::Pattern;
use kt_model::ModelPreset;
use kt_serve::{Request, RequestOutcome, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 6;
const RESOLVE_TIMEOUT: Duration = Duration::from_secs(120);

#[test]
fn stress_with_cancellations_and_expert_faults() {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 97,
                ..Default::default()
            },
        )
        .unwrap(),
    );

    // Fault injection on the expert path, driven by a kt-inject
    // pattern: every 23rd submission to a matching MoE layer fails,
    // so faults land mid-generation at shifting positions.
    let pattern = Pattern::compile(r"^model\.layers\..*\.mlp\.experts$").unwrap();
    let strikes = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&strikes);
    engine.set_fault_injector(move |path| {
        pattern.is_match(path) && counter.fetch_add(1, Ordering::Relaxed) % 23 == 22
    });

    // A small prefill chunk forces even short prompts through the
    // chunked path, so cancellations and faults land between chunks
    // too.
    let server = Arc::new(
        Server::start(
            Arc::clone(&engine),
            ServerConfig {
                max_batch: 8,
                prefill_chunk: 2,
                step_token_budget: 12,
                ..Default::default()
            },
        )
        .unwrap(),
    );

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(client as u64);
                for r in 0..REQUESTS_PER_CLIENT {
                    let prompt: Vec<u32> = (0..rng.gen_range(1usize..5))
                        .map(|_| rng.gen_range(0u32..256))
                        .collect();
                    let handle =
                        server.submit(Request::greedy(&prompt, rng.gen_range(1usize..12)));
                    // Roughly a third of requests get cancelled at a
                    // random point in their lifetime.
                    if rng.gen_bool(0.33) {
                        std::thread::sleep(Duration::from_micros(
                            rng.gen_range(0u64..2000),
                        ));
                        handle.cancel();
                    }
                    let result = handle
                        .wait_timeout(RESOLVE_TIMEOUT)
                        .unwrap_or_else(|| {
                            panic!("client {client} request {r} did not resolve")
                        });
                    match result.outcome {
                        RequestOutcome::Completed => {
                            assert!(!result.tokens.is_empty());
                        }
                        RequestOutcome::Shed => {
                            unreachable!("no SLO policy configured: nothing may shed")
                        }
                        RequestOutcome::Cancelled => {}
                        RequestOutcome::Failed { error } => {
                            assert!(
                                error.contains("injected fault"),
                                "only injected faults may fail requests: {error}"
                            );
                        }
                    }
                }
            });
        }
    });

    // Accounting: every submission resolved exactly once, and the
    // engine survived enough traffic for faults to actually fire.
    let stats = server.stats();
    assert_eq!(stats.resolved(), (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert!(
        strikes.load(Ordering::Relaxed) > 23,
        "fault injector never consulted"
    );
    assert!(stats.failed > 0, "no injected fault ever struck a request");
    assert!(stats.completed > 0, "nothing completed under chaos");

    // The server stays usable after the storm: clear faults and run a
    // clean request end to end.
    engine.clear_fault_injector();
    let clean = server.submit(Request::greedy(&[1, 2, 3], 5)).wait();
    assert!(clean.is_completed(), "{:?}", clean.outcome);
    Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("all client threads joined"))
        .shutdown();
}
