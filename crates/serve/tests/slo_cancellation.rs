//! Regression tests for cancellation racing the shed path:
//! cancellation-while-queued and cancellation-mid-prefill must resolve
//! as `Cancelled` (not `Shed`) even while the admission controller is
//! actively shedding, and the survivorship-corrected queue-wait
//! histogram must still count every one of them.

use kt_core::{EngineConfig, HybridEngine, SchedMode, VgpuConfig};
use kt_model::ModelPreset;
use kt_serve::{
    Request, RequestOutcome, Server, ServerConfig, SloClass, SloPolicy, SloTarget,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn cancellation_under_shedding_pressure_is_cancelled_not_shed() {
    // Slow launches + 1-token chunks stretch a long prompt's prefill
    // across hundreds of steps: a wide window for queued requests to
    // be shed and for cancellations to land mid-prefill.
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                vgpu: VgpuConfig {
                    launch_latency: Duration::from_micros(200),
                    ..Default::default()
                },
                seed: 23,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    // Batch class is unmeetable (2 ms TTFT), interactive and standard
    // effectively unbounded — so batch work sheds while everything
    // else survives.
    let policy = SloPolicy {
        targets: [
            SloTarget::from_millis(60_000, 60_000),
            SloTarget::from_millis(60_000, 60_000),
            SloTarget::from_millis(2, 2),
        ],
        shed: true,
    };
    let server = Server::start(
        engine,
        ServerConfig {
            max_batch: 1,
            prefill_chunk: 1,
            step_token_budget: 1,
            prefix_cache_bytes: 0,
            slo: Some(policy),
            ..Default::default()
        },
    )
    .unwrap();

    // Evidence for the slack predictor (it never sheds blind).
    let warm = server.submit(Request::greedy(&[1, 2], 2)).wait();
    assert!(warm.is_completed());

    // Occupy the only slot with a long prefill.
    let prompt: Vec<u32> = (0..400).map(|i| (i % 250) as u32).collect();
    let busy = server.submit(Request::greedy(&prompt, 8).with_class(SloClass::Interactive));
    // Wait until its prefill demonstrably started (it is admitted and
    // mid-prompt, not queued).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let fed = server.stats().prefill_tokens;
        if fed > 4 {
            assert!((fed as usize) < prompt.len(), "prefill outran the test");
            break;
        }
        assert!(Instant::now() < deadline, "prefill never started");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Shedding pressure: a doomed batch-class request...
    let doomed = server.submit(Request::greedy(&[3, 4], 4).with_class(SloClass::Batch));
    // ...and the victim: a standard-class request that will be
    // cancelled while queued. Its targets are loose, so only the
    // client's cancel may resolve it.
    let victim = server.submit(Request::greedy(&[5, 6], 4).with_class(SloClass::Standard));
    let d = doomed
        .wait_timeout(Duration::from_secs(30))
        .expect("doomed resolves");
    assert_eq!(d.outcome, RequestOutcome::Shed, "pressure confirmed");

    // Cancellation-while-queued, with the shed pass running hot.
    std::thread::sleep(Duration::from_millis(2));
    victim.cancel();
    let v = victim
        .wait_timeout(Duration::from_secs(30))
        .expect("victim resolves");
    assert_eq!(
        v.outcome,
        RequestOutcome::Cancelled,
        "client cancellation wins, not the shed path"
    );
    assert!(v.tokens.is_empty(), "cancelled before admission");
    assert!(v.metrics.queue_wait_ns > 0, "queued time was measured");

    // Cancellation-mid-prefill under the same pressure.
    busy.cancel();
    let b = busy
        .wait_timeout(Duration::from_secs(30))
        .expect("busy resolves");
    assert_eq!(b.outcome, RequestOutcome::Cancelled);
    assert!(b.tokens.is_empty(), "cancelled before the first sample");

    // The lease went back at the step boundary; nothing leaked.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active() != 0 {
        assert!(Instant::now() < deadline, "mid-prefill cancel leaked its lease");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Survivorship correction: the queue-wait histogram counted every
    // resolution — completed, shed, cancelled-queued, and
    // cancelled-mid-prefill alike.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (queue_wait, _, _) = server.latency_histograms();
        if queue_wait.count() == 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "queue-wait histogram missed a resolution: {} of 4",
            queue_wait.count()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 1, "{stats:?}");
    assert_eq!(stats.shed, 1, "{stats:?}");
    assert_eq!(stats.cancelled, 2, "{stats:?}");
    let cs = server.class_stats();
    assert_eq!(cs[SloClass::Standard.index()].cancelled, 1, "the queued victim");
    assert_eq!(cs[SloClass::Interactive.index()].cancelled, 1, "the mid-prefill busy");
    assert_eq!(cs[SloClass::Batch.index()].shed, 1);
    server.shutdown();
}
