//! Property tests for the scheduler invariants behind SLO serving.
//!
//! The scheduling decisions are pure functions (`kt_serve::sched`,
//! `kt_serve::slo`), so the invariants are checked over random batch
//! shapes, queue states, and policies without an engine:
//!
//! * **Decode never starves**: every decode row is scheduled in every
//!   composed step, whatever prefill of whatever priority competes.
//! * **Budget conservation**: prefill tokens stay within the remaining
//!   budget, except for the single anti-starvation chunk.
//! * **Priority grant order**: a lower-priority prompt receives a
//!   chunk only if every higher-priority pending prompt received one.
//! * **Admission order within a class**: draining the queue through
//!   `pick_next` yields each class's requests in arrival order, and
//!   never picks a class while a more urgent one is waiting.
//! * **Shed only on negative slack** (and never for interactive, and
//!   never with shedding disabled).
//!
//! The "every request resolves with exactly one outcome" invariant
//! needs a live server and lives in `tests/chaos.rs`.

use kt_serve::sched::{compose_plan, pick_next, ComposeCfg, PlanWork, SeqView};
use kt_serve::slo::{predicted_ttft_ns, shed_decision, slack_ns, SlackInputs};
use kt_serve::{SloClass, SloPolicy, SloTarget};
use proptest::prelude::*;

fn seq_strategy() -> impl Strategy<Value = SeqView> {
    (0usize..40, 0usize..3, any::<bool>()).prop_map(|(prompt_remaining, priority, at_risk)| {
        SeqView {
            prompt_remaining,
            priority,
            at_risk,
        }
    })
}

/// Server-valid composition configs: nonzero chunk, budget at least one
/// chunk (mirrors `Server::start` validation).
fn cfg_strategy() -> impl Strategy<Value = ComposeCfg> {
    (1usize..16, 0usize..120, any::<bool>()).prop_map(|(chunk, extra, priority_aware)| {
        ComposeCfg {
            prefill_chunk: chunk,
            step_token_budget: chunk + extra,
            priority_aware,
        }
    })
}

proptest! {
    #[test]
    fn decode_rows_never_starve(
        cfg in cfg_strategy(),
        seqs in proptest::collection::vec(seq_strategy(), 1..24),
    ) {
        let plan = compose_plan(&cfg, &seqs);
        prop_assert_eq!(plan.len(), seqs.len());
        for (seq, work) in seqs.iter().zip(&plan) {
            if seq.prompt_remaining == 0 {
                prop_assert_eq!(
                    *work, Some(PlanWork::Decode),
                    "decode row idled behind prefill: {:?}", seq
                );
            } else {
                prop_assert!(
                    !matches!(work, Some(PlanWork::Decode)),
                    "prefilling sequence scheduled as decode"
                );
            }
        }
    }

    #[test]
    fn prefill_respects_budget_or_is_the_anti_starvation_chunk(
        cfg in cfg_strategy(),
        seqs in proptest::collection::vec(seq_strategy(), 1..24),
    ) {
        let plan = compose_plan(&cfg, &seqs);
        let n_decode = seqs.iter().filter(|s| s.prompt_remaining == 0).count();
        let chunks: Vec<(usize, usize, bool)> = seqs
            .iter()
            .zip(&plan)
            .enumerate()
            .filter_map(|(i, (seq, work))| match work {
                Some(PlanWork::Chunk { len, last }) => {
                    // A chunk never overshoots its prompt or the chunk
                    // size, and `last` is exact.
                    assert!(*len <= seq.prompt_remaining && *len <= cfg.prefill_chunk);
                    assert_eq!(*last, *len == seq.prompt_remaining);
                    Some((i, *len, *last))
                }
                _ => None,
            })
            .collect();
        let prefill_tokens: usize = chunks.iter().map(|c| c.1).sum();
        let budget = cfg.step_token_budget.saturating_sub(n_decode);
        if prefill_tokens > budget {
            // Only the anti-starvation path exceeds the budget: decode
            // exhausted it, and exactly one chunk was granted anyway.
            prop_assert_eq!(chunks.len(), 1, "over budget with multiple grants");
            prop_assert!(
                budget == 0 || budget < chunks[0].1.min(cfg.prefill_chunk),
                "anti-starvation fired with budget {} available", budget
            );
        }
        // Liveness: whenever something is pending, something advances.
        let any_pending = seqs.iter().any(|s| s.prompt_remaining > 0);
        if any_pending {
            prop_assert!(!chunks.is_empty(), "pending prefill fully starved: {plan:?}");
        }
    }

    #[test]
    fn priority_grants_are_top_down(
        cfg in cfg_strategy(),
        seqs in proptest::collection::vec(seq_strategy(), 1..24),
    ) {
        let cfg = ComposeCfg { priority_aware: true, ..cfg };
        let plan = compose_plan(&cfg, &seqs);
        let granted: Vec<bool> = plan
            .iter()
            .map(|w| matches!(w, Some(PlanWork::Chunk { .. })))
            .collect();
        for i in 0..seqs.len() {
            if seqs[i].prompt_remaining == 0 || granted[i] {
                continue;
            }
            // i is pending and got nothing: no strictly lower-priority
            // pending sequence may have been granted a chunk.
            for j in 0..seqs.len() {
                if seqs[j].prompt_remaining > 0 && granted[j] {
                    prop_assert!(
                        seqs[j].priority <= seqs[i].priority,
                        "lower-priority seq {j} (prio {}) granted while {i} (prio {}) starved",
                        seqs[j].priority, seqs[i].priority
                    );
                }
            }
        }
    }

    #[test]
    fn pick_next_preserves_arrival_order_within_class(
        entries in proptest::collection::vec(0usize..3, 1..32),
    ) {
        // Unique, increasing seq_nos in arrival order.
        let mut queue: Vec<(usize, u64)> = entries
            .iter()
            .enumerate()
            .map(|(i, &prio)| (prio, i as u64))
            .collect();
        let mut drained: Vec<(usize, u64)> = Vec::new();
        while let Some(i) = pick_next(&queue, true) {
            let picked = queue.remove(i);
            // Never pick a class while a more urgent one waits.
            prop_assert!(
                queue.iter().all(|&(p, _)| p >= picked.0),
                "picked class {} while class {} was waiting",
                picked.0,
                queue.iter().map(|&(p, _)| p).min().unwrap()
            );
            drained.push(picked);
        }
        prop_assert_eq!(drained.len(), entries.len());
        // Within each class, arrival order (seq_no) is preserved.
        for class in 0..3 {
            let order: Vec<u64> = drained
                .iter()
                .filter(|&&(p, _)| p == class)
                .map(|&(_, s)| s)
                .collect();
            prop_assert!(
                order.windows(2).all(|w| w[0] < w[1]),
                "class {class} served out of arrival order: {order:?}"
            );
        }
    }

    #[test]
    fn shed_only_on_negative_slack(
        ttft_target_ms in 1u64..5_000,
        service_ms in 0u64..2_000,
        waited_ms in 0u64..10_000,
        batch_state in (0usize..8, 1usize..8),
        queued_ahead in 0usize..64,
        class_and_shed in (0usize..3, any::<bool>()),
    ) {
        let (active, max_batch) = batch_state;
        let (class_idx, shed_enabled) = class_and_shed;
        let class = SloClass::ALL[class_idx];
        let mut policy = SloPolicy { shed: shed_enabled, ..SloPolicy::default() };
        policy.targets[class.index()] =
            SloTarget::from_millis(ttft_target_ms, ttft_target_ms);
        let inputs = SlackInputs {
            service_estimate_ns: service_ms * 1_000_000,
            active,
            max_batch,
            queued_ahead,
            waited_ns: waited_ms * 1_000_000,
        };
        let predicted = predicted_ttft_ns(&inputs);
        // The prediction never undercuts the time already waited, and
        // is monotone in the queue ahead.
        prop_assert!(predicted >= inputs.waited_ns);
        let deeper = SlackInputs { queued_ahead: queued_ahead + max_batch, ..inputs };
        prop_assert!(predicted_ttft_ns(&deeper) >= predicted);

        let slack = slack_ns(policy.target(class), predicted);
        let shed = shed_decision(&policy, class, slack);
        if shed {
            prop_assert!(slack < 0, "shed with non-negative slack {slack}");
            prop_assert!(shed_enabled, "shed with shedding disabled");
            prop_assert!(class != SloClass::Interactive, "interactive shed");
        }
        // Contrapositives: any of the three conditions failing blocks
        // the shed.
        if slack >= 0 || !shed_enabled || class == SloClass::Interactive {
            prop_assert!(!shed);
        }
    }
}
