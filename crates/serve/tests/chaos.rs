//! Chaos test: fault injection + 2x-saturation open-loop overload
//! against the SLO scheduler. The contract is liveness and
//! conservation — whatever combination of faults, shedding, and
//! cancellation pressure hits the scheduler, it must never wedge,
//! never leak a KV lease (pool occupancy returns to zero), and never
//! drop a request without exactly one outcome.
//!
//! Arrivals come from the shared `kt_bench::workload` generator (the
//! same one `ablation_slo` uses), so the overload shape is seeded and
//! reproducible.

use kt_bench::workload::{assign_classes, offsets_ns, ArrivalPattern};
use kt_core::{EngineConfig, HybridEngine, SchedMode};
use kt_inject::Pattern;
use kt_model::ModelPreset;
use kt_serve::{
    PreemptPolicy, Request, RequestHandle, RequestOutcome, Server, ServerConfig, SloClass,
    SloPolicy, SloTarget,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_REQUESTS: usize = 120;
const MAX_BATCH: usize = 4;
const RESOLVE_TIMEOUT: Duration = Duration::from_secs(120);

fn request_for(i: usize, class: SloClass) -> Request {
    let (prompt_len, max_new) = match class {
        SloClass::Interactive => (6, 4),
        SloClass::Standard => (12, 6),
        SloClass::Batch => (24, 8),
    };
    let prompt: Vec<u32> = (0..prompt_len)
        .map(|j| ((i * 13 + j * 7 + 5) % 251) as u32)
        .collect();
    Request::greedy(&prompt, max_new).with_class(class)
}

#[test]
fn overload_with_faults_never_wedges_or_leaks() {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 53,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    // Every 97th expert-path submission fails, so faults poison
    // batches at shifting, overload-dependent positions. (A strike
    // fails the *whole* step's batch, and a request needs many
    // consecutive clean steps to finish — much hotter than this and
    // nothing ever completes.)
    let pattern = Pattern::compile(r"^model\.layers\..*\.mlp\.experts$").unwrap();
    let strikes = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&strikes);
    engine.set_fault_injector(move |path| {
        pattern.is_match(path) && counter.fetch_add(1, Ordering::Relaxed) % 97 == 96
    });

    // Calibrate saturation with a closed burst against a throwaway
    // FIFO server on the same engine, so the policy targets below are
    // in measured service-wave units rather than absolute wall-clock —
    // the shed pressure then survives whatever contention the rest of
    // the test suite puts on the host.
    let classes: Vec<SloClass> = assign_classes(3, N_REQUESTS, &[0.4, 0.3, 0.3])
        .into_iter()
        .map(|c| SloClass::ALL[c])
        .collect();
    let serve_cfg = ServerConfig {
        max_batch: MAX_BATCH,
        prefill_chunk: 2,
        step_token_budget: 8,
        ..Default::default()
    };
    let calib = Server::start(Arc::clone(&engine), serve_cfg.clone()).unwrap();
    let t0 = Instant::now();
    let probes: Vec<RequestHandle> = (0..2 * MAX_BATCH)
        .map(|i| calib.submit(request_for(i, classes[i])))
        .collect();
    for h in probes {
        let _ = h.wait_timeout(RESOLVE_TIMEOUT).expect("calibration resolves");
    }
    let wall = t0.elapsed();
    calib.shutdown();
    let rate_sat = (2 * MAX_BATCH) as f64 / wall.as_secs_f64();
    // One "service wave" is the wall-clock to drain a full batch.
    let wave_ns = (wall.as_nanos() / 2) as u64;

    // Aggressive policy: tight targets + shedding on, so the shed
    // path runs hot alongside the fault path. Under 2x overload the
    // terminal backlog reaches ~N/2 queued requests (~15 waves), far
    // past the batch class's 3-wave budget.
    let tgt = |waves: u64| SloTarget {
        ttft_ns: waves * wave_ns,
        itl_ns: waves * wave_ns,
    };
    let policy = SloPolicy {
        targets: [tgt(10_000), tgt(8), tgt(3)],
        shed: true,
    };
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig {
            slo: Some(policy),
            ..serve_cfg
        },
    )
    .unwrap();

    // Warm the real server so its latency histograms hold evidence for
    // the slack predictor (it never sheds blind).
    let warm: Vec<RequestHandle> = (0..2 * MAX_BATCH)
        .map(|i| server.submit(request_for(i, classes[i])))
        .collect();
    for h in warm {
        let _ = h.wait_timeout(RESOLVE_TIMEOUT).expect("warmup resolves");
    }

    let offs = offsets_ns(
        &ArrivalPattern::Bursty {
            rate_per_s: 2.0 * rate_sat,
            burst: 6,
            spread_ns: 500_000,
        },
        41,
        N_REQUESTS,
    );
    let start = Instant::now();
    let handles: Vec<RequestHandle> = offs
        .iter()
        .enumerate()
        .map(|(i, &off)| {
            let due = Duration::from_nanos(off);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
            let h = server.submit(request_for(i, classes[i]));
            // A slice of requests also gets cancelled immediately, so
            // cancellation races shedding and admission.
            if i % 11 == 7 {
                h.cancel();
            }
            h
        })
        .collect();

    // Conservation: every request resolves with exactly one outcome.
    let mut completed = 0u64;
    let mut cancelled = 0u64;
    let mut failed = 0u64;
    let mut shed = 0u64;
    for (i, h) in handles.iter().enumerate() {
        let r = h
            .wait_timeout(RESOLVE_TIMEOUT)
            .unwrap_or_else(|| panic!("request {i} never resolved — scheduler wedged"));
        match r.outcome {
            RequestOutcome::Completed => {
                completed += 1;
                assert!(!r.tokens.is_empty());
            }
            RequestOutcome::Cancelled => cancelled += 1,
            RequestOutcome::Shed => {
                shed += 1;
                assert!(r.tokens.is_empty(), "shed requests never produce tokens");
                assert_ne!(
                    classes[i],
                    SloClass::Interactive,
                    "interactive request {i} was shed"
                );
            }
            RequestOutcome::Failed { ref error } => {
                failed += 1;
                assert!(
                    error.contains("injected fault"),
                    "only injected faults may fail requests: {error}"
                );
            }
        }
        // Exactly one outcome: the slot's first resolution stands.
        assert_eq!(
            h.try_result().expect("still resolved").outcome,
            r.outcome,
            "request {i} changed outcome after resolution"
        );
    }
    assert_eq!(
        completed + cancelled + failed + shed,
        N_REQUESTS as u64,
        "every request has exactly one outcome"
    );
    let stats = server.stats();
    assert_eq!(
        stats.resolved(),
        (N_REQUESTS + 2 * MAX_BATCH) as u64,
        "server ledger matches: {stats:?}"
    );
    let class_stats = server.class_stats();
    assert_eq!(
        class_stats.iter().map(|c| c.resolved()).sum::<u64>(),
        stats.resolved(),
        "per-class ledger matches the aggregate"
    );
    assert_eq!(class_stats[SloClass::Interactive.index()].shed, 0);
    assert!(
        strikes.load(Ordering::Relaxed) > 97,
        "fault injector never consulted"
    );
    assert!(failed > 0, "no injected fault ever struck a request");
    assert!(completed > 0, "nothing completed under chaos");
    assert!(shed > 0, "2x overload with tight targets must shed something");

    // No KV-lease leak: once everything resolved, pool occupancy is
    // back to zero and the queue is empty.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.active() == 0 && server.queued() == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leases leaked: active={} queued={}",
            server.active(),
            server.queued()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The server stays usable after the storm.
    engine.clear_fault_injector();
    let clean = server
        .submit(request_for(0, SloClass::Interactive))
        .wait_timeout(RESOLVE_TIMEOUT)
        .expect("clean request resolves");
    assert!(clean.is_completed(), "{:?}", clean.outcome);
    server.shutdown();
}

#[test]
fn preemption_storm_with_faults_conserves_outcomes_and_pages() {
    // Page-pressure variant: the KV pool holds barely more pages than
    // the single largest request, so a saturated batch preempts
    // constantly (swap and recompute both, via the Auto cost model)
    // while the fault injector keeps poisoning steps and a slice of
    // requests cancels mid-flight — including while parked on the
    // preempted list. The contract is the same: exactly one outcome
    // per request, only injected faults fail anything, and when the
    // dust settles every page is back in the allocator with nothing
    // stranded in the host swap tier.
    const N: usize = 90;
    const PAGE_ROWS: usize = 4;
    let model_cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &model_cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 59,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let pattern = Pattern::compile(r"^model\.layers\..*\.mlp\.experts$").unwrap();
    let strikes = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&strikes);
    engine.set_fault_injector(move |path| {
        pattern.is_match(path) && counter.fetch_add(1, Ordering::Relaxed) % 97 == 96
    });

    // Just above the largest admissible request (Batch: 24 prompt + 8
    // new = 32 rows), so any resume eventually fits once the batch
    // drains but two concurrent growers always collide.
    let largest = model_cfg.n_layers * 32usize.div_ceil(PAGE_ROWS);
    let pool_pages = largest + largest / 5;
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig {
            max_batch: MAX_BATCH,
            prefill_chunk: 2,
            step_token_budget: 8,
            // No prefix retention: at the end, free == total exactly.
            prefix_cache_bytes: 0,
            page_rows: PAGE_ROWS,
            kv_pool_pages: pool_pages,
            preempt_policy: PreemptPolicy::Auto,
            ..Default::default()
        },
    )
    .unwrap();

    let classes: Vec<SloClass> = assign_classes(3, N, &[0.4, 0.3, 0.3])
        .into_iter()
        .map(|c| SloClass::ALL[c])
        .collect();
    let handles: Vec<RequestHandle> = (0..N)
        .map(|i| {
            let h = server.submit(request_for(i, classes[i]));
            if i % 11 == 7 {
                h.cancel();
            }
            h
        })
        .collect();

    let (mut completed, mut cancelled, mut failed) = (0u64, 0u64, 0u64);
    for (i, h) in handles.iter().enumerate() {
        let r = h
            .wait_timeout(RESOLVE_TIMEOUT)
            .unwrap_or_else(|| panic!("request {i} never resolved — scheduler wedged"));
        match r.outcome {
            RequestOutcome::Completed => {
                completed += 1;
                assert!(!r.tokens.is_empty());
            }
            RequestOutcome::Cancelled => cancelled += 1,
            RequestOutcome::Shed => panic!("no SLO policy, nothing may shed"),
            RequestOutcome::Failed { ref error } => {
                failed += 1;
                assert!(
                    error.contains("injected fault"),
                    "only injected faults may fail requests: {error}"
                );
            }
        }
        assert_eq!(
            h.try_result().expect("still resolved").outcome,
            r.outcome,
            "request {i} changed outcome after resolution"
        );
    }
    assert_eq!(completed + cancelled + failed, N as u64);
    assert!(completed > 0, "nothing completed under the storm");
    assert!(cancelled > 0, "cancellation slice never landed");

    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active() != 0 || server.queued() != 0 {
        assert!(
            Instant::now() < deadline,
            "leases leaked: active={} queued={}",
            server.active(),
            server.queued()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.stats();
    assert!(
        stats.preempt_swap + stats.preempt_recompute > 0,
        "a pool this tight must have preempted something"
    );
    assert_eq!(stats.kv_pages_total, pool_pages as u64);
    assert_eq!(
        stats.kv_pages_free, stats.kv_pages_total,
        "pages leaked: {stats:?}"
    );
    assert_eq!(stats.kv_pages_swapped, 0, "rows stranded in the swap tier");

    // Still serviceable afterwards.
    engine.clear_fault_injector();
    let clean = server
        .submit(request_for(1, SloClass::Interactive))
        .wait_timeout(RESOLVE_TIMEOUT)
        .expect("clean request resolves");
    assert!(clean.is_completed(), "{:?}", clean.outcome);
    server.shutdown();
}
