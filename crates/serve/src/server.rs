//! The continuous-batching scheduler with chunked prefill and
//! SLO-aware admission.
//!
//! One scheduler thread owns the engine for the server's lifetime and
//! runs the serving loop: between engine steps it joins newly arrived
//! requests into the batch (admission-controlled by the KV-cache pool)
//! and retires finished or cancelled sequences.
//!
//! Each step is composed under a **token budget** instead of running
//! every admitted prompt whole: all active decode rows join first (one
//! token each), then pending prompts contribute at most one chunk of at
//! most [`ServerConfig::prefill_chunk`] tokens apiece, in admission
//! order, while the step's total stays within
//! [`ServerConfig::step_token_budget`]. A long prompt therefore
//! prefills across several steps while established sequences keep
//! decoding in the same batched forwards — decode inter-token latency
//! is bounded by the budget, not by the longest queued prompt. Chunked
//! prefill is bitwise identical to monolithic prefill (the engine's
//! position-dependent math is row-stable), so scheduling stays pure
//! orchestration.
//!
//! With [`ServerConfig::slo`] set, the scheduler additionally becomes
//! **SLO-aware**:
//!
//! * Admission picks the earliest request of the most urgent
//!   [`SloClass`] present instead of the queue front (FIFO is
//!   preserved within a class).
//! * An admission controller predicts each queued request's TTFT from
//!   the server's own latency histograms (one service wave per
//!   batch-width cohort ahead of it) and, when the policy allows
//!   shedding, resolves lower-class requests whose predicted slack
//!   against their TTFT target is negative as
//!   [`RequestOutcome::Shed`] — graceful load shedding instead of
//!   serving tokens that already missed their deadline. Interactive
//!   requests are never shed.
//! * Step composition allocates the prefill budget by class priority,
//!   and throttles prefill to a single chunk whenever a decode row is
//!   at risk of an ITL violation, reallocating the step budget toward
//!   keeping at-risk rows fast (the anti-starvation chunk grant is
//!   preserved).
//!
//! Scheduling stays pure orchestration either way: which requests run
//! when changes, the bits each surviving request produces do not.
//!
//! Admission additionally consults the pool's shared-prefix cache
//! (when [`ServerConfig::prefix_cache_bytes`] is nonzero): the longest
//! cached prefix of the prompt is copied into the fresh lease and the
//! scheduler prefills only the uncached suffix. Because cached rows
//! are frozen snapshots of rows the engine itself produced — and KV
//! rows are a prefix-deterministic function of the token prefix — the
//! seeded path yields bitwise-identical logits to a cold prefill. On
//! release, completed (and cancelled) sequences offer their fed-token
//! prefix back to the cache for future requests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use kt_core::{
    BatchSeq, EngineError, HybridEngine, PlacementPolicy, RequestMetrics, ServeStats, SimdLevel,
};
use kt_model::kvcache::KvCache;
use kt_model::pool::{CacheLease, KvCachePool};
use kt_model::prefix::PrefixCacheConfig;
use kt_tensor::Matrix;
use kt_trace::{
    step_components, Component, CounterKind, FlightRecorder, LogHistogram, RequestBreakdown,
    RequestTrace, SpanKind, StepTrace, TraceCtx, TraceOutcome, N_COMPONENTS, N_SPAN_KINDS,
};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{
    push_counter, push_family, push_gauge, push_histogram, push_histogram_samples_seconds,
    push_sample,
};
use crate::request::{Request, RequestHandle, RequestOutcome, RequestResult, RequestSlot};
use crate::sched::{self, ComposeCfg, PlanWork, SeqView};
use crate::slo::{self, ClassCounters, SlackInputs, SloClass, SloPolicy};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum sequences active in one batched step (also sizes the
    /// KV-cache pool). Must be nonzero.
    pub max_batch: usize,
    /// Maximum prompt tokens one sequence prefills per step. Must be
    /// nonzero; a value at or above the longest admissible prompt
    /// reproduces monolithic (single-step) prefill.
    pub prefill_chunk: usize,
    /// Per-step token budget the scheduler composes each batched
    /// forward under: decode rows are admitted first (one token each),
    /// then pending prefill chunks fill the remainder. Must be at
    /// least `prefill_chunk`.
    pub step_token_budget: usize,
    /// Byte budget of the shared-prefix KV cache (frozen snapshots of
    /// released sequences, keyed by prompt tokens). `0` disables
    /// prefix reuse entirely; admission then always cold-prefills.
    pub prefix_cache_bytes: usize,
    /// Shortest prompt prefix worth seeding from the cache. Shorter
    /// matches are treated as misses (the copy would cost more than
    /// the prefill it saves). Must be nonzero.
    pub min_prefix_len: usize,
    /// Per-class SLO targets. `None` (the default) keeps the
    /// scheduler pure FIFO with no shedding — exactly the pre-SLO
    /// behavior. `Some` turns on priority admission, slack-based
    /// shedding (if the policy allows), and priority-aware step
    /// composition. Each class's targets must be nonzero with
    /// `ttft >= itl` (the first token needs at least one full step).
    pub slo: Option<SloPolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 8,
            prefill_chunk: 64,
            step_token_budget: 128,
            prefix_cache_bytes: 32 << 20,
            min_prefix_len: 4,
            slo: None,
        }
    }
}

/// A request waiting for admission.
struct Queued {
    req: Request,
    slot: Arc<RequestSlot>,
    enqueued_at: Instant,
    /// Submit time on the trace clock (sink epoch), anchoring the
    /// request's flight-recorder waterfall.
    enqueued_ns: u64,
    /// Process-wide submission counter: FIFO order within a class is
    /// exactly arrival order, whatever the queue's physical layout.
    seq_no: u64,
}

impl Queued {
    /// Server-assigned request id (fixed on the slot at submission).
    fn id(&self) -> u64 {
        self.slot.id
    }
}

/// What one active sequence does in the step being composed.
#[derive(Clone, Copy)]
enum Work {
    /// Decode one token (the sequence's next sampled token).
    Decode(u32),
    /// Prefill the next `len` prompt tokens; `last` marks the chunk
    /// that completes the prompt (it samples the first token).
    Chunk { len: usize, last: bool },
}

/// A sequence currently in the batch.
struct ActiveSeq {
    slot: Arc<RequestSlot>,
    lease: CacheLease,
    req: Request,
    rng: StdRng,
    /// Prompt tokens already fed to the engine. The prompt is consumed
    /// in chunks; the sequence becomes a decode row once this reaches
    /// `req.prompt.len()`.
    prefilled: usize,
    /// Next token to decode once the prompt is fully prefilled.
    /// `None` before the first sample and after the last one.
    next_token: Option<u32>,
    tokens: Vec<u32>,
    metrics: RequestMetrics,
    admitted_at: Instant,
    last_token_at: Option<Instant>,
    /// Request identity threaded into every span this sequence causes:
    /// `ctx.tag()` rides in the engine's per-sequence label slots.
    ctx: TraceCtx,
    /// Per-request waterfall under construction; `None` when tracing
    /// was disabled at admission. Boxed: the trace is cold data next to
    /// the hot scheduling fields.
    trace: Option<Box<RequestTrace>>,
}

impl ActiveSeq {
    /// Whether generation ended (stop token or length) and the slot is
    /// ready to resolve.
    fn is_done(&self) -> bool {
        self.prefilled == self.req.prompt.len()
            && self.next_token.is_none()
            && !self.tokens.is_empty()
    }

    fn resolve(mut self, outcome: RequestOutcome, inner: &ServerInner) {
        inner.record_request_hists(&self.metrics);
        let violated = inner.account_outcome(self.req.class, &outcome, &self.metrics);
        if let Some(trace) = self.trace.take() {
            inner.finish_trace(trace, &outcome, violated, &self.metrics, self.tokens.len() as u32);
        }
        // Release first so the admission valve reopens before any
        // waiter reacts to the result. Completed and cancelled caches
        // hold valid prefix rows (prompt tokens, then fed generations),
        // so their release path also offers the prefix to the cache; a
        // failed step may have left the cache mid-write, so it goes
        // back without an insert (release resets it either way).
        if matches!(outcome, RequestOutcome::Failed { .. }) {
            let _ = inner.pool.release(self.lease);
        } else {
            let len = self.lease.cache.seq_len();
            let from_prompt = len.min(self.prefilled);
            let from_gen = (len - from_prompt).min(self.tokens.len());
            let mut fed: Vec<u32> = Vec::with_capacity(from_prompt + from_gen);
            fed.extend_from_slice(&self.req.prompt[..from_prompt]);
            fed.extend_from_slice(&self.tokens[..from_gen]);
            let _ = inner.pool.release_with_prefix(self.lease, &fed);
        }
        self.slot.resolve(RequestResult {
            request_id: self.ctx.request_id,
            outcome,
            tokens: self.tokens,
            metrics: self.metrics,
        });
    }
}

/// Server-side latency histograms, fed at request resolution.
#[derive(Default)]
struct LatencyHists {
    /// Queue wait of every resolved request — including requests
    /// cancelled, shed, or failed while still queued, which never
    /// produce a token but did wait. Leaving them out would
    /// survivorship-bias the queue-wait percentiles toward requests
    /// that got served.
    queue_wait: LogHistogram,
    /// Time to first token of every request that produced one.
    ttft: LogHistogram,
    /// Inter-token latencies across all requests.
    itl: LogHistogram,
}

struct ServerInner {
    engine: Arc<HybridEngine>,
    pool: KvCachePool,
    queue: Mutex<VecDeque<Queued>>,
    /// Signals the scheduler: new arrival or shutdown.
    wakeup: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<ServeStats>,
    hists: Mutex<LatencyHists>,
    /// Per-class outcome and SLO counters.
    class_stats: Mutex<[ClassCounters; 3]>,
    /// Monotonic submission counter feeding `Queued::seq_no`.
    submit_seq: AtomicU64,
    /// Request-id allocator (first id is 1; 0 means "untagged").
    next_id: AtomicU64,
    /// Tail-latency flight recorder: per-request waterfalls of recent
    /// completions, with SLO-violating/shed/failed requests frozen.
    /// Always present; populated only while tracing is enabled.
    recorder: FlightRecorder,
    /// Per-[`Component`] end-to-end latency histograms (with worst
    /// request-id exemplars), fed one sample per component per traced
    /// resolution.
    comp_hists: Mutex<[LogHistogram; N_COMPONENTS]>,
    cfg: ServerConfig,
}

impl ServerInner {
    /// Folds a resolved request's latency samples into the server
    /// histograms. Every resolution path that saw the queue calls
    /// this, whatever the outcome.
    fn record_request_hists(&self, m: &RequestMetrics) {
        let mut h = self.hists.lock();
        h.queue_wait.record(m.queue_wait_ns);
        if let Some(t) = m.ttft_ns {
            h.ttft.record(t);
        }
        h.itl.record_all(m.token_latencies_ns.iter().copied());
    }

    /// Single bookkeeping point for every request resolution: outcome
    /// counters (aggregate and per class) and, under an SLO policy,
    /// target-violation accounting. Exactly one outcome per request —
    /// every resolution path funnels through here once. Returns whether
    /// the request violated either SLO target (this is what freezes its
    /// trace into the flight recorder).
    fn account_outcome(&self, class: SloClass, outcome: &RequestOutcome, m: &RequestMetrics) -> bool {
        // Violations are judged for any request that produced the
        // relevant samples, whatever its outcome; `slo_met` only for
        // completions (a cancelled request that was fast is not
        // goodput).
        let (ttft_viol, itl_viol, met) = match &self.cfg.slo {
            Some(policy) => {
                let target = policy.target(class);
                let ttft_viol = m.ttft_ns.is_some_and(|t| t > target.ttft_ns);
                let itl_viol = m.token_latencies_ns.iter().any(|&g| g > target.itl_ns);
                let met = matches!(outcome, RequestOutcome::Completed)
                    && !ttft_viol
                    && !itl_viol
                    && m.ttft_ns.is_some();
                (ttft_viol, itl_viol, met)
            }
            None => (false, false, false),
        };
        {
            let mut stats = self.stats.lock();
            match outcome {
                RequestOutcome::Completed => stats.completed += 1,
                RequestOutcome::Cancelled => stats.cancelled += 1,
                RequestOutcome::Shed => stats.shed += 1,
                RequestOutcome::Failed { .. } => stats.failed += 1,
            }
            stats.slo_ttft_violations += ttft_viol as u64;
            stats.slo_itl_violations += itl_viol as u64;
            stats.slo_met += met as u64;
        }
        {
            let mut cs = self.class_stats.lock();
            let c = &mut cs[class.index()];
            match outcome {
                RequestOutcome::Completed => c.completed += 1,
                RequestOutcome::Cancelled => c.cancelled += 1,
                RequestOutcome::Shed => c.shed += 1,
                RequestOutcome::Failed { .. } => c.failed += 1,
            }
            c.ttft_violations += ttft_viol as u64;
            c.itl_violations += itl_viol as u64;
            c.slo_met += met as u64;
        }
        if ttft_viol {
            kt_trace::counter_add(CounterKind::SloTtftViolations, 1);
            kt_trace::instant(SpanKind::ServeSloViolation, class.index() as u32, 0);
        }
        if itl_viol {
            kt_trace::counter_add(CounterKind::SloItlViolations, 1);
            kt_trace::instant(SpanKind::ServeSloViolation, class.index() as u32, 1);
        }
        ttft_viol || itl_viol
    }

    /// Finalizes a per-request trace at resolution: stamps the outcome
    /// and measured end-to-end numbers, feeds one sample per component
    /// into the `kt_latency_component_seconds` histograms (carrying the
    /// request id as the bucket exemplar), and hands the trace to the
    /// flight recorder (which freezes it if it violated, shed, or
    /// failed).
    fn finish_trace(
        &self,
        mut trace: Box<RequestTrace>,
        outcome: &RequestOutcome,
        violated: bool,
        m: &RequestMetrics,
        tokens: u32,
    ) {
        let traced_outcome = match outcome {
            RequestOutcome::Completed => TraceOutcome::Completed,
            RequestOutcome::Cancelled => TraceOutcome::Cancelled,
            RequestOutcome::Shed => TraceOutcome::Shed,
            RequestOutcome::Failed { .. } => TraceOutcome::Failed,
        };
        trace.finish(
            kt_trace::now_ns(),
            traced_outcome,
            violated,
            m.queue_wait_ns,
            m.ttft_ns,
            m.token_latencies_ns.iter().sum(),
            tokens,
        );
        {
            let mut hists = self.comp_hists.lock();
            for c in Component::ALL {
                hists[c as usize]
                    .record_with_exemplar(trace.breakdown.component_ns(c), trace.request_id);
            }
        }
        self.recorder.record(*trace);
    }

    /// Resolves a request straight out of the queue (cancelled, shed,
    /// or drained at shutdown) — it waited but was never admitted.
    fn resolve_queued(&self, q: Queued, outcome: RequestOutcome) {
        let metrics = RequestMetrics {
            queue_wait_ns: q.enqueued_at.elapsed().as_nanos() as u64,
            ..Default::default()
        };
        self.record_request_hists(&metrics);
        let violated = self.account_outcome(q.req.class, &outcome, &metrics);
        if kt_trace::enabled() {
            // Never admitted, so the waterfall is just the queue span.
            let trace = Box::new(RequestTrace::begin(
                q.id(),
                q.req.class.index() as u32,
                q.enqueued_ns,
            ));
            self.finish_trace(trace, &outcome, violated, &metrics, 0);
        }
        q.slot.resolve(RequestResult {
            request_id: q.id(),
            outcome,
            tokens: Vec::new(),
            metrics,
        });
    }

    /// Per-wave service estimate for the slack predictor, read from
    /// the server's own latency histograms: TTFT p50, falling back to
    /// ITL p50, then 0 (an empty history predicts optimistically — the
    /// controller never sheds without evidence).
    fn service_estimate_ns(&self) -> u64 {
        let h = self.hists.lock();
        h.ttft
            .percentile(50.0)
            .filter(|&v| v > 0)
            .or_else(|| h.itl.percentile(50.0))
            .unwrap_or(0)
    }
}

/// A running continuous-batching server over one [`HybridEngine`].
///
/// Dropping the server shuts the scheduler down; queued and in-flight
/// requests resolve as cancelled.
pub struct Server {
    inner: Arc<ServerInner>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the scheduler thread over `engine`.
    ///
    /// # Errors
    ///
    /// Rejects an invalid configuration (`max_batch == 0`,
    /// `prefill_chunk == 0`, `step_token_budget < prefill_chunk`, or
    /// an [`SloPolicy`] with an unmeetable class target — zero, or a
    /// TTFT target below the class's ITL target, i.e. below one step's
    /// worth of budget, or a precision policy whose quantization groups
    /// do not divide the model dimensions) instead of papering over it.
    pub fn start(engine: Arc<HybridEngine>, cfg: ServerConfig) -> Result<Server, EngineError> {
        if cfg.max_batch == 0 {
            return Err(EngineError::config("ServerConfig.max_batch must be nonzero"));
        }
        if cfg.prefill_chunk == 0 {
            return Err(EngineError::config("ServerConfig.prefill_chunk must be nonzero"));
        }
        if cfg.step_token_budget < cfg.prefill_chunk {
            return Err(EngineError::config(format!(
                "ServerConfig.step_token_budget ({}) must be at least prefill_chunk ({})",
                cfg.step_token_budget, cfg.prefill_chunk
            )));
        }
        if cfg.min_prefix_len == 0 {
            return Err(EngineError::config("ServerConfig.min_prefix_len must be nonzero"));
        }
        // A precision policy whose group sizes do not divide the model
        // dimensions could never have packed these weights; reject the
        // inconsistent configuration up front.
        {
            let mcfg = engine.config();
            engine
                .engine_config()
                .precision
                .validate(mcfg.hidden, mcfg.dense_inter, mcfg.moe_inter)
                .map_err(|e| EngineError::config(e.to_string()))?;
        }
        // Under dynamic placement the expert cache must at least hold
        // one routed expert, or it can never admit anything and every
        // step pays miss bookkeeping for a cache that stays empty.
        if engine.engine_config().placement == PlacementPolicy::Dynamic {
            let expert = engine.expert_weight_bytes().unwrap_or(0);
            let budget = engine.engine_config().expert_cache_bytes;
            if budget < expert {
                return Err(EngineError::config(format!(
                    "EngineConfig.expert_cache_bytes ({budget}) cannot hold a single \
                     routed expert ({expert} bytes): the dynamic-placement cache could \
                     never admit an expert"
                )));
            }
        }
        if let Some(policy) = &cfg.slo {
            for class in SloClass::ALL {
                let t = policy.target(class);
                if t.ttft_ns == 0 || t.itl_ns == 0 {
                    return Err(EngineError::config(format!(
                        "SloPolicy target for class {:?} must be nonzero (ttft={}, itl={})",
                        class, t.ttft_ns, t.itl_ns
                    )));
                }
                // A first token needs at least one full step, and the
                // ITL target is the class's own floor on step time —
                // a tighter TTFT admits work that can never meet it.
                if t.ttft_ns < t.itl_ns {
                    return Err(EngineError::config(format!(
                        "SloPolicy ttft target for class {:?} ({} ns) is below one step's \
                         worth of budget (itl target {} ns): the class is unmeetable",
                        class, t.ttft_ns, t.itl_ns
                    )));
                }
            }
        }
        let mut pool = KvCachePool::for_prototype(&engine.fresh_cache(), cfg.max_batch);
        if cfg.prefix_cache_bytes > 0 {
            pool = pool.with_prefix_cache(PrefixCacheConfig {
                capacity_bytes: cfg.prefix_cache_bytes,
                min_prefix_len: cfg.min_prefix_len,
            });
        }
        kt_trace::enable_from_env();
        let inner = Arc::new(ServerInner {
            engine,
            pool,
            queue: Mutex::new(VecDeque::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(ServeStats::default()),
            hists: Mutex::new(LatencyHists::default()),
            class_stats: Mutex::new([ClassCounters::default(); 3]),
            submit_seq: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            recorder: FlightRecorder::new(),
            comp_hists: Mutex::new(std::array::from_fn(|_| LogHistogram::new())),
            cfg,
        });
        let loop_inner = Arc::clone(&inner);
        let scheduler = std::thread::Builder::new()
            .name("kt-serve-scheduler".into())
            .spawn(move || scheduler_loop(&loop_inner))
            .expect("spawn scheduler thread");
        Ok(Server {
            inner,
            scheduler: Some(scheduler),
        })
    }

    /// Submits a request and returns a handle to wait on or cancel.
    /// Invalid requests (empty prompt, out-of-vocab token, prompt +
    /// `max_new` beyond the cache capacity) resolve immediately as
    /// failed instead of poisoning a batch.
    pub fn submit(&self, req: Request) -> RequestHandle {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = RequestSlot::new(id);
        let handle = RequestHandle {
            slot: Arc::clone(&slot),
        };
        self.inner.class_stats.lock()[req.class.index()].submitted += 1;
        if let Err(error) = self.validate(&req) {
            // Never queued: counters only, no queue-wait sample.
            self.inner.account_outcome(
                req.class,
                &RequestOutcome::Failed { error: error.clone() },
                &RequestMetrics::default(),
            );
            slot.resolve(RequestResult {
                request_id: id,
                outcome: RequestOutcome::Failed { error },
                tokens: Vec::new(),
                metrics: RequestMetrics::default(),
            });
            return handle;
        }
        // A prompt that already ends in the stop token has nothing to
        // generate: the first sampled token could only ever trail the
        // stop. Resolve it completed with zero tokens instead of
        // spending prefill on it.
        if req.stop_token.is_some() && req.prompt.last().copied() == req.stop_token {
            self.inner.account_outcome(
                req.class,
                &RequestOutcome::Completed,
                &RequestMetrics::default(),
            );
            slot.resolve(RequestResult {
                request_id: id,
                outcome: RequestOutcome::Completed,
                tokens: Vec::new(),
                metrics: RequestMetrics::default(),
            });
            return handle;
        }
        let seq_no = self.inner.submit_seq.fetch_add(1, Ordering::Relaxed);
        let mut queue = self.inner.queue.lock();
        queue.push_back(Queued {
            req,
            slot,
            enqueued_at: Instant::now(),
            enqueued_ns: kt_trace::now_ns(),
            seq_no,
        });
        drop(queue);
        self.inner.wakeup.notify_all();
        handle
    }

    /// Snapshot of the aggregate serving statistics, with the engine's
    /// cumulative step-arena counters and virtual-GPU launch counters
    /// folded in.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.inner.stats.lock().clone();
        s.set_arena(&self.inner.engine.workspace_stats());
        s.set_launch(&self.inner.engine.launch_stats());
        s.set_pool(&self.inner.pool.occupancy());
        if let Some(px) = self.inner.pool.prefix_stats() {
            s.set_prefix(&px);
        }
        if let Some(x) = self.inner.engine.expert_cache_stats() {
            s.set_expert_cache(&x);
        }
        if let (Some(bytes), Some(dtype)) = (
            self.inner.engine.expert_weight_bytes(),
            self.inner.engine.expert_weight_dtype(),
        ) {
            s.set_weight_precision(bytes as u64, dtype.name());
        }
        s
    }

    /// Per-class outcome and SLO counters, indexed by
    /// [`SloClass::index`]. Populated whether or not an SLO policy is
    /// active (violation fields stay zero without one).
    pub fn class_stats(&self) -> [ClassCounters; 3] {
        *self.inner.class_stats.lock()
    }

    /// Prometheus-style text exposition of the serving metrics:
    /// request/token/step counters, queue and batch gauges, the
    /// engine's arena and virtual-GPU launch counters, the `kt_slo_*`
    /// SLO counters (shed, violations, per-class outcomes), the
    /// `kt_build_info` identity gauge, the queue-wait / TTFT /
    /// inter-token latency histograms (log₂ buckets, cumulative
    /// `_bucket{le=...}` form), and the per-component
    /// `kt_latency_component_seconds` histogram family with worst
    /// request-id exemplars on its buckets. Formatting goes through
    /// [`crate::metrics`] so every family carries exactly one
    /// `# HELP`/`# TYPE` pair and label values are escaped. Suitable
    /// for serving at a `/metrics` endpoint verbatim.
    pub fn stats_text(&self) -> String {
        let s = self.stats();
        let mut out = String::with_capacity(4096);
        push_counter(&mut out, "kt_requests_completed_total", "Requests that ran to completion.", s.completed);
        push_counter(&mut out,"kt_requests_cancelled_total", "Requests cancelled by their client.", s.cancelled);
        push_counter(&mut out,"kt_requests_failed_total", "Requests that failed with an engine error.", s.failed);
        push_counter(&mut out,"kt_requests_shed_total", "Requests shed by the admission controller.", s.shed);
        push_counter(&mut out,"kt_tokens_generated_total", "Tokens emitted across all requests.", s.tokens_generated);
        push_counter(&mut out,"kt_steps_total", "Continuous-batching steps executed.", s.steps);
        push_counter(&mut out,"kt_prefill_chunks_total", "Prefill chunks executed.", s.prefill_chunks);
        push_counter(&mut out,"kt_prefill_tokens_total", "Prompt tokens fed through prefill chunks.", s.prefill_tokens);
        push_counter(&mut out,"kt_gpu_kernel_launches_total", "Kernels launched individually on the virtual GPU.", s.gpu_kernel_launches);
        push_counter(&mut out,"kt_gpu_host_funcs_total", "Host-function callbacks executed in-stream.", s.gpu_host_funcs);
        push_counter(&mut out,"kt_gpu_graph_replays_total", "Graph replays (one launch each).", s.gpu_graph_replays);
        push_counter(&mut out,"kt_gpu_graph_ops_total", "Ops executed via graph replay.", s.gpu_graph_ops);
        push_counter(&mut out,"kt_gpu_launch_overhead_ns_total", "Simulated launch latency charged on the device.", s.gpu_launch_overhead_ns);
        push_counter(&mut out,"kt_gpu_busy_ns_total", "Nanoseconds the device spent executing ops.", s.gpu_busy_ns);
        push_counter(&mut out,"kt_arena_allocations_total", "Fresh heap allocations performed by the step arenas.", s.arena_allocations);
        push_counter(&mut out,"kt_arena_bytes_allocated_total", "Bytes served by fresh heap allocations.", s.arena_bytes_allocated);
        push_counter(&mut out,"kt_arena_bytes_served_total", "Bytes served by reusing an existing arena buffer.", s.arena_bytes_served);
        push_counter(&mut out,"kt_prefix_lookups_total", "Prefix-cache lookups at admission.", s.prefix_lookups);
        push_counter(&mut out,"kt_prefix_hits_total", "Lookups that matched a reusable prefix.", s.prefix_hits);
        push_counter(&mut out,"kt_prefix_misses_total", "Lookups that matched nothing reusable.", s.prefix_misses);
        push_counter(&mut out,"kt_prefix_hit_tokens_total", "Prompt tokens seeded from cached prefixes instead of prefilled.", s.prefix_hit_tokens);
        push_counter(&mut out,"kt_prefix_insertions_total", "Prefix segments frozen into the cache.", s.prefix_insertions);
        push_counter(&mut out,"kt_prefix_evictions_total", "Prefix segments evicted by the byte budget.", s.prefix_evictions);
        push_counter(&mut out,"kt_prefix_evicted_bytes_total", "Bytes freed by prefix eviction.", s.prefix_evicted_bytes);
        push_counter(&mut out,"kt_expert_cache_hits_total", "Expert-cache lookups that found the expert resident on the vGPU.", s.expert_cache_hits);
        push_counter(&mut out,"kt_expert_cache_misses_total", "Expert-cache lookups for non-resident experts.", s.expert_cache_misses);
        push_counter(&mut out,"kt_expert_cache_insertions_total", "Experts admitted into the vGPU cache.", s.expert_cache_insertions);
        push_counter(&mut out,"kt_expert_cache_evictions_total", "Experts evicted for higher-value ones.", s.expert_cache_evictions);
        push_counter(&mut out,"kt_expert_cache_evicted_bytes_total", "Bytes freed by expert eviction.", s.expert_cache_evicted_bytes);
        // Per-expert gating popularity, label form. Dense (and so far
        // idle) layers are skipped to bound the exposition size.
        {
            let profile = self.inner.engine.expert_profile();
            push_family(
                &mut out,
                "kt_expert_hits_total",
                "counter",
                "Routed-expert activations per (layer, expert).",
            );
            for layer in 0..profile.n_layers() {
                if profile.total(layer) == 0 {
                    continue;
                }
                for e in 0..profile.n_experts() {
                    let l = layer.to_string();
                    let x = e.to_string();
                    push_sample(
                        &mut out,
                        "kt_expert_hits_total",
                        &[("layer", &l), ("expert", &x)],
                        profile.count(layer, e),
                    );
                }
            }
        }
        push_counter(&mut out,"kt_slo_shed_total", "Requests shed for negative predicted slack.", s.shed);
        push_counter(&mut out,"kt_slo_ttft_violations_total", "Resolved requests that missed their TTFT target.", s.slo_ttft_violations);
        push_counter(&mut out,"kt_slo_itl_violations_total", "Resolved requests with an inter-token gap over the ITL target.", s.slo_itl_violations);
        push_counter(&mut out,"kt_slo_met_total", "Completed requests that met both SLO targets.", s.slo_met);
        // Per-class outcome counters, Prometheus label form.
        let cs = self.class_stats();
        for (name, help, pick) in [
            (
                "kt_slo_class_submitted_total",
                "Requests submitted per SLO class.",
                (|c: &ClassCounters| c.submitted) as fn(&ClassCounters) -> u64,
            ),
            (
                "kt_slo_class_completed_total",
                "Requests completed per SLO class.",
                |c: &ClassCounters| c.completed,
            ),
            (
                "kt_slo_class_shed_total",
                "Requests shed per SLO class.",
                |c: &ClassCounters| c.shed,
            ),
            (
                "kt_slo_class_slo_met_total",
                "Completed requests meeting both targets per SLO class.",
                |c: &ClassCounters| c.slo_met,
            ),
        ] {
            push_family(&mut out, name, "counter", help);
            for class in SloClass::ALL {
                push_sample(
                    &mut out,
                    name,
                    &[("class", class.as_str())],
                    pick(&cs[class.index()]),
                );
            }
        }
        push_gauge(&mut out,"kt_prefix_resident_bytes", "Bytes resident in frozen prefix segments.", s.prefix_resident_bytes as f64);
        push_gauge(&mut out,"kt_prefix_entries", "Prefix segments currently resident.", s.prefix_entries as f64);
        push_gauge(&mut out,"kt_expert_cache_resident_bytes", "Bytes held by vGPU-resident experts.", s.expert_cache_resident_bytes as f64);
        push_gauge(&mut out,"kt_expert_cache_entries", "Experts currently vGPU-resident.", s.expert_cache_entries as f64);
        // Weight-precision gauge with the routed experts' storage dtype
        // as a label, so dashboards can key bandwidth/footprint math on
        // the serving precision.
        if !s.expert_weight_dtype.is_empty() {
            push_family(
                &mut out,
                "kt_expert_weight_bytes",
                "gauge",
                "Stored bytes of one routed expert's packed weights.",
            );
            push_sample(
                &mut out,
                "kt_expert_weight_bytes",
                &[("dtype", &s.expert_weight_dtype)],
                s.expert_weight_bytes,
            );
        }
        push_gauge(&mut out,"kt_kv_leases_in_use", "KV caches currently leased to sequences.", s.kv_leases_in_use as f64);
        push_gauge(&mut out,"kt_kv_leases_free", "Reset KV caches parked in the pool.", s.kv_leases_free as f64);
        push_gauge(&mut out,"kt_kv_leases_peak", "High-water mark of concurrent leases.", s.kv_leases_peak as f64);
        push_gauge(&mut out,"kt_kv_pooled_bytes", "Heap bytes retained by parked pool caches.", s.kv_pooled_bytes as f64);
        push_gauge(&mut out,"kt_queue_depth", "Requests currently waiting for admission.", self.queued() as f64);
        push_gauge(&mut out,"kt_active_sequences", "Sequences currently admitted (leased caches).", self.active() as f64);
        push_gauge(&mut out,"kt_peak_queue_depth", "Deepest admission queue observed.", s.peak_queue_depth as f64);
        push_gauge(&mut out,"kt_mean_batch_occupancy", "Mean active sequences per step.", s.mean_occupancy());
        push_gauge(&mut out,"kt_arena_high_water_bytes", "High-water mark of bytes held across step arenas.", s.arena_high_water_bytes as f64);
        // Build/runtime identity: which binary, commit, kernel ISA
        // level, and placement policy produced these numbers. Constant
        // 1 so dashboards join it onto any other family by instance.
        {
            push_family(
                &mut out,
                "kt_build_info",
                "gauge",
                "Build and runtime identity of this replica (constant 1; the labels are the payload).",
            );
            let simd = match kt_core::effective_simd_level() {
                SimdLevel::Scalar => "scalar",
                SimdLevel::Avx2Fma => "avx2_fma",
                SimdLevel::Avx512 => "avx512",
            };
            let placement = match self.inner.engine.engine_config().placement {
                PlacementPolicy::Static => "static",
                PlacementPolicy::Dynamic => "dynamic",
            };
            push_sample(
                &mut out,
                "kt_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("git_hash", env!("KT_GIT_HASH")),
                    ("simd", simd),
                    ("placement", placement),
                ],
                1,
            );
        }
        {
            let hists = self.inner.hists.lock();
            push_histogram(
                &mut out,
                "kt_request_queue_wait_ns",
                "Queue wait of every resolved request (including those cancelled, shed, or failed while queued).",
                &hists.queue_wait,
            );
            push_histogram(
                &mut out,
                "kt_request_ttft_ns",
                "Time from admission to first emitted token.",
                &hists.ttft,
            );
            push_histogram(
                &mut out,
                "kt_request_inter_token_ns",
                "Inter-token latencies across all requests.",
                &hists.itl,
            );
        }
        // Per-component end-to-end latency attribution: one labeled
        // histogram per Component, in seconds (Prometheus base units),
        // each bucket carrying the worst request id it has seen as an
        // OpenMetrics-style exemplar — the bridge from a dashboard's
        // slowest bucket to `Server::breakdown` / the flight recorder.
        {
            push_family(
                &mut out,
                "kt_latency_component_seconds",
                "histogram",
                "Per-request end-to-end latency attributed to each pipeline component.",
            );
            let comp = self.inner.comp_hists.lock();
            for c in Component::ALL {
                push_histogram_samples_seconds(
                    &mut out,
                    "kt_latency_component_seconds",
                    &[("component", c.as_str())],
                    &comp[c as usize],
                );
            }
        }
        out
    }

    /// The three server latency histograms (queue wait, TTFT,
    /// inter-token), cloned, for programmatic percentile queries.
    pub fn latency_histograms(&self) -> (LogHistogram, LogHistogram, LogHistogram) {
        let h = self.inner.hists.lock();
        (h.queue_wait.clone(), h.ttft.clone(), h.itl.clone())
    }

    /// The latency attribution of a recently resolved request: where
    /// its measured queue wait + TTFT + decode time went, by
    /// [`Component`]. Requires tracing to have been enabled while the
    /// request ran (`KT_TRACE=1` or [`kt_trace::enable`]); `None` if it
    /// was not traced or has aged out of the flight recorder.
    pub fn breakdown(&self, request_id: u64) -> Option<RequestBreakdown> {
        self.inner.recorder.breakdown(request_id)
    }

    /// Request ids frozen in the flight recorder (SLO violations,
    /// sheds, failures), oldest first.
    pub fn captured_request_ids(&self) -> Vec<u64> {
        self.inner.recorder.captured_ids()
    }

    /// Breakdowns of every request still in the recorder's recent
    /// ring, oldest first.
    pub fn recent_breakdowns(&self) -> Vec<RequestBreakdown> {
        self.inner.recorder.recent_breakdowns()
    }

    /// One request's waterfall as a standalone Chrome-trace JSON array
    /// (loadable in Perfetto): queue-wait span, per-step spans with
    /// component sub-spans, first-token instant — all on the request's
    /// own track, every event labeled with its id.
    pub fn export_request_trace(&self, request_id: u64) -> Option<String> {
        self.inner.recorder.export_chrome(request_id)
    }

    /// Every frozen (violating/shed/failed) waterfall as one
    /// Chrome-trace JSON array — the artifact `trace_summarize`
    /// consumes.
    pub fn export_captured_traces(&self) -> String {
        self.inner.recorder.export_captured_chrome()
    }

    /// Sequences currently admitted (leased caches).
    pub fn active(&self) -> usize {
        self.inner.pool.in_use()
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Stops the scheduler and resolves every unfinished request as
    /// cancelled. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wakeup.notify_all();
        if let Some(t) = self.scheduler.take() {
            let _ = t.join();
        }
    }

    fn validate(&self, req: &Request) -> Result<(), String> {
        if req.prompt.is_empty() {
            return Err("request prompt is empty".into());
        }
        let vocab = self.inner.engine.config().vocab;
        if let Some(&t) = req.prompt.iter().find(|&&t| t as usize >= vocab) {
            return Err(format!("prompt token {t} outside vocab {vocab}"));
        }
        let capacity = self.inner.pool.capacity();
        if req.prompt.len() + req.max_new > capacity {
            return Err(format!(
                "prompt ({}) + max_new ({}) exceeds cache capacity {capacity}",
                req.prompt.len(),
                req.max_new
            ));
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("max_batch", &self.inner.cfg.max_batch)
            .field("prefill_chunk", &self.inner.cfg.prefill_chunk)
            .field("step_token_budget", &self.inner.cfg.step_token_budget)
            .field("slo", &self.inner.cfg.slo.is_some())
            .field("active", &self.active())
            .field("queued", &self.queued())
            .finish()
    }
}

fn scheduler_loop(inner: &ServerInner) {
    let mut active: Vec<ActiveSeq> = Vec::new();
    loop {
        // Join arrivals (and park while idle).
        admit(inner, &mut active);
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Retire cancellations requested since the last step, before
        // spending a step on them. A sequence cancelled between prefill
        // chunks retires here too: its lease goes back to the pool at
        // the step boundary, mid-prompt.
        retire_cancelled(inner, &mut active);
        if active.is_empty() {
            continue;
        }

        {
            let mut stats = inner.stats.lock();
            stats.steps += 1;
            stats.occupancy_sum += active.len() as u64;
            let depth = inner.queue.lock().len() as u64;
            stats.queue_depth_sum += depth;
            stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        }

        step(inner, &mut active);
    }
    drain(inner, active);
}

/// Sheds queued requests whose predicted slack is negative (policy
/// permitting). Runs inside the admission loop, before leases are
/// taken, so shed requests never touch the pool or the engine.
fn shed_pass(inner: &ServerInner, policy: &SloPolicy, queue: &mut VecDeque<Queued>, active_len: usize) {
    if !policy.shed || queue.is_empty() {
        return;
    }
    let service = inner.service_estimate_ns();
    if service == 0 {
        // No latency evidence yet: the predictor cannot justify
        // discarding work.
        return;
    }
    // Examine in admission order so each request's `queued_ahead` is
    // its actual position among the competition.
    let mut order: Vec<usize> = (0..queue.len()).collect();
    order.sort_by_key(|&i| (queue[i].req.class.priority(), queue[i].seq_no));
    let mut to_shed: Vec<(usize, i64)> = Vec::new();
    for (pos, &i) in order.iter().enumerate() {
        let q = &queue[i];
        let class = q.req.class;
        let inputs = SlackInputs {
            service_estimate_ns: service,
            active: active_len,
            max_batch: inner.cfg.max_batch,
            queued_ahead: pos,
            waited_ns: q.enqueued_at.elapsed().as_nanos() as u64,
        };
        let slack = slo::slack_ns(policy.target(class), slo::predicted_ttft_ns(&inputs));
        kt_trace::counter_add(CounterKind::SlackPredictions, 1);
        if slo::shed_decision(policy, class, slack) {
            to_shed.push((i, slack));
        }
    }
    // Remove back to front so earlier indices stay valid.
    to_shed.sort_unstable_by_key(|s| std::cmp::Reverse(s.0));
    for (i, slack) in to_shed {
        let q = queue.remove(i).expect("index in bounds");
        kt_trace::counter_add(CounterKind::SloShed, 1);
        kt_trace::instant(
            SpanKind::ServeShed,
            q.req.class.index() as u32,
            ((-slack) as u64 / 1_000).min(u32::MAX as u64) as u32,
        );
        inner.resolve_queued(q, RequestOutcome::Shed);
    }
}

/// Admits queued requests while the batch has room; blocks when there
/// is nothing to do at all. With an SLO policy, admission picks the
/// earliest request of the most urgent class (FIFO within a class)
/// and sheds negative-slack lower-class work first.
fn admit(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    let priority_aware = inner.cfg.slo.is_some();
    loop {
        let mut queue = inner.queue.lock();
        // Resolve cancellations anywhere in the queue — with priority
        // admission the front is not necessarily next, so the whole
        // queue is scanned. The queue wait still counts toward the
        // histograms.
        let mut i = 0;
        while i < queue.len() {
            if queue[i].slot.cancel_requested() {
                let q = queue.remove(i).expect("index in bounds");
                inner.resolve_queued(q, RequestOutcome::Cancelled);
            } else {
                i += 1;
            }
        }
        if let Some(policy) = &inner.cfg.slo {
            shed_pass(inner, policy, &mut queue, active.len());
        }
        while !queue.is_empty() && active.len() < inner.cfg.max_batch {
            let keys: Vec<(usize, u64)> = queue
                .iter()
                .map(|q| (q.req.class.priority(), q.seq_no))
                .collect();
            let pick = sched::pick_next(&keys, priority_aware).expect("queue non-empty");
            let Some((mut lease, mut seeded)) = inner.pool.lease_for_prompt(&queue[pick].req.prompt)
            else {
                break;
            };
            // Belt and braces: a seeded cache must look exactly like a
            // partially prefilled one to the engine. If it does not,
            // fall back to a cold prefill rather than feed the batch a
            // corrupt cache.
            if seeded > 0 && inner.engine.validate_cache(&lease.cache).is_err() {
                lease.cache.reset();
                seeded = 0;
            }
            let q = queue.remove(pick).expect("pick in bounds");
            let queue_wait_ns = q.enqueued_at.elapsed().as_nanos() as u64;
            let ctx = TraceCtx::for_request(q.id());
            kt_trace::instant(
                SpanKind::ServeAdmit,
                ctx.tag(),
                (queue_wait_ns / 1_000).min(u32::MAX as u64) as u32,
            );
            let trace = kt_trace::enabled().then(|| {
                let mut t = Box::new(RequestTrace::begin(
                    q.id(),
                    q.req.class.index() as u32,
                    q.enqueued_ns,
                ));
                t.admitted(kt_trace::now_ns());
                t
            });
            active.push(ActiveSeq {
                slot: q.slot,
                lease,
                rng: StdRng::seed_from_u64(q.req.seed),
                req: q.req,
                prefilled: seeded,
                next_token: None,
                tokens: Vec::new(),
                metrics: RequestMetrics {
                    queue_wait_ns,
                    ..Default::default()
                },
                admitted_at: Instant::now(),
                last_token_at: None,
                ctx,
                trace,
            });
        }
        // Park only when fully idle; otherwise go run a step.
        if !active.is_empty() || inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !queue.is_empty() {
            // Idle but queue non-empty can only mean foreign leases
            // hold the pool; yield and retry rather than spin.
            drop(queue);
            std::thread::yield_now();
            continue;
        }
        inner.wakeup.wait(&mut queue);
    }
}

fn retire_cancelled(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    let mut i = 0;
    while i < active.len() {
        if active[i].slot.cancel_requested() {
            // Order-preserving removal keeps the surviving batch
            // composition deterministic.
            let seq = active.remove(i);
            seq.resolve(RequestOutcome::Cancelled, inner);
        } else {
            i += 1;
        }
    }
}

/// Composes the step under the token budget via the pure
/// [`sched::compose_plan`]: every decode row first (one token each,
/// always admitted), then pending prefill chunks — in admission order
/// for FIFO, in (class priority, admission) order with at-risk ITL
/// throttling under an SLO policy. Returns one `Work` slot per active
/// sequence; `None` idles the sequence this step.
fn compose(inner: &ServerInner, active: &[ActiveSeq]) -> Vec<Option<Work>> {
    let policy = inner.cfg.slo.as_ref();
    let views: Vec<SeqView> = active
        .iter()
        .map(|seq| {
            let prompt_remaining = seq.req.prompt.len() - seq.prefilled;
            // A decode row is at risk when more than half its ITL
            // target has already elapsed since its last token — the
            // next step must stay short or the target is gone.
            let at_risk = policy.is_some_and(|p| {
                prompt_remaining == 0
                    && seq.last_token_at.is_some_and(|t| {
                        (t.elapsed().as_nanos() as u64).saturating_mul(2)
                            > p.target(seq.req.class).itl_ns
                    })
            });
            SeqView {
                prompt_remaining,
                priority: policy.map_or(0, |_| seq.req.class.priority()),
                at_risk,
            }
        })
        .collect();
    let cfg = ComposeCfg {
        prefill_chunk: inner.cfg.prefill_chunk,
        step_token_budget: inner.cfg.step_token_budget,
        priority_aware: policy.is_some(),
    };
    sched::compose_plan(&cfg, &views)
        .into_iter()
        .zip(active)
        .map(|(work, seq)| {
            work.map(|w| match w {
                PlanWork::Decode => Work::Decode(
                    seq.next_token
                        .expect("active sequence past prefill holds its next token"),
                ),
                PlanWork::Chunk { len, last } => Work::Chunk { len, last },
            })
        })
        .collect()
}

/// Runs one batched engine step over the composed plan and
/// post-processes every scheduled sequence.
fn step(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    let plan = compose(inner, active);
    let step_tokens: usize = plan
        .iter()
        .flatten()
        .map(|w| match w {
            Work::Decode(_) => 1,
            Work::Chunk { len, .. } => *len,
        })
        .sum();
    let scheduled_seqs = plan.iter().flatten().count();
    let _span = kt_trace::span_ab(
        SpanKind::ServeStep,
        scheduled_seqs as u32,
        step_tokens as u32,
    );

    // Build the batch from the scheduled sequences; `scheduled[b]` maps
    // batch slot `b` back to its index in `active`.
    let mut scheduled: Vec<usize> = Vec::with_capacity(active.len());
    let mut batch: Vec<BatchSeq> = Vec::with_capacity(active.len());
    for (i, (seq, work)) in active.iter_mut().zip(&plan).enumerate() {
        let Some(work) = work else { continue };
        let cache = std::mem::replace(&mut seq.lease.cache, KvCache::new(&[], 0));
        batch.push(
            match *work {
                Work::Decode(t) => BatchSeq::decode(cache, t),
                Work::Chunk { len, last } => {
                    let chunk = seq.req.prompt[seq.prefilled..seq.prefilled + len].to_vec();
                    if last {
                        BatchSeq::prefill(cache, chunk)
                    } else {
                        BatchSeq::prefill_chunk(cache, chunk)
                    }
                }
            }
            .with_tag(seq.ctx.tag()),
        );
        scheduled.push(i);
    }
    debug_assert!(!batch.is_empty(), "compose schedules at least one sequence");

    // Attribution snapshots bracket the forward: the per-kind phase
    // deltas across it, mapped through `step_components`, decompose
    // this step's wall time for every traced request riding in it.
    let attrib = kt_trace::enabled()
        .then(|| (kt_trace::now_ns(), kt_trace::sink().phase_snapshot()));
    let result = inner.engine.forward_batch(&mut batch);
    // Caches come back even on error; return them to their leases.
    for (&i, slot) in scheduled.iter().zip(batch.iter_mut()) {
        active[i].lease.cache = std::mem::replace(&mut slot.cache, KvCache::new(&[], 0));
    }
    if let Some((start_ns, before)) = attrib {
        let wall_ns = kt_trace::now_ns().saturating_sub(start_ns);
        let after = kt_trace::sink().phase_snapshot();
        let mut deltas = [0u64; N_SPAN_KINDS];
        for (d, (a, b)) in deltas.iter_mut().zip(after.iter().zip(before.iter())) {
            *d = a.saturating_sub(*b);
        }
        let (components, cpu_busy_ns) = step_components(&deltas, wall_ns);
        for (seq, work) in active.iter_mut().zip(&plan) {
            let Some(trace) = seq.trace.as_mut() else { continue };
            // Scheduled sequences experienced the whole step (batched
            // rows share every phase), so each gets the full step
            // attribution; sequences left out of this step aged a
            // whole step without progress — that wall time is queue
            // wait from their point of view.
            match *work {
                Some(Work::Chunk { len, last }) => trace.push_step(StepTrace::prefill(
                    trace.steps_total,
                    start_ns,
                    wall_ns,
                    len as u32,
                    last,
                )),
                Some(Work::Decode(_)) => trace.push_step(StepTrace::decode(
                    trace.steps_total,
                    start_ns,
                    wall_ns,
                    components,
                    cpu_busy_ns,
                )),
                None => trace.add_idle(wall_ns),
            }
            seq.ctx.step = trace.steps_total;
        }
    }

    match result {
        Ok(logits) => {
            // Pass 1: advance every scheduled sequence in batch order.
            // The pairing between `scheduled`/`logits` must not shift
            // mid-iteration, so no removal happens here; finished
            // sequences are retired in pass 2.
            for (&i, l) in scheduled.iter().zip(logits) {
                let seq = &mut active[i];
                match plan[i].expect("scheduled implies planned") {
                    Work::Chunk { len, last } => {
                        seq.prefilled += len;
                        kt_trace::instant(SpanKind::ServePrefillChunk, len as u32, seq.ctx.tag());
                        {
                            let mut stats = inner.stats.lock();
                            stats.prefill_chunks += 1;
                            stats.prefill_tokens += len as u64;
                        }
                        if last {
                            let l = l.expect("final chunk requested logits");
                            sample_next(inner, seq, l);
                        } else {
                            debug_assert!(l.is_none(), "mid-chunk produces no logits");
                        }
                    }
                    Work::Decode(_) => {
                        let l = l.expect("decode row requested logits");
                        sample_next(inner, seq, l);
                    }
                }
            }
            // Pass 2: retire finished sequences, preserving the order
            // of survivors so the batch composition stays a
            // deterministic function of admission order.
            let mut i = 0;
            while i < active.len() {
                if active[i].is_done() {
                    let seq = active.remove(i);
                    seq.resolve(RequestOutcome::Completed, inner);
                } else {
                    i += 1;
                }
            }
        }
        Err(e) => {
            // A step error poisons the whole batch: every in-flight
            // request fails (but still resolves), caches go back to
            // the pool (release resets them).
            let error = e.to_string();
            for seq in active.drain(..) {
                seq.resolve(
                    RequestOutcome::Failed {
                        error: error.clone(),
                    },
                    inner,
                );
            }
        }
    }
}

/// Samples the sequence's next token from the step's logits (last row:
/// the newest position) and applies stop-token/length policy.
fn sample_next(inner: &ServerInner, seq: &mut ActiveSeq, l: Matrix) {
    let next = seq.req.sampler.sample(l.row(l.rows() - 1), &mut seq.rng);
    // Sampled — hand the logits buffer back to the engine's step arena
    // for the next batch.
    inner.engine.recycle_logits(l);
    let now = Instant::now();
    match seq.last_token_at {
        None => {
            seq.metrics.ttft_ns = Some(now.duration_since(seq.admitted_at).as_nanos() as u64);
        }
        Some(prev) => {
            seq.metrics
                .token_latencies_ns
                .push(now.duration_since(prev).as_nanos() as u64);
        }
    }
    seq.last_token_at = Some(now);
    seq.tokens.push(next);
    inner.stats.lock().tokens_generated += 1;

    let hit_stop = seq.req.stop_token == Some(next);
    let hit_len = seq.tokens.len() >= seq.req.max_new;
    seq.next_token = if hit_stop || hit_len { None } else { Some(next) };
}

/// Resolves everything left at shutdown as cancelled.
fn drain(inner: &ServerInner, active: Vec<ActiveSeq>) {
    for seq in active {
        seq.resolve(RequestOutcome::Cancelled, inner);
    }
    let leftovers: Vec<Queued> = inner.queue.lock().drain(..).collect();
    for q in leftovers {
        inner.resolve_queued(q, RequestOutcome::Cancelled);
    }
}
