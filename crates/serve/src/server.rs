//! The continuous-batching scheduler with chunked prefill and
//! SLO-aware admission.
//!
//! One scheduler thread owns the engine for the server's lifetime and
//! runs the serving loop: between engine steps it joins newly arrived
//! requests into the batch (admission-controlled by the KV-cache pool)
//! and retires finished or cancelled sequences.
//!
//! Each step is composed under a **token budget** instead of running
//! every admitted prompt whole: all active decode rows join first (one
//! token each), then pending prompts contribute at most one chunk of at
//! most [`ServerConfig::prefill_chunk`] tokens apiece, in admission
//! order, while the step's total stays within
//! [`ServerConfig::step_token_budget`]. A long prompt therefore
//! prefills across several steps while established sequences keep
//! decoding in the same batched forwards — decode inter-token latency
//! is bounded by the budget, not by the longest queued prompt. Chunked
//! prefill is bitwise identical to monolithic prefill (the engine's
//! position-dependent math is row-stable), so scheduling stays pure
//! orchestration.
//!
//! With [`ServerConfig::slo`] set, the scheduler additionally becomes
//! **SLO-aware**:
//!
//! * Admission picks the earliest request of the most urgent
//!   [`SloClass`] present instead of the queue front (FIFO is
//!   preserved within a class).
//! * An admission controller predicts each queued request's TTFT from
//!   the server's own latency histograms (one service wave per
//!   batch-width cohort ahead of it) and, when the policy allows
//!   shedding, resolves lower-class requests whose predicted slack
//!   against their TTFT target is negative as
//!   [`RequestOutcome::Shed`] — graceful load shedding instead of
//!   serving tokens that already missed their deadline. Interactive
//!   requests are never shed.
//! * Step composition allocates the prefill budget by class priority,
//!   and throttles prefill to a single chunk whenever a decode row is
//!   at risk of an ITL violation, reallocating the step budget toward
//!   keeping at-risk rows fast (the anti-starvation chunk grant is
//!   preserved).
//!
//! Scheduling stays pure orchestration either way: which requests run
//! when changes, the bits each surviving request produces do not.
//!
//! Admission additionally consults the pool's shared-prefix cache
//! (when [`ServerConfig::prefix_cache_bytes`] is nonzero): the longest
//! cached prefix of the prompt is copied into the fresh lease and the
//! scheduler prefills only the uncached suffix. Because cached rows
//! are frozen snapshots of rows the engine itself produced — and KV
//! rows are a prefix-deterministic function of the token prefix — the
//! seeded path yields bitwise-identical logits to a cold prefill. On
//! release, completed (and cancelled) sequences offer their fed-token
//! prefix back to the cache for future requests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use kt_core::{
    BatchSeq, EngineError, HybridEngine, PlacementPolicy, RequestMetrics, ServeStats, SimdLevel,
};
use kt_model::kvcache::KvCache;
use kt_model::paged::{SwappedKv, DEFAULT_PAGE_ROWS};
use kt_model::pool::{CacheLease, KvCachePool};
use kt_model::prefix::PrefixCacheConfig;
use kt_tensor::Matrix;
use kt_trace::{
    step_components, Component, CounterKind, FlightRecorder, LogHistogram, RequestBreakdown,
    RequestTrace, SpanKind, StepTrace, TraceCtx, TraceOutcome, N_COMPONENTS, N_SPAN_KINDS,
};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{
    push_counter, push_family, push_gauge, push_histogram, push_histogram_samples_seconds,
    push_sample,
};
use crate::preempt::{self, PreemptCostModel, PreemptMode, PreemptPolicy, VictimView};
use crate::request::{Request, RequestHandle, RequestOutcome, RequestResult, RequestSlot};
use crate::sched::{self, ComposeCfg, PlanWork, SeqView};
use crate::slo::{self, ClassCounters, SlackInputs, SloClass, SloPolicy};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum sequences active in one batched step (also sizes the
    /// KV-cache pool). Must be nonzero.
    pub max_batch: usize,
    /// Maximum prompt tokens one sequence prefills per step. Must be
    /// nonzero; a value at or above the longest admissible prompt
    /// reproduces monolithic (single-step) prefill.
    pub prefill_chunk: usize,
    /// Per-step token budget the scheduler composes each batched
    /// forward under: decode rows are admitted first (one token each),
    /// then pending prefill chunks fill the remainder. Must be at
    /// least `prefill_chunk`.
    pub step_token_budget: usize,
    /// Byte budget of the shared-prefix KV cache (frozen snapshots of
    /// released sequences, keyed by prompt tokens). `0` disables
    /// prefix reuse entirely; admission then always cold-prefills.
    pub prefix_cache_bytes: usize,
    /// Shortest prompt prefix worth seeding from the cache. Shorter
    /// matches are treated as misses (the copy would cost more than
    /// the prefill it saves). Must be nonzero.
    pub min_prefix_len: usize,
    /// Per-class SLO targets. `None` (the default) keeps the
    /// scheduler pure FIFO with no shedding — exactly the pre-SLO
    /// behavior. `Some` turns on priority admission, slack-based
    /// shedding (if the policy allows), and priority-aware step
    /// composition. Each class's targets must be nonzero with
    /// `ttft >= itl` (the first token needs at least one full step).
    pub slo: Option<SloPolicy>,
    /// Rows per KV page. Nonzero turns on the paged KV backend: leases
    /// allocate fixed-size pages on demand from a pool-wide block
    /// allocator, admission charges the pages a prompt actually needs
    /// instead of reserving a whole `max_seq` cache, warm prefix hits
    /// share frozen pages zero-copy (copy-on-write at the first
    /// divergence), and page pressure preempts running sequences
    /// (swap-or-recompute) instead of failing the step. `0` keeps the
    /// legacy monolithic (flat) leases. Outputs are bitwise identical
    /// either way.
    pub page_rows: usize,
    /// Total pages in the block allocator (paged mode only). `0` sizes
    /// it automatically: `max_batch` full-capacity sequences plus an
    /// allowance covering the prefix cache's byte budget. Pages are
    /// admission accounting units — page memory is allocated lazily —
    /// so a generous total costs nothing up front.
    pub kv_pool_pages: usize,
    /// How page-pressure preemption reclaims a victim's pages: swap to
    /// the host tier, drop-and-recompute, or per-victim by the
    /// hwsim-calibrated cost model (the default).
    pub preempt_policy: PreemptPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 8,
            prefill_chunk: 64,
            step_token_budget: 128,
            prefix_cache_bytes: 32 << 20,
            min_prefix_len: 4,
            slo: None,
            page_rows: DEFAULT_PAGE_ROWS,
            kv_pool_pages: 0,
            preempt_policy: PreemptPolicy::Auto,
        }
    }
}

/// A request waiting for admission.
struct Queued {
    req: Request,
    slot: Arc<RequestSlot>,
    enqueued_at: Instant,
    /// Submit time on the trace clock (sink epoch), anchoring the
    /// request's flight-recorder waterfall.
    enqueued_ns: u64,
    /// Process-wide submission counter: FIFO order within a class is
    /// exactly arrival order, whatever the queue's physical layout.
    seq_no: u64,
}

impl Queued {
    /// Server-assigned request id (fixed on the slot at submission).
    fn id(&self) -> u64 {
        self.slot.id
    }
}

/// What one active sequence does in the step being composed.
#[derive(Clone, Copy)]
enum Work {
    /// Decode one token (the sequence's next sampled token).
    Decode(u32),
    /// Prefill the next `len` prompt tokens; `last` marks the chunk
    /// that completes the feed (it samples the first token).
    Chunk { len: usize, last: bool },
    /// Re-feed one already-emitted generation as a sampling-suppressed
    /// decode row, rebuilding KV dropped by a recompute preemption.
    /// Expert Deferral is decode-row-only, so replaying a generation
    /// as a prefill chunk would write different KV bits; a replay row
    /// goes through the exact decode path the original token took,
    /// minus the LM head (its sample was already reported).
    Replay(u32),
}

/// A sequence currently in the batch.
struct ActiveSeq {
    slot: Arc<RequestSlot>,
    lease: CacheLease,
    req: Request,
    rng: StdRng,
    /// The token stream this activation feeds: the prompt on first
    /// admission; the prompt plus already-emitted generations on a
    /// recompute-resume. Prompt positions rebuild through the same
    /// chunked prefill (bitwise identical by the chunk invariance
    /// contract); generation positions replay as sampling-suppressed
    /// decode rows ([`Work::Replay`]), reproducing the exact bits the
    /// original decode steps wrote even with Expert Deferral on.
    feed: Vec<u32>,
    /// Feed tokens already in the cache (fed by the engine, restored
    /// from a swap, or seeded from the prefix cache). The sequence
    /// becomes a decode row once this reaches `feed.len()`.
    prefilled: usize,
    /// Sampled-but-not-yet-fed token carried across a preemption: fed
    /// as a plain decode (no fresh sampling) once `feed` completes.
    /// `None` outside a recompute-resume.
    resume_decode: Option<u32>,
    /// Next token to decode once the feed is fully prefilled.
    /// `None` before the first sample and after the last one.
    next_token: Option<u32>,
    tokens: Vec<u32>,
    metrics: RequestMetrics,
    admitted_at: Instant,
    last_token_at: Option<Instant>,
    /// Request identity threaded into every span this sequence causes:
    /// `ctx.tag()` rides in the engine's per-sequence label slots.
    ctx: TraceCtx,
    /// Per-request waterfall under construction; `None` when tracing
    /// was disabled at admission. Boxed: the trace is cold data next to
    /// the hot scheduling fields.
    trace: Option<Box<RequestTrace>>,
    /// Process-wide admission counter: victim selection preempts the
    /// newest admission within the least urgent class first.
    admit_seq: u64,
}

impl ActiveSeq {
    /// Whether generation ended (stop token or length) and the slot is
    /// ready to resolve.
    fn is_done(&self) -> bool {
        self.prefilled == self.feed.len()
            && self.resume_decode.is_none()
            && self.next_token.is_none()
            && !self.tokens.is_empty()
    }

    fn resolve(mut self, outcome: RequestOutcome, inner: &ServerInner) {
        inner.record_request_hists(&self.metrics);
        let violated = inner.account_outcome(self.req.class, &outcome, &self.metrics);
        if let Some(trace) = self.trace.take() {
            inner.finish_trace(trace, &outcome, violated, &self.metrics, self.tokens.len() as u32);
        }
        // Release first so the admission valve reopens before any
        // waiter reacts to the result. Completed and cancelled caches
        // hold valid prefix rows (prompt tokens, then fed generations),
        // so their release path also offers the prefix to the cache; a
        // failed step may have left the cache mid-write, so it goes
        // back without an insert (release resets it either way).
        if matches!(outcome, RequestOutcome::Failed { .. }) {
            let _ = inner.pool.release(self.lease);
        } else {
            // The token stream the cache rows encode: the fed feed
            // prefix, then generations decoded after the feed (the
            // feed itself already contains generations re-fed by a
            // recompute-resume, so those are not double counted).
            let len = self.lease.cache.seq_len();
            let from_feed = len.min(self.prefilled);
            let gen_in_feed = self.feed.len().saturating_sub(self.req.prompt.len());
            let from_gen =
                (len - from_feed).min(self.tokens.len().saturating_sub(gen_in_feed));
            let mut fed: Vec<u32> = Vec::with_capacity(from_feed + from_gen);
            fed.extend_from_slice(&self.feed[..from_feed]);
            fed.extend_from_slice(&self.tokens[gen_in_feed..gen_in_feed + from_gen]);
            let _ = inner.pool.release_with_prefix(self.lease, &fed);
        }
        self.slot.resolve(RequestResult {
            request_id: self.ctx.request_id,
            outcome,
            tokens: self.tokens,
            metrics: self.metrics,
        });
    }
}

/// How a preempted sequence's KV state comes back at resume.
enum ResumeState {
    /// Rows captured to host buffers; restored bit-for-bit into a
    /// fresh lease.
    Swapped(SwappedKv),
    /// Rows dropped; the feed re-prefills through the chunked path.
    Recompute,
}

/// A sequence evicted from the batch under page pressure, holding no
/// lease (its pages went back to the allocator). Everything needed to
/// resume bitwise — sampling RNG, emitted tokens, the pending decode
/// token, latency metrics, the trace — is carried across.
struct PreemptedSeq {
    slot: Arc<RequestSlot>,
    req: Request,
    rng: StdRng,
    /// Full logical feed at resume: prompt plus every generation whose
    /// row the cache held (or would have held) before eviction.
    feed: Vec<u32>,
    /// Sampled-but-not-fed token to decode once the feed is rebuilt.
    pending: Option<u32>,
    tokens: Vec<u32>,
    metrics: RequestMetrics,
    admitted_at: Instant,
    last_token_at: Option<Instant>,
    ctx: TraceCtx,
    trace: Option<Box<RequestTrace>>,
    admit_seq: u64,
    resume: ResumeState,
    /// Pages' worth of rows held on the host tier (0 for recompute);
    /// keeps the `kv_pages_swapped` gauge symmetric across swap-in,
    /// resolution, and drain.
    swapped_pages: u64,
}

/// Server-side latency histograms, fed at request resolution.
#[derive(Default)]
struct LatencyHists {
    /// Queue wait of every resolved request — including requests
    /// cancelled, shed, or failed while still queued, which never
    /// produce a token but did wait. Leaving them out would
    /// survivorship-bias the queue-wait percentiles toward requests
    /// that got served.
    queue_wait: LogHistogram,
    /// Time to first token of every request that produced one.
    ttft: LogHistogram,
    /// Inter-token latencies across all requests.
    itl: LogHistogram,
}

struct ServerInner {
    engine: Arc<HybridEngine>,
    pool: KvCachePool,
    queue: Mutex<VecDeque<Queued>>,
    /// Signals the scheduler: new arrival or shutdown.
    wakeup: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<ServeStats>,
    hists: Mutex<LatencyHists>,
    /// Per-class outcome and SLO counters.
    class_stats: Mutex<[ClassCounters; 3]>,
    /// Monotonic submission counter feeding `Queued::seq_no`.
    submit_seq: AtomicU64,
    /// Request-id allocator (first id is 1; 0 means "untagged").
    next_id: AtomicU64,
    /// Tail-latency flight recorder: per-request waterfalls of recent
    /// completions, with SLO-violating/shed/failed requests frozen.
    /// Always present; populated only while tracing is enabled.
    recorder: FlightRecorder,
    /// Per-[`Component`] end-to-end latency histograms (with worst
    /// request-id exemplars), fed one sample per component per traced
    /// resolution.
    comp_hists: Mutex<[LogHistogram; N_COMPONENTS]>,
    /// Swap-vs-recompute pricing for [`PreemptPolicy::Auto`],
    /// calibrated once at startup from the model shape and the hwsim
    /// platform anchors.
    preempt_cost: PreemptCostModel,
    cfg: ServerConfig,
}

impl ServerInner {
    /// Folds a resolved request's latency samples into the server
    /// histograms. Every resolution path that saw the queue calls
    /// this, whatever the outcome.
    fn record_request_hists(&self, m: &RequestMetrics) {
        let mut h = self.hists.lock();
        h.queue_wait.record(m.queue_wait_ns);
        if let Some(t) = m.ttft_ns {
            h.ttft.record(t);
        }
        h.itl.record_all(m.token_latencies_ns.iter().copied());
    }

    /// Single bookkeeping point for every request resolution: outcome
    /// counters (aggregate and per class) and, under an SLO policy,
    /// target-violation accounting. Exactly one outcome per request —
    /// every resolution path funnels through here once. Returns whether
    /// the request violated either SLO target (this is what freezes its
    /// trace into the flight recorder).
    fn account_outcome(&self, class: SloClass, outcome: &RequestOutcome, m: &RequestMetrics) -> bool {
        // Violations are judged for any request that produced the
        // relevant samples, whatever its outcome; `slo_met` only for
        // completions (a cancelled request that was fast is not
        // goodput).
        let (ttft_viol, itl_viol, met) = match &self.cfg.slo {
            Some(policy) => {
                let target = policy.target(class);
                let ttft_viol = m.ttft_ns.is_some_and(|t| t > target.ttft_ns);
                let itl_viol = m.token_latencies_ns.iter().any(|&g| g > target.itl_ns);
                let met = matches!(outcome, RequestOutcome::Completed)
                    && !ttft_viol
                    && !itl_viol
                    && m.ttft_ns.is_some();
                (ttft_viol, itl_viol, met)
            }
            None => (false, false, false),
        };
        {
            let mut stats = self.stats.lock();
            match outcome {
                RequestOutcome::Completed => stats.completed += 1,
                RequestOutcome::Cancelled => stats.cancelled += 1,
                RequestOutcome::Shed => stats.shed += 1,
                RequestOutcome::Failed { .. } => stats.failed += 1,
            }
            stats.slo_ttft_violations += ttft_viol as u64;
            stats.slo_itl_violations += itl_viol as u64;
            stats.slo_met += met as u64;
        }
        {
            let mut cs = self.class_stats.lock();
            let c = &mut cs[class.index()];
            match outcome {
                RequestOutcome::Completed => c.completed += 1,
                RequestOutcome::Cancelled => c.cancelled += 1,
                RequestOutcome::Shed => c.shed += 1,
                RequestOutcome::Failed { .. } => c.failed += 1,
            }
            c.ttft_violations += ttft_viol as u64;
            c.itl_violations += itl_viol as u64;
            c.slo_met += met as u64;
        }
        if ttft_viol {
            kt_trace::counter_add(CounterKind::SloTtftViolations, 1);
            kt_trace::instant(SpanKind::ServeSloViolation, class.index() as u32, 0);
        }
        if itl_viol {
            kt_trace::counter_add(CounterKind::SloItlViolations, 1);
            kt_trace::instant(SpanKind::ServeSloViolation, class.index() as u32, 1);
        }
        ttft_viol || itl_viol
    }

    /// Finalizes a per-request trace at resolution: stamps the outcome
    /// and measured end-to-end numbers, feeds one sample per component
    /// into the `kt_latency_component_seconds` histograms (carrying the
    /// request id as the bucket exemplar), and hands the trace to the
    /// flight recorder (which freezes it if it violated, shed, or
    /// failed).
    fn finish_trace(
        &self,
        mut trace: Box<RequestTrace>,
        outcome: &RequestOutcome,
        violated: bool,
        m: &RequestMetrics,
        tokens: u32,
    ) {
        let traced_outcome = match outcome {
            RequestOutcome::Completed => TraceOutcome::Completed,
            RequestOutcome::Cancelled => TraceOutcome::Cancelled,
            RequestOutcome::Shed => TraceOutcome::Shed,
            RequestOutcome::Failed { .. } => TraceOutcome::Failed,
        };
        trace.finish(
            kt_trace::now_ns(),
            traced_outcome,
            violated,
            m.queue_wait_ns,
            m.ttft_ns,
            m.token_latencies_ns.iter().sum(),
            tokens,
        );
        {
            let mut hists = self.comp_hists.lock();
            for c in Component::ALL {
                hists[c as usize]
                    .record_with_exemplar(trace.breakdown.component_ns(c), trace.request_id);
            }
        }
        self.recorder.record(*trace);
    }

    /// Resolves a request straight out of the queue (cancelled, shed,
    /// or drained at shutdown) — it waited but was never admitted.
    fn resolve_queued(&self, q: Queued, outcome: RequestOutcome) {
        let metrics = RequestMetrics {
            queue_wait_ns: q.enqueued_at.elapsed().as_nanos() as u64,
            ..Default::default()
        };
        self.record_request_hists(&metrics);
        let violated = self.account_outcome(q.req.class, &outcome, &metrics);
        if kt_trace::enabled() {
            // Never admitted, so the waterfall is just the queue span.
            let trace = Box::new(RequestTrace::begin(
                q.id(),
                q.req.class.index() as u32,
                q.enqueued_ns,
            ));
            self.finish_trace(trace, &outcome, violated, &metrics, 0);
        }
        q.slot.resolve(RequestResult {
            request_id: q.id(),
            outcome,
            tokens: Vec::new(),
            metrics,
        });
    }

    /// Resolves a preempted sequence without resuming it (cancelled,
    /// drained at shutdown, or unresumable). It holds no lease; a
    /// swapped host copy is dropped here and un-accounted from the
    /// swapped-pages gauge.
    fn resolve_preempted(&self, mut p: PreemptedSeq, outcome: RequestOutcome) {
        self.record_request_hists(&p.metrics);
        let violated = self.account_outcome(p.req.class, &outcome, &p.metrics);
        if let Some(trace) = p.trace.take() {
            self.finish_trace(trace, &outcome, violated, &p.metrics, p.tokens.len() as u32);
        }
        if p.swapped_pages > 0 {
            self.stats.lock().kv_pages_swapped -= p.swapped_pages;
        }
        p.slot.resolve(RequestResult {
            request_id: p.ctx.request_id,
            outcome,
            tokens: p.tokens,
            metrics: p.metrics,
        });
    }

    /// Per-wave service estimate for the slack predictor, read from
    /// the server's own latency histograms: TTFT p50, falling back to
    /// ITL p50, then 0 (an empty history predicts optimistically — the
    /// controller never sheds without evidence).
    fn service_estimate_ns(&self) -> u64 {
        let h = self.hists.lock();
        h.ttft
            .percentile(50.0)
            .filter(|&v| v > 0)
            .or_else(|| h.itl.percentile(50.0))
            .unwrap_or(0)
    }
}

/// A running continuous-batching server over one [`HybridEngine`].
///
/// Dropping the server shuts the scheduler down; queued and in-flight
/// requests resolve as cancelled.
pub struct Server {
    inner: Arc<ServerInner>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the scheduler thread over `engine`.
    ///
    /// # Errors
    ///
    /// Rejects an invalid configuration (`max_batch == 0`,
    /// `prefill_chunk == 0`, `step_token_budget < prefill_chunk`, or
    /// an [`SloPolicy`] with an unmeetable class target — zero, or a
    /// TTFT target below the class's ITL target, i.e. below one step's
    /// worth of budget, or a precision policy whose quantization groups
    /// do not divide the model dimensions) instead of papering over it.
    pub fn start(engine: Arc<HybridEngine>, cfg: ServerConfig) -> Result<Server, EngineError> {
        if cfg.max_batch == 0 {
            return Err(EngineError::config("ServerConfig.max_batch must be nonzero"));
        }
        if cfg.prefill_chunk == 0 {
            return Err(EngineError::config("ServerConfig.prefill_chunk must be nonzero"));
        }
        if cfg.step_token_budget < cfg.prefill_chunk {
            return Err(EngineError::config(format!(
                "ServerConfig.step_token_budget ({}) must be at least prefill_chunk ({})",
                cfg.step_token_budget, cfg.prefill_chunk
            )));
        }
        if cfg.min_prefix_len == 0 {
            return Err(EngineError::config("ServerConfig.min_prefix_len must be nonzero"));
        }
        // A precision policy whose group sizes do not divide the model
        // dimensions could never have packed these weights; reject the
        // inconsistent configuration up front.
        {
            let mcfg = engine.config();
            engine
                .engine_config()
                .precision
                .validate(mcfg.hidden, mcfg.dense_inter, mcfg.moe_inter)
                .map_err(|e| EngineError::config(e.to_string()))?;
        }
        // Under dynamic placement the expert cache must at least hold
        // one routed expert, or it can never admit anything and every
        // step pays miss bookkeeping for a cache that stays empty.
        if engine.engine_config().placement == PlacementPolicy::Dynamic {
            let expert = engine.expert_weight_bytes().unwrap_or(0);
            let budget = engine.engine_config().expert_cache_bytes;
            if budget < expert {
                return Err(EngineError::config(format!(
                    "EngineConfig.expert_cache_bytes ({budget}) cannot hold a single \
                     routed expert ({expert} bytes): the dynamic-placement cache could \
                     never admit an expert"
                )));
            }
        }
        if let Some(policy) = &cfg.slo {
            for class in SloClass::ALL {
                let t = policy.target(class);
                if t.ttft_ns == 0 || t.itl_ns == 0 {
                    return Err(EngineError::config(format!(
                        "SloPolicy target for class {:?} must be nonzero (ttft={}, itl={})",
                        class, t.ttft_ns, t.itl_ns
                    )));
                }
                // A first token needs at least one full step, and the
                // ITL target is the class's own floor on step time —
                // a tighter TTFT admits work that can never meet it.
                if t.ttft_ns < t.itl_ns {
                    return Err(EngineError::config(format!(
                        "SloPolicy ttft target for class {:?} ({} ns) is below one step's \
                         worth of budget (itl target {} ns): the class is unmeetable",
                        class, t.ttft_ns, t.itl_ns
                    )));
                }
            }
        }
        let fresh = engine.fresh_cache();
        let mut pool = KvCachePool::for_prototype(&fresh, cfg.max_batch);
        if cfg.prefix_cache_bytes > 0 {
            pool = pool.with_prefix_cache(PrefixCacheConfig {
                capacity_bytes: cfg.prefix_cache_bytes,
                min_prefix_len: cfg.min_prefix_len,
            });
        }
        if cfg.page_rows > 0 {
            let total = if cfg.kv_pool_pages > 0 {
                cfg.kv_pool_pages
            } else {
                // Auto: every batch slot at full capacity, plus pages
                // for the prefix index's byte budget (frozen segments
                // hold page references, so index residency competes
                // with leases for the allocator). Pages are lazily
                // materialized, so generosity here reserves no memory.
                let capacity = if fresh.n_layers() > 0 { fresh.layer(0).capacity() } else { 0 };
                let per_seq = fresh.n_layers() * capacity.div_ceil(cfg.page_rows);
                let min_row_bytes = (0..fresh.n_layers())
                    .map(|i| {
                        let l = fresh.layer(i);
                        (l.k_width() + l.v_width()) * std::mem::size_of::<f32>()
                    })
                    .min()
                    .unwrap_or(1)
                    .max(1);
                let prefix_pages = cfg
                    .prefix_cache_bytes
                    .div_ceil(cfg.page_rows * min_row_bytes);
                cfg.max_batch * per_seq + prefix_pages
            };
            pool = pool.with_paged(total, cfg.page_rows);
        }
        // Swap-vs-recompute pricing from the model shape and the hwsim
        // calibration (same anchors as dynamic placement's CostModel).
        let preempt_cost = {
            let mcfg = engine.config();
            PreemptCostModel::calibrated(preempt::flops_per_token(
                mcfg.n_layers,
                mcfg.hidden,
                mcfg.dense_inter.max(mcfg.moe_inter),
            ))
        };
        kt_trace::enable_from_env();
        let inner = Arc::new(ServerInner {
            engine,
            pool,
            queue: Mutex::new(VecDeque::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(ServeStats::default()),
            hists: Mutex::new(LatencyHists::default()),
            class_stats: Mutex::new([ClassCounters::default(); 3]),
            submit_seq: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            recorder: FlightRecorder::new(),
            comp_hists: Mutex::new(std::array::from_fn(|_| LogHistogram::new())),
            preempt_cost,
            cfg,
        });
        let loop_inner = Arc::clone(&inner);
        let scheduler = std::thread::Builder::new()
            .name("kt-serve-scheduler".into())
            .spawn(move || scheduler_loop(&loop_inner))
            .expect("spawn scheduler thread");
        Ok(Server {
            inner,
            scheduler: Some(scheduler),
        })
    }

    /// Submits a request and returns a handle to wait on or cancel.
    /// Invalid requests (empty prompt, out-of-vocab token, prompt +
    /// `max_new` beyond the cache capacity) resolve immediately as
    /// failed instead of poisoning a batch.
    pub fn submit(&self, req: Request) -> RequestHandle {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = RequestSlot::new(id);
        let handle = RequestHandle {
            slot: Arc::clone(&slot),
        };
        self.inner.class_stats.lock()[req.class.index()].submitted += 1;
        if let Err(error) = self.validate(&req) {
            // Never queued: counters only, no queue-wait sample.
            self.inner.account_outcome(
                req.class,
                &RequestOutcome::Failed { error: error.clone() },
                &RequestMetrics::default(),
            );
            slot.resolve(RequestResult {
                request_id: id,
                outcome: RequestOutcome::Failed { error },
                tokens: Vec::new(),
                metrics: RequestMetrics::default(),
            });
            return handle;
        }
        // A prompt that already ends in the stop token has nothing to
        // generate: the first sampled token could only ever trail the
        // stop. Resolve it completed with zero tokens instead of
        // spending prefill on it.
        if req.stop_token.is_some() && req.prompt.last().copied() == req.stop_token {
            self.inner.account_outcome(
                req.class,
                &RequestOutcome::Completed,
                &RequestMetrics::default(),
            );
            slot.resolve(RequestResult {
                request_id: id,
                outcome: RequestOutcome::Completed,
                tokens: Vec::new(),
                metrics: RequestMetrics::default(),
            });
            return handle;
        }
        let seq_no = self.inner.submit_seq.fetch_add(1, Ordering::Relaxed);
        let mut queue = self.inner.queue.lock();
        queue.push_back(Queued {
            req,
            slot,
            enqueued_at: Instant::now(),
            enqueued_ns: kt_trace::now_ns(),
            seq_no,
        });
        drop(queue);
        self.inner.wakeup.notify_all();
        handle
    }

    /// Snapshot of the aggregate serving statistics, with the engine's
    /// cumulative step-arena counters and virtual-GPU launch counters
    /// folded in.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.inner.stats.lock().clone();
        s.set_arena(&self.inner.engine.workspace_stats());
        s.set_launch(&self.inner.engine.launch_stats());
        s.set_pool(&self.inner.pool.occupancy());
        if let Some(px) = self.inner.pool.prefix_stats() {
            s.set_prefix(&px);
        }
        if let Some(pages) = self.inner.pool.page_stats() {
            s.set_pages(&pages);
        }
        if let Some(x) = self.inner.engine.expert_cache_stats() {
            s.set_expert_cache(&x);
        }
        if let (Some(bytes), Some(dtype)) = (
            self.inner.engine.expert_weight_bytes(),
            self.inner.engine.expert_weight_dtype(),
        ) {
            s.set_weight_precision(bytes as u64, dtype.name());
        }
        s
    }

    /// Per-class outcome and SLO counters, indexed by
    /// [`SloClass::index`]. Populated whether or not an SLO policy is
    /// active (violation fields stay zero without one).
    pub fn class_stats(&self) -> [ClassCounters; 3] {
        *self.inner.class_stats.lock()
    }

    /// Prometheus-style text exposition of the serving metrics:
    /// request/token/step counters, queue and batch gauges, the
    /// engine's arena and virtual-GPU launch counters, the `kt_slo_*`
    /// SLO counters (shed, violations, per-class outcomes), the
    /// `kt_build_info` identity gauge, the queue-wait / TTFT /
    /// inter-token latency histograms (log₂ buckets, cumulative
    /// `_bucket{le=...}` form), and the per-component
    /// `kt_latency_component_seconds` histogram family with worst
    /// request-id exemplars on its buckets. Formatting goes through
    /// [`crate::metrics`] so every family carries exactly one
    /// `# HELP`/`# TYPE` pair and label values are escaped. Suitable
    /// for serving at a `/metrics` endpoint verbatim.
    pub fn stats_text(&self) -> String {
        let s = self.stats();
        let mut out = String::with_capacity(4096);
        push_counter(&mut out, "kt_requests_completed_total", "Requests that ran to completion.", s.completed);
        push_counter(&mut out,"kt_requests_cancelled_total", "Requests cancelled by their client.", s.cancelled);
        push_counter(&mut out,"kt_requests_failed_total", "Requests that failed with an engine error.", s.failed);
        push_counter(&mut out,"kt_requests_shed_total", "Requests shed by the admission controller.", s.shed);
        push_counter(&mut out,"kt_tokens_generated_total", "Tokens emitted across all requests.", s.tokens_generated);
        push_counter(&mut out,"kt_steps_total", "Continuous-batching steps executed.", s.steps);
        push_counter(&mut out,"kt_prefill_chunks_total", "Prefill chunks executed.", s.prefill_chunks);
        push_counter(&mut out,"kt_prefill_tokens_total", "Prompt tokens fed through prefill chunks.", s.prefill_tokens);
        push_counter(&mut out,"kt_gpu_kernel_launches_total", "Kernels launched individually on the virtual GPU.", s.gpu_kernel_launches);
        push_counter(&mut out,"kt_gpu_host_funcs_total", "Host-function callbacks executed in-stream.", s.gpu_host_funcs);
        push_counter(&mut out,"kt_gpu_graph_replays_total", "Graph replays (one launch each).", s.gpu_graph_replays);
        push_counter(&mut out,"kt_gpu_graph_ops_total", "Ops executed via graph replay.", s.gpu_graph_ops);
        push_counter(&mut out,"kt_gpu_launch_overhead_ns_total", "Simulated launch latency charged on the device.", s.gpu_launch_overhead_ns);
        push_counter(&mut out,"kt_gpu_busy_ns_total", "Nanoseconds the device spent executing ops.", s.gpu_busy_ns);
        push_counter(&mut out,"kt_arena_allocations_total", "Fresh heap allocations performed by the step arenas.", s.arena_allocations);
        push_counter(&mut out,"kt_arena_bytes_allocated_total", "Bytes served by fresh heap allocations.", s.arena_bytes_allocated);
        push_counter(&mut out,"kt_arena_bytes_served_total", "Bytes served by reusing an existing arena buffer.", s.arena_bytes_served);
        push_counter(&mut out,"kt_prefix_lookups_total", "Prefix-cache lookups at admission.", s.prefix_lookups);
        push_counter(&mut out,"kt_prefix_hits_total", "Lookups that matched a reusable prefix.", s.prefix_hits);
        push_counter(&mut out,"kt_prefix_misses_total", "Lookups that matched nothing reusable.", s.prefix_misses);
        push_counter(&mut out,"kt_prefix_hit_tokens_total", "Prompt tokens seeded from cached prefixes instead of prefilled.", s.prefix_hit_tokens);
        push_counter(&mut out,"kt_prefix_insertions_total", "Prefix segments frozen into the cache.", s.prefix_insertions);
        push_counter(&mut out,"kt_prefix_evictions_total", "Prefix segments evicted by the byte budget.", s.prefix_evictions);
        push_counter(&mut out,"kt_prefix_evicted_bytes_total", "Bytes freed by prefix eviction.", s.prefix_evicted_bytes);
        push_counter(&mut out,"kt_expert_cache_hits_total", "Expert-cache lookups that found the expert resident on the vGPU.", s.expert_cache_hits);
        push_counter(&mut out,"kt_expert_cache_misses_total", "Expert-cache lookups for non-resident experts.", s.expert_cache_misses);
        push_counter(&mut out,"kt_expert_cache_insertions_total", "Experts admitted into the vGPU cache.", s.expert_cache_insertions);
        push_counter(&mut out,"kt_expert_cache_evictions_total", "Experts evicted for higher-value ones.", s.expert_cache_evictions);
        push_counter(&mut out,"kt_expert_cache_evicted_bytes_total", "Bytes freed by expert eviction.", s.expert_cache_evicted_bytes);
        // Per-expert gating popularity, label form. Dense (and so far
        // idle) layers are skipped to bound the exposition size.
        {
            let profile = self.inner.engine.expert_profile();
            push_family(
                &mut out,
                "kt_expert_hits_total",
                "counter",
                "Routed-expert activations per (layer, expert).",
            );
            for layer in 0..profile.n_layers() {
                if profile.total(layer) == 0 {
                    continue;
                }
                for e in 0..profile.n_experts() {
                    let l = layer.to_string();
                    let x = e.to_string();
                    push_sample(
                        &mut out,
                        "kt_expert_hits_total",
                        &[("layer", &l), ("expert", &x)],
                        profile.count(layer, e),
                    );
                }
            }
        }
        push_counter(&mut out,"kt_slo_shed_total", "Requests shed for negative predicted slack.", s.shed);
        push_counter(&mut out,"kt_slo_ttft_violations_total", "Resolved requests that missed their TTFT target.", s.slo_ttft_violations);
        push_counter(&mut out,"kt_slo_itl_violations_total", "Resolved requests with an inter-token gap over the ITL target.", s.slo_itl_violations);
        push_counter(&mut out,"kt_slo_met_total", "Completed requests that met both SLO targets.", s.slo_met);
        // Per-class outcome counters, Prometheus label form.
        let cs = self.class_stats();
        for (name, help, pick) in [
            (
                "kt_slo_class_submitted_total",
                "Requests submitted per SLO class.",
                (|c: &ClassCounters| c.submitted) as fn(&ClassCounters) -> u64,
            ),
            (
                "kt_slo_class_completed_total",
                "Requests completed per SLO class.",
                |c: &ClassCounters| c.completed,
            ),
            (
                "kt_slo_class_shed_total",
                "Requests shed per SLO class.",
                |c: &ClassCounters| c.shed,
            ),
            (
                "kt_slo_class_slo_met_total",
                "Completed requests meeting both targets per SLO class.",
                |c: &ClassCounters| c.slo_met,
            ),
        ] {
            push_family(&mut out, name, "counter", help);
            for class in SloClass::ALL {
                push_sample(
                    &mut out,
                    name,
                    &[("class", class.as_str())],
                    pick(&cs[class.index()]),
                );
            }
        }
        push_gauge(&mut out,"kt_prefix_resident_bytes", "Bytes resident in frozen prefix segments.", s.prefix_resident_bytes as f64);
        push_gauge(&mut out,"kt_prefix_entries", "Prefix segments currently resident.", s.prefix_entries as f64);
        push_gauge(&mut out,"kt_expert_cache_resident_bytes", "Bytes held by vGPU-resident experts.", s.expert_cache_resident_bytes as f64);
        push_gauge(&mut out,"kt_expert_cache_entries", "Experts currently vGPU-resident.", s.expert_cache_entries as f64);
        // Weight-precision gauge with the routed experts' storage dtype
        // as a label, so dashboards can key bandwidth/footprint math on
        // the serving precision.
        if !s.expert_weight_dtype.is_empty() {
            push_family(
                &mut out,
                "kt_expert_weight_bytes",
                "gauge",
                "Stored bytes of one routed expert's packed weights.",
            );
            push_sample(
                &mut out,
                "kt_expert_weight_bytes",
                &[("dtype", &s.expert_weight_dtype)],
                s.expert_weight_bytes,
            );
        }
        // Paged-KV allocator gauges and preemption counters (all zero
        // when the server runs monolithic flat leases).
        push_gauge(&mut out, "kt_kv_pages_total", "KV pages the block allocator can hand out in total.", s.kv_pages_total as f64);
        push_gauge(&mut out, "kt_kv_pages_free", "KV pages currently free in the allocator.", s.kv_pages_free as f64);
        push_gauge(&mut out, "kt_kv_pages_shared", "Allocated KV pages referenced by more than one holder (prefix sharing).", s.kv_pages_shared as f64);
        push_gauge(&mut out, "kt_kv_pages_swapped", "Pages' worth of KV rows swapped out to the host tier by preemption.", s.kv_pages_swapped as f64);
        {
            push_family(
                &mut out,
                "kt_preempt_total",
                "counter",
                "Sequences preempted under KV page pressure, by reclaim mode.",
            );
            for (mode, n) in [
                (PreemptMode::Swap, s.preempt_swap),
                (PreemptMode::Recompute, s.preempt_recompute),
            ] {
                push_sample(&mut out, "kt_preempt_total", &[("mode", mode.as_str())], n);
            }
        }
        push_gauge(&mut out,"kt_kv_leases_in_use", "KV caches currently leased to sequences.", s.kv_leases_in_use as f64);
        push_gauge(&mut out,"kt_kv_leases_free", "Reset KV caches parked in the pool.", s.kv_leases_free as f64);
        push_gauge(&mut out,"kt_kv_leases_peak", "High-water mark of concurrent leases.", s.kv_leases_peak as f64);
        push_gauge(&mut out,"kt_kv_pooled_bytes", "Heap bytes retained by parked pool caches.", s.kv_pooled_bytes as f64);
        push_gauge(&mut out,"kt_queue_depth", "Requests currently waiting for admission.", self.queued() as f64);
        push_gauge(&mut out,"kt_active_sequences", "Sequences currently admitted (leased caches).", self.active() as f64);
        push_gauge(&mut out,"kt_peak_queue_depth", "Deepest admission queue observed.", s.peak_queue_depth as f64);
        push_gauge(&mut out,"kt_mean_batch_occupancy", "Mean active sequences per step.", s.mean_occupancy());
        push_gauge(&mut out,"kt_arena_high_water_bytes", "High-water mark of bytes held across step arenas.", s.arena_high_water_bytes as f64);
        // Build/runtime identity: which binary, commit, kernel ISA
        // level, and placement policy produced these numbers. Constant
        // 1 so dashboards join it onto any other family by instance.
        {
            push_family(
                &mut out,
                "kt_build_info",
                "gauge",
                "Build and runtime identity of this replica (constant 1; the labels are the payload).",
            );
            let simd = match kt_core::effective_simd_level() {
                SimdLevel::Scalar => "scalar",
                SimdLevel::Avx2Fma => "avx2_fma",
                SimdLevel::Avx512 => "avx512",
            };
            let placement = match self.inner.engine.engine_config().placement {
                PlacementPolicy::Static => "static",
                PlacementPolicy::Dynamic => "dynamic",
            };
            push_sample(
                &mut out,
                "kt_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("git_hash", env!("KT_GIT_HASH")),
                    ("simd", simd),
                    ("placement", placement),
                ],
                1,
            );
        }
        {
            let hists = self.inner.hists.lock();
            push_histogram(
                &mut out,
                "kt_request_queue_wait_ns",
                "Queue wait of every resolved request (including those cancelled, shed, or failed while queued).",
                &hists.queue_wait,
            );
            push_histogram(
                &mut out,
                "kt_request_ttft_ns",
                "Time from admission to first emitted token.",
                &hists.ttft,
            );
            push_histogram(
                &mut out,
                "kt_request_inter_token_ns",
                "Inter-token latencies across all requests.",
                &hists.itl,
            );
        }
        // Per-component end-to-end latency attribution: one labeled
        // histogram per Component, in seconds (Prometheus base units),
        // each bucket carrying the worst request id it has seen as an
        // OpenMetrics-style exemplar — the bridge from a dashboard's
        // slowest bucket to `Server::breakdown` / the flight recorder.
        {
            push_family(
                &mut out,
                "kt_latency_component_seconds",
                "histogram",
                "Per-request end-to-end latency attributed to each pipeline component.",
            );
            let comp = self.inner.comp_hists.lock();
            for c in Component::ALL {
                push_histogram_samples_seconds(
                    &mut out,
                    "kt_latency_component_seconds",
                    &[("component", c.as_str())],
                    &comp[c as usize],
                );
            }
        }
        out
    }

    /// The three server latency histograms (queue wait, TTFT,
    /// inter-token), cloned, for programmatic percentile queries.
    pub fn latency_histograms(&self) -> (LogHistogram, LogHistogram, LogHistogram) {
        let h = self.inner.hists.lock();
        (h.queue_wait.clone(), h.ttft.clone(), h.itl.clone())
    }

    /// The latency attribution of a recently resolved request: where
    /// its measured queue wait + TTFT + decode time went, by
    /// [`Component`]. Requires tracing to have been enabled while the
    /// request ran (`KT_TRACE=1` or [`kt_trace::enable`]); `None` if it
    /// was not traced or has aged out of the flight recorder.
    pub fn breakdown(&self, request_id: u64) -> Option<RequestBreakdown> {
        self.inner.recorder.breakdown(request_id)
    }

    /// Request ids frozen in the flight recorder (SLO violations,
    /// sheds, failures), oldest first.
    pub fn captured_request_ids(&self) -> Vec<u64> {
        self.inner.recorder.captured_ids()
    }

    /// Breakdowns of every request still in the recorder's recent
    /// ring, oldest first.
    pub fn recent_breakdowns(&self) -> Vec<RequestBreakdown> {
        self.inner.recorder.recent_breakdowns()
    }

    /// One request's waterfall as a standalone Chrome-trace JSON array
    /// (loadable in Perfetto): queue-wait span, per-step spans with
    /// component sub-spans, first-token instant — all on the request's
    /// own track, every event labeled with its id.
    pub fn export_request_trace(&self, request_id: u64) -> Option<String> {
        self.inner.recorder.export_chrome(request_id)
    }

    /// Every frozen (violating/shed/failed) waterfall as one
    /// Chrome-trace JSON array — the artifact `trace_summarize`
    /// consumes.
    pub fn export_captured_traces(&self) -> String {
        self.inner.recorder.export_captured_chrome()
    }

    /// Sequences currently admitted (leased caches).
    pub fn active(&self) -> usize {
        self.inner.pool.in_use()
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Stops the scheduler and resolves every unfinished request as
    /// cancelled. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wakeup.notify_all();
        if let Some(t) = self.scheduler.take() {
            let _ = t.join();
        }
    }

    fn validate(&self, req: &Request) -> Result<(), String> {
        if req.prompt.is_empty() {
            return Err("request prompt is empty".into());
        }
        let vocab = self.inner.engine.config().vocab;
        if let Some(&t) = req.prompt.iter().find(|&&t| t as usize >= vocab) {
            return Err(format!("prompt token {t} outside vocab {vocab}"));
        }
        let capacity = self.inner.pool.capacity();
        if req.prompt.len() + req.max_new > capacity {
            return Err(format!(
                "prompt ({}) + max_new ({}) exceeds cache capacity {capacity}",
                req.prompt.len(),
                req.max_new
            ));
        }
        // Paged admission: the request must fit the page pool even
        // with every other sequence preempted, or it could never run
        // to completion (preemption keeps at least one survivor, so a
        // too-big request would wedge the scheduler, not just fail).
        if let Some(alloc) = self.inner.pool.block_allocator() {
            let needed = self.inner.pool.pages_needed(req.prompt.len() + req.max_new);
            if needed > alloc.total_pages() {
                return Err(format!(
                    "prompt ({}) + max_new ({}) needs {needed} KV pages but the pool \
                     holds {}",
                    req.prompt.len(),
                    req.max_new,
                    alloc.total_pages()
                ));
            }
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("max_batch", &self.inner.cfg.max_batch)
            .field("prefill_chunk", &self.inner.cfg.prefill_chunk)
            .field("step_token_budget", &self.inner.cfg.step_token_budget)
            .field("slo", &self.inner.cfg.slo.is_some())
            .field("active", &self.active())
            .field("queued", &self.queued())
            .finish()
    }
}

fn scheduler_loop(inner: &ServerInner) {
    let mut active: Vec<ActiveSeq> = Vec::new();
    // Sequences evicted under page pressure, waiting for pages to
    // resume. Owned by the scheduler thread: preemption is pure
    // scheduling state, invisible outside the loop except through the
    // gauges and the (unchanged) request outcomes.
    let mut preempted: Vec<PreemptedSeq> = Vec::new();
    loop {
        // Join arrivals and resume preempted work (and park while
        // idle).
        admit(inner, &mut active, &mut preempted);
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Retire cancellations requested since the last step, before
        // spending a step on them. A sequence cancelled between prefill
        // chunks retires here too: its lease goes back to the pool at
        // the step boundary, mid-prompt.
        retire_cancelled(inner, &mut active);
        if active.is_empty() {
            continue;
        }

        {
            let mut stats = inner.stats.lock();
            stats.steps += 1;
            stats.occupancy_sum += active.len() as u64;
            let depth = inner.queue.lock().len() as u64;
            stats.queue_depth_sum += depth;
            stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        }

        step(inner, &mut active, &mut preempted);
    }
    drain(inner, active, preempted);
}

/// Sheds queued requests whose predicted slack is negative (policy
/// permitting). Runs inside the admission loop, before leases are
/// taken, so shed requests never touch the pool or the engine.
fn shed_pass(inner: &ServerInner, policy: &SloPolicy, queue: &mut VecDeque<Queued>, active_len: usize) {
    if !policy.shed || queue.is_empty() {
        return;
    }
    let service = inner.service_estimate_ns();
    if service == 0 {
        // No latency evidence yet: the predictor cannot justify
        // discarding work.
        return;
    }
    // Examine in admission order so each request's `queued_ahead` is
    // its actual position among the competition.
    let mut order: Vec<usize> = (0..queue.len()).collect();
    order.sort_by_key(|&i| (queue[i].req.class.priority(), queue[i].seq_no));
    let mut to_shed: Vec<(usize, i64)> = Vec::new();
    for (pos, &i) in order.iter().enumerate() {
        let q = &queue[i];
        let class = q.req.class;
        let inputs = SlackInputs {
            service_estimate_ns: service,
            active: active_len,
            max_batch: inner.cfg.max_batch,
            queued_ahead: pos,
            waited_ns: q.enqueued_at.elapsed().as_nanos() as u64,
        };
        let slack = slo::slack_ns(policy.target(class), slo::predicted_ttft_ns(&inputs));
        kt_trace::counter_add(CounterKind::SlackPredictions, 1);
        if slo::shed_decision(policy, class, slack) {
            to_shed.push((i, slack));
        }
    }
    // Remove back to front so earlier indices stay valid.
    to_shed.sort_unstable_by_key(|s| std::cmp::Reverse(s.0));
    for (i, slack) in to_shed {
        let q = queue.remove(i).expect("index in bounds");
        kt_trace::counter_add(CounterKind::SloShed, 1);
        kt_trace::instant(
            SpanKind::ServeShed,
            q.req.class.index() as u32,
            ((-slack) as u64 / 1_000).min(u32::MAX as u64) as u32,
        );
        inner.resolve_queued(q, RequestOutcome::Shed);
    }
}

/// Admits queued requests while the batch has room; blocks when there
/// is nothing to do at all. With an SLO policy, admission picks the
/// earliest request of the most urgent class (FIFO within a class)
/// and sheds negative-slack lower-class work first. Preempted
/// sequences resume ahead of new admissions: they already consumed
/// queue wait and prefill, so re-admitting fresh work over them would
/// invert the priority order that chose them as victims.
fn admit(inner: &ServerInner, active: &mut Vec<ActiveSeq>, preempted: &mut Vec<PreemptedSeq>) {
    let priority_aware = inner.cfg.slo.is_some();
    loop {
        let mut queue = inner.queue.lock();
        // Resolve cancellations anywhere in the queue — with priority
        // admission the front is not necessarily next, so the whole
        // queue is scanned. The queue wait still counts toward the
        // histograms.
        let mut i = 0;
        while i < queue.len() {
            if queue[i].slot.cancel_requested() {
                let q = queue.remove(i).expect("index in bounds");
                inner.resolve_queued(q, RequestOutcome::Cancelled);
            } else {
                i += 1;
            }
        }
        // Cancellations among the preempted, same contract.
        let mut i = 0;
        while i < preempted.len() {
            if preempted[i].slot.cancel_requested() {
                let p = preempted.remove(i);
                inner.resolve_preempted(p, RequestOutcome::Cancelled);
            } else {
                i += 1;
            }
        }
        if let Some(policy) = &inner.cfg.slo {
            shed_pass(inner, policy, &mut queue, active.len());
        }
        resume_preempted(inner, active, preempted);
        while !queue.is_empty() && active.len() < inner.cfg.max_batch {
            let keys: Vec<(usize, u64)> = queue
                .iter()
                .map(|q| (q.req.class.priority(), q.seq_no))
                .collect();
            let pick = sched::pick_next(&keys, priority_aware).expect("queue non-empty");
            let Some((mut lease, mut seeded)) = inner.pool.lease_for_prompt(&queue[pick].req.prompt)
            else {
                break;
            };
            // Belt and braces: a seeded cache must look exactly like a
            // partially prefilled one to the engine. If it does not,
            // fall back to a cold prefill rather than feed the batch a
            // corrupt cache.
            if seeded > 0 && inner.engine.validate_cache(&lease.cache).is_err() {
                lease.cache.reset();
                seeded = 0;
            }
            let q = queue.remove(pick).expect("pick in bounds");
            let queue_wait_ns = q.enqueued_at.elapsed().as_nanos() as u64;
            let ctx = TraceCtx::for_request(q.id());
            kt_trace::instant(
                SpanKind::ServeAdmit,
                ctx.tag(),
                (queue_wait_ns / 1_000).min(u32::MAX as u64) as u32,
            );
            let trace = kt_trace::enabled().then(|| {
                let mut t = Box::new(RequestTrace::begin(
                    q.id(),
                    q.req.class.index() as u32,
                    q.enqueued_ns,
                ));
                t.admitted(kt_trace::now_ns());
                t
            });
            active.push(ActiveSeq {
                slot: q.slot,
                lease,
                rng: StdRng::seed_from_u64(q.req.seed),
                feed: q.req.prompt.clone(),
                req: q.req,
                prefilled: seeded,
                resume_decode: None,
                next_token: None,
                tokens: Vec::new(),
                metrics: RequestMetrics {
                    queue_wait_ns,
                    ..Default::default()
                },
                admitted_at: Instant::now(),
                last_token_at: None,
                ctx,
                trace,
                admit_seq: q.seq_no,
            });
        }
        // Park only when fully idle; otherwise go run a step.
        if !active.is_empty() || inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !preempted.is_empty() {
            // Nothing active yet preempted work cannot resume: the
            // page pool must be clogged by the prefix index (no lease
            // holds pages). Dump the index and retry; if a sequence
            // still cannot fit the empty pool, it never will — fail it
            // rather than wedge the scheduler.
            drop(queue);
            let freed = inner.pool.clear_prefix();
            resume_preempted(inner, active, preempted);
            if active.is_empty() && freed == 0 {
                if let Some(i) = next_resume(preempted) {
                    let p = preempted.remove(i);
                    inner.resolve_preempted(
                        p,
                        RequestOutcome::Failed {
                            error: "KV page pool too small to resume preempted sequence"
                                .into(),
                        },
                    );
                }
            }
            continue;
        }
        if !queue.is_empty() {
            // Idle but queue non-empty: foreign leases hold the pool,
            // or the prefix index holds the allocator's pages. Release
            // the index (nothing active shares it profitably right
            // now) and retry rather than spin.
            drop(queue);
            inner.pool.clear_prefix();
            std::thread::yield_now();
            continue;
        }
        inner.wakeup.wait(&mut queue);
    }
}

/// Index of the next preempted sequence to resume: most urgent class
/// first, earliest admission within it — the mirror of victim
/// selection, so the last sequence preempted is the first back in.
fn next_resume(preempted: &[PreemptedSeq]) -> Option<usize> {
    preempted
        .iter()
        .enumerate()
        .min_by_key(|(_, p)| (p.req.class.priority(), p.admit_seq))
        .map(|(i, _)| i)
}

/// Resumes preempted sequences while batch slots and pages allow, in
/// [`next_resume`] order. Stops at the first sequence that does not
/// fit — resuming a smaller, less urgent one instead would starve it.
fn resume_preempted(inner: &ServerInner, active: &mut Vec<ActiveSeq>, preempted: &mut Vec<PreemptedSeq>) {
    while active.len() < inner.cfg.max_batch {
        let Some(i) = next_resume(preempted) else { return };
        let swap_rows = match &preempted[i].resume {
            ResumeState::Swapped(s) => Some(s.rows()),
            ResumeState::Recompute => None,
        };
        let seq = match swap_rows {
            Some(rows) => {
                // Swap-in: the captured rows restore bit-for-bit into
                // a fresh lease; the sequence continues exactly where
                // it stopped.
                if inner.pool.page_rows().is_some()
                    && inner.pool.pages_needed(rows) > inner.pool.free_pages()
                {
                    return;
                }
                let Some(mut lease) = inner.pool.lease() else { return };
                let p = preempted.remove(i);
                let ResumeState::Swapped(swapped) = &p.resume else { unreachable!() };
                {
                    let _span = kt_trace::span_ab(
                        SpanKind::KvSwapIn,
                        p.ctx.tag(),
                        (swapped.bytes() / 1024).min(u32::MAX as usize) as u32,
                    );
                    swapped
                        .restore(&mut lease.cache)
                        .expect("swap-in restores into a fresh lease of the same shape");
                }
                if p.swapped_pages > 0 {
                    inner.stats.lock().kv_pages_swapped -= p.swapped_pages;
                }
                let prefilled = lease.cache.seq_len();
                build_resumed(p, lease, prefilled)
            }
            None => {
                // Drop-and-recompute: re-admit the feed. The prefix
                // cache may seed part of the *prompt* — donor rows
                // there were prefill-produced like ours, so the bits
                // match. Generations past the prompt are never seeded:
                // a donor entry covering them could hold
                // prefill-produced rows, which differ from our
                // decode-produced originals under Expert Deferral.
                // They replay as decode rows instead (Work::Replay).
                let prompt_len = preempted[i].req.prompt.len();
                let Some((mut lease, mut seeded)) =
                    inner.pool.lease_for_prompt(&preempted[i].feed[..prompt_len])
                else {
                    return;
                };
                if seeded > 0 && inner.engine.validate_cache(&lease.cache).is_err() {
                    lease.cache.reset();
                    seeded = 0;
                }
                let p = preempted.remove(i);
                build_resumed(p, lease, seeded)
            }
        };
        active.push(seq);
    }
}

/// Rebuilds an [`ActiveSeq`] from a preempted sequence and its fresh
/// lease. `prefilled` is how many feed rows the cache already holds
/// (all of them after a swap-in; the seeded prefix after a recompute
/// re-admission). The pending decode token goes back to `next_token`
/// when the feed is already complete, or waits in `resume_decode` for
/// the feed to finish (fed without fresh sampling either way — the
/// token was already sampled and reported before eviction).
fn build_resumed(p: PreemptedSeq, lease: CacheLease, prefilled: usize) -> ActiveSeq {
    let (next_token, resume_decode) = if prefilled == p.feed.len() {
        (p.pending, None)
    } else {
        (None, p.pending)
    };
    ActiveSeq {
        slot: p.slot,
        lease,
        req: p.req,
        rng: p.rng,
        feed: p.feed,
        prefilled,
        resume_decode,
        next_token,
        tokens: p.tokens,
        metrics: p.metrics,
        admitted_at: p.admitted_at,
        last_token_at: p.last_token_at,
        ctx: p.ctx,
        trace: p.trace,
        admit_seq: p.admit_seq,
    }
}

fn retire_cancelled(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    let mut i = 0;
    while i < active.len() {
        if active[i].slot.cancel_requested() {
            // Order-preserving removal keeps the surviving batch
            // composition deterministic.
            let seq = active.remove(i);
            seq.resolve(RequestOutcome::Cancelled, inner);
        } else {
            i += 1;
        }
    }
}

/// Composes the step under the token budget via the pure
/// [`sched::compose_plan`]: every decode row first (one token each,
/// always admitted), then pending prefill chunks — in admission order
/// for FIFO, in (class priority, admission) order with at-risk ITL
/// throttling under an SLO policy. Returns one `Work` slot per active
/// sequence; `None` idles the sequence this step.
fn compose(inner: &ServerInner, active: &[ActiveSeq]) -> Vec<Option<Work>> {
    let policy = inner.cfg.slo.as_ref();
    let views: Vec<SeqView> = active
        .iter()
        .map(|seq| {
            let prompt_remaining = seq.feed.len() - seq.prefilled;
            // A decode row is at risk when more than half its ITL
            // target has already elapsed since its last token — the
            // next step must stay short or the target is gone.
            let at_risk = policy.is_some_and(|p| {
                prompt_remaining == 0
                    && seq.last_token_at.is_some_and(|t| {
                        (t.elapsed().as_nanos() as u64).saturating_mul(2)
                            > p.target(seq.req.class).itl_ns
                    })
            });
            SeqView {
                prompt_remaining,
                priority: policy.map_or(0, |_| seq.req.class.priority()),
                at_risk,
            }
        })
        .collect();
    let cfg = ComposeCfg {
        prefill_chunk: inner.cfg.prefill_chunk,
        step_token_budget: inner.cfg.step_token_budget,
        priority_aware: policy.is_some(),
    };
    sched::compose_plan(&cfg, &views)
        .into_iter()
        .zip(active)
        .map(|(work, seq)| {
            work.map(|w| match w {
                PlanWork::Decode => Work::Decode(
                    seq.next_token
                        .expect("active sequence past prefill holds its next token"),
                ),
                PlanWork::Chunk { len, .. } => {
                    // Feed positions past the prompt are generations a
                    // recompute preemption dropped: they were decode
                    // rows originally, so they replay one per step as
                    // decode rows (Work::Replay) — and prompt chunks
                    // never cross into them.
                    let bound = seq.req.prompt.len();
                    if seq.prefilled >= bound {
                        Work::Replay(seq.feed[seq.prefilled])
                    } else {
                        let len = len.min(bound - seq.prefilled);
                        let last = seq.prefilled + len == seq.feed.len();
                        Work::Chunk { len, last }
                    }
                }
            })
        })
        .collect()
}

/// Evicts one sequence from the batch under page pressure: picks the
/// reclaim mode by the cost model (swap bytes vs recompute tokens),
/// captures the rows for a swap, releases the lease (its uniquely
/// owned pages return to the allocator), and parks the sequence on the
/// preempted list with everything needed to resume bitwise.
fn preempt_seq(inner: &ServerInner, mut seq: ActiveSeq, preempted: &mut Vec<PreemptedSeq>) {
    let rows = seq.lease.cache.seq_len();
    let bytes = seq.lease.cache.bytes();
    let mode = inner.preempt_cost.mode(inner.cfg.preempt_policy, bytes, rows);
    kt_trace::instant(SpanKind::ServePreempt, seq.ctx.tag(), rows as u32);
    // The pending token: sampled and reported, but its row is not in
    // the cache yet. Re-fed as a plain decode after resume.
    let pending = seq.next_token.take().or(seq.resume_decode.take());
    // Full logical feed at resume: the prompt plus every generation
    // the cache logically holds (all emitted tokens except the
    // pending one). `feed` may currently be mid-rebuild from an
    // earlier preemption; this reconstruction is invariant to that.
    let gens = seq.tokens.len() - pending.is_some() as usize;
    let mut feed = Vec::with_capacity(seq.req.prompt.len() + gens);
    feed.extend_from_slice(&seq.req.prompt);
    feed.extend_from_slice(&seq.tokens[..gens]);
    let (resume, swapped_pages) = match mode {
        PreemptMode::Swap => {
            let _span = kt_trace::span_ab(
                SpanKind::KvSwapOut,
                seq.ctx.tag(),
                (bytes / 1024).min(u32::MAX as usize) as u32,
            );
            let swapped = SwappedKv::capture(&seq.lease.cache);
            let pages = inner.pool.pages_needed(rows) as u64;
            kt_trace::counter_add(CounterKind::PreemptSwap, 1);
            let mut stats = inner.stats.lock();
            stats.preempt_swap += 1;
            stats.kv_pages_swapped += pages;
            (ResumeState::Swapped(swapped), pages)
        }
        PreemptMode::Recompute => {
            kt_trace::counter_add(CounterKind::PreemptRecompute, 1);
            inner.stats.lock().preempt_recompute += 1;
            (ResumeState::Recompute, 0)
        }
    };
    // Plain release — NOT release_with_prefix: freezing the victim's
    // rows into the prefix index would keep its pages resident, and
    // the whole point is giving them back.
    let _ = inner.pool.release(seq.lease);
    preempted.push(PreemptedSeq {
        slot: seq.slot,
        req: seq.req,
        rng: seq.rng,
        feed,
        pending,
        tokens: seq.tokens,
        metrics: seq.metrics,
        admitted_at: seq.admitted_at,
        last_token_at: seq.last_token_at,
        ctx: seq.ctx,
        trace: seq.trace,
        admit_seq: seq.admit_seq,
        resume,
        swapped_pages,
    });
}

/// Preempts until the composed plan's KV growth fits in free pages.
/// Victims go least-urgent-class-first, newest admission first, always
/// keeping at least one survivor; once down to one sequence the prefix
/// index is cleared as the last pressure valve. Returns the (re)made
/// plan for the surviving batch.
fn relieve_pressure(
    inner: &ServerInner,
    active: &mut Vec<ActiveSeq>,
    preempted: &mut Vec<PreemptedSeq>,
) -> Vec<Option<Work>> {
    let mut plan = compose(inner, active);
    if inner.pool.page_rows().is_none() {
        return plan;
    }
    loop {
        let needed: usize = plan
            .iter()
            .zip(active.iter())
            .filter_map(|(work, seq)| {
                work.map(|w| {
                    let growth = match w {
                        Work::Decode(_) | Work::Replay(_) => 1,
                        Work::Chunk { len, .. } => len,
                    };
                    inner.pool.pages_needed_growth(seq.lease.cache.seq_len(), growth)
                })
            })
            .sum();
        if needed <= inner.pool.free_pages() {
            return plan;
        }
        if active.len() > 1 {
            let views: Vec<VictimView> = active
                .iter()
                .map(|s| VictimView {
                    priority: s.req.class.priority(),
                    admit_seq: s.admit_seq,
                })
                .collect();
            let i = preempt::select_victim(&views).expect("active non-empty");
            let victim = active.remove(i);
            preempt_seq(inner, victim, preempted);
            plan = compose(inner, active);
            continue;
        }
        // One survivor and still short: release the prefix index's
        // page references. If even that is not enough the step runs
        // anyway — a genuine overflow fails the batch, which the
        // submit-time page validation makes unreachable.
        if inner.pool.clear_prefix() == 0 {
            return plan;
        }
    }
}

/// Runs one batched engine step over the composed plan and
/// post-processes every scheduled sequence.
fn step(inner: &ServerInner, active: &mut Vec<ActiveSeq>, preempted: &mut Vec<PreemptedSeq>) {
    let plan = relieve_pressure(inner, active, preempted);
    let step_tokens: usize = plan
        .iter()
        .flatten()
        .map(|w| match w {
            Work::Decode(_) | Work::Replay(_) => 1,
            Work::Chunk { len, .. } => *len,
        })
        .sum();
    let scheduled_seqs = plan.iter().flatten().count();
    let _span = kt_trace::span_ab(
        SpanKind::ServeStep,
        scheduled_seqs as u32,
        step_tokens as u32,
    );

    // Build the batch from the scheduled sequences; `scheduled[b]` maps
    // batch slot `b` back to its index in `active`.
    let mut scheduled: Vec<usize> = Vec::with_capacity(active.len());
    let mut batch: Vec<BatchSeq> = Vec::with_capacity(active.len());
    for (i, (seq, work)) in active.iter_mut().zip(&plan).enumerate() {
        let Some(work) = work else { continue };
        let cache = std::mem::replace(&mut seq.lease.cache, KvCache::new(&[], 0));
        batch.push(
            match *work {
                Work::Decode(t) => BatchSeq::decode(cache, t),
                Work::Replay(t) => BatchSeq::replay(cache, t),
                Work::Chunk { len, last } => {
                    let chunk = seq.feed[seq.prefilled..seq.prefilled + len].to_vec();
                    // A resumed sequence's final chunk needs no logits:
                    // its next token was sampled before eviction and
                    // waits in `resume_decode`.
                    if last && seq.resume_decode.is_none() {
                        BatchSeq::prefill(cache, chunk)
                    } else {
                        BatchSeq::prefill_chunk(cache, chunk)
                    }
                }
            }
            .with_tag(seq.ctx.tag()),
        );
        scheduled.push(i);
    }
    debug_assert!(!batch.is_empty(), "compose schedules at least one sequence");

    // Attribution snapshots bracket the forward: the per-kind phase
    // deltas across it, mapped through `step_components`, decompose
    // this step's wall time for every traced request riding in it.
    let attrib = kt_trace::enabled()
        .then(|| (kt_trace::now_ns(), kt_trace::sink().phase_snapshot()));
    let result = inner.engine.forward_batch(&mut batch);
    // Caches come back even on error; return them to their leases.
    for (&i, slot) in scheduled.iter().zip(batch.iter_mut()) {
        active[i].lease.cache = std::mem::replace(&mut slot.cache, KvCache::new(&[], 0));
    }
    if let Some((start_ns, before)) = attrib {
        let wall_ns = kt_trace::now_ns().saturating_sub(start_ns);
        let after = kt_trace::sink().phase_snapshot();
        let mut deltas = [0u64; N_SPAN_KINDS];
        for (d, (a, b)) in deltas.iter_mut().zip(after.iter().zip(before.iter())) {
            *d = a.saturating_sub(*b);
        }
        let (components, cpu_busy_ns) = step_components(&deltas, wall_ns);
        for (seq, work) in active.iter_mut().zip(&plan) {
            let Some(trace) = seq.trace.as_mut() else { continue };
            // Scheduled sequences experienced the whole step (batched
            // rows share every phase), so each gets the full step
            // attribution; sequences left out of this step aged a
            // whole step without progress — that wall time is queue
            // wait from their point of view.
            match *work {
                Some(Work::Chunk { len, last }) => trace.push_step(StepTrace::prefill(
                    trace.steps_total,
                    start_ns,
                    wall_ns,
                    len as u32,
                    last,
                )),
                Some(Work::Replay(_)) => trace.push_step(StepTrace::prefill(
                    trace.steps_total,
                    start_ns,
                    wall_ns,
                    1,
                    false,
                )),
                Some(Work::Decode(_)) => trace.push_step(StepTrace::decode(
                    trace.steps_total,
                    start_ns,
                    wall_ns,
                    components,
                    cpu_busy_ns,
                )),
                None => trace.add_idle(wall_ns),
            }
            seq.ctx.step = trace.steps_total;
        }
    }

    match result {
        Ok(logits) => {
            // Pass 1: advance every scheduled sequence in batch order.
            // The pairing between `scheduled`/`logits` must not shift
            // mid-iteration, so no removal happens here; finished
            // sequences are retired in pass 2.
            for (&i, l) in scheduled.iter().zip(logits) {
                let seq = &mut active[i];
                match plan[i].expect("scheduled implies planned") {
                    Work::Chunk { len, last } => {
                        seq.prefilled += len;
                        kt_trace::instant(SpanKind::ServePrefillChunk, len as u32, seq.ctx.tag());
                        {
                            let mut stats = inner.stats.lock();
                            stats.prefill_chunks += 1;
                            stats.prefill_tokens += len as u64;
                        }
                        if last {
                            if let Some(t) = seq.resume_decode.take() {
                                // Feed rebuilt: the pre-eviction sample
                                // resumes decoding, no fresh sampling.
                                debug_assert!(l.is_none(), "resume chunk requests no logits");
                                seq.next_token = Some(t);
                            } else {
                                let l = l.expect("final chunk requested logits");
                                sample_next(inner, seq, l);
                            }
                        } else {
                            debug_assert!(l.is_none(), "mid-chunk produces no logits");
                        }
                    }
                    Work::Replay(_) => {
                        debug_assert!(l.is_none(), "replay row requests no logits");
                        seq.prefilled += 1;
                        kt_trace::instant(SpanKind::ServePrefillChunk, 1, seq.ctx.tag());
                        {
                            let mut stats = inner.stats.lock();
                            stats.prefill_chunks += 1;
                            stats.prefill_tokens += 1;
                        }
                        if seq.prefilled == seq.feed.len() {
                            // Feed rebuilt: the pre-eviction sample
                            // resumes decoding, no fresh sampling.
                            seq.next_token = Some(
                                seq.resume_decode
                                    .take()
                                    .expect("a replaying sequence parks its pending token"),
                            );
                        }
                    }
                    Work::Decode(_) => {
                        let l = l.expect("decode row requested logits");
                        sample_next(inner, seq, l);
                    }
                }
            }
            // Pass 2: retire finished sequences, preserving the order
            // of survivors so the batch composition stays a
            // deterministic function of admission order.
            let mut i = 0;
            while i < active.len() {
                if active[i].is_done() {
                    let seq = active.remove(i);
                    seq.resolve(RequestOutcome::Completed, inner);
                } else {
                    i += 1;
                }
            }
        }
        Err(e) => {
            // A step error poisons the whole batch: every in-flight
            // request fails (but still resolves), caches go back to
            // the pool (release resets them).
            let error = e.to_string();
            for seq in active.drain(..) {
                seq.resolve(
                    RequestOutcome::Failed {
                        error: error.clone(),
                    },
                    inner,
                );
            }
        }
    }
}

/// Samples the sequence's next token from the step's logits (last row:
/// the newest position) and applies stop-token/length policy.
fn sample_next(inner: &ServerInner, seq: &mut ActiveSeq, l: Matrix) {
    let next = seq.req.sampler.sample(l.row(l.rows() - 1), &mut seq.rng);
    // Sampled — hand the logits buffer back to the engine's step arena
    // for the next batch.
    inner.engine.recycle_logits(l);
    let now = Instant::now();
    match seq.last_token_at {
        None => {
            seq.metrics.ttft_ns = Some(now.duration_since(seq.admitted_at).as_nanos() as u64);
        }
        Some(prev) => {
            seq.metrics
                .token_latencies_ns
                .push(now.duration_since(prev).as_nanos() as u64);
        }
    }
    seq.last_token_at = Some(now);
    seq.tokens.push(next);
    inner.stats.lock().tokens_generated += 1;

    let hit_stop = seq.req.stop_token == Some(next);
    let hit_len = seq.tokens.len() >= seq.req.max_new;
    seq.next_token = if hit_stop || hit_len { None } else { Some(next) };
}

/// Resolves everything left at shutdown as cancelled.
fn drain(inner: &ServerInner, active: Vec<ActiveSeq>, preempted: Vec<PreemptedSeq>) {
    for seq in active {
        seq.resolve(RequestOutcome::Cancelled, inner);
    }
    for p in preempted {
        inner.resolve_preempted(p, RequestOutcome::Cancelled);
    }
    let leftovers: Vec<Queued> = inner.queue.lock().drain(..).collect();
    for q in leftovers {
        inner.resolve_queued(q, RequestOutcome::Cancelled);
    }
}
