//! The continuous-batching scheduler.
//!
//! One scheduler thread owns the engine for the server's lifetime and
//! runs the serving loop: between engine steps it joins newly arrived
//! requests into the batch (admission-controlled by the KV-cache pool)
//! and retires finished or cancelled sequences; each step then runs
//! every active sequence through [`HybridEngine::forward_batch`] —
//! freshly admitted sequences prefill their prompts while established
//! ones decode, in the same batched forward.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use kt_core::{BatchSeq, HybridEngine, RequestMetrics, ServeStats};
use kt_model::kvcache::KvCache;
use kt_model::pool::{CacheLease, KvCachePool};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::request::{Request, RequestHandle, RequestOutcome, RequestResult, RequestSlot};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum sequences active in one batched step (also sizes the
    /// KV-cache pool).
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_batch: 8 }
    }
}

/// A request waiting for admission.
struct Queued {
    req: Request,
    slot: Arc<RequestSlot>,
    enqueued_at: Instant,
}

/// A sequence currently in the batch.
struct ActiveSeq {
    slot: Arc<RequestSlot>,
    lease: CacheLease,
    req: Request,
    rng: StdRng,
    /// Tokens to feed the engine next step (prompt on the first step,
    /// then the single sampled token).
    next_input: Vec<u32>,
    tokens: Vec<u32>,
    metrics: RequestMetrics,
    admitted_at: Instant,
    last_token_at: Option<Instant>,
}

impl ActiveSeq {
    fn resolve(self, outcome: RequestOutcome, pool: &KvCachePool) {
        // Release first so the admission valve reopens before any
        // waiter reacts to the result.
        let _ = pool.release(self.lease);
        self.slot.resolve(RequestResult {
            outcome,
            tokens: self.tokens,
            metrics: self.metrics,
        });
    }
}

struct ServerInner {
    engine: Arc<HybridEngine>,
    pool: KvCachePool,
    queue: Mutex<VecDeque<Queued>>,
    /// Signals the scheduler: new arrival or shutdown.
    wakeup: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<ServeStats>,
    cfg: ServerConfig,
}

/// A running continuous-batching server over one [`HybridEngine`].
///
/// Dropping the server shuts the scheduler down; queued and in-flight
/// requests resolve as cancelled.
pub struct Server {
    inner: Arc<ServerInner>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the scheduler thread over `engine`.
    pub fn start(engine: Arc<HybridEngine>, cfg: ServerConfig) -> Server {
        let pool = KvCachePool::for_prototype(&engine.fresh_cache(), cfg.max_batch.max(1));
        let inner = Arc::new(ServerInner {
            engine,
            pool,
            queue: Mutex::new(VecDeque::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(ServeStats::default()),
            cfg,
        });
        let loop_inner = Arc::clone(&inner);
        let scheduler = std::thread::Builder::new()
            .name("kt-serve-scheduler".into())
            .spawn(move || scheduler_loop(&loop_inner))
            .expect("spawn scheduler thread");
        Server {
            inner,
            scheduler: Some(scheduler),
        }
    }

    /// Submits a request and returns a handle to wait on or cancel.
    /// Invalid requests (empty prompt, out-of-vocab token, prompt +
    /// `max_new` beyond the cache capacity) resolve immediately as
    /// failed instead of poisoning a batch.
    pub fn submit(&self, req: Request) -> RequestHandle {
        let slot = RequestSlot::new();
        let handle = RequestHandle {
            slot: Arc::clone(&slot),
        };
        if let Err(error) = self.validate(&req) {
            self.inner.stats.lock().failed += 1;
            slot.resolve(RequestResult {
                outcome: RequestOutcome::Failed { error },
                tokens: Vec::new(),
                metrics: RequestMetrics::default(),
            });
            return handle;
        }
        let mut queue = self.inner.queue.lock();
        queue.push_back(Queued {
            req,
            slot,
            enqueued_at: Instant::now(),
        });
        drop(queue);
        self.inner.wakeup.notify_all();
        handle
    }

    /// Snapshot of the aggregate serving statistics, with the engine's
    /// cumulative step-arena counters folded in.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.inner.stats.lock().clone();
        s.set_arena(&self.inner.engine.workspace_stats());
        s
    }

    /// Sequences currently admitted (leased caches).
    pub fn active(&self) -> usize {
        self.inner.pool.in_use()
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Stops the scheduler and resolves every unfinished request as
    /// cancelled. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wakeup.notify_all();
        if let Some(t) = self.scheduler.take() {
            let _ = t.join();
        }
    }

    fn validate(&self, req: &Request) -> Result<(), String> {
        if req.prompt.is_empty() {
            return Err("request prompt is empty".into());
        }
        let vocab = self.inner.engine.config().vocab;
        if let Some(&t) = req.prompt.iter().find(|&&t| t as usize >= vocab) {
            return Err(format!("prompt token {t} outside vocab {vocab}"));
        }
        let capacity = self.inner.pool.capacity();
        if req.prompt.len() + req.max_new > capacity {
            return Err(format!(
                "prompt ({}) + max_new ({}) exceeds cache capacity {capacity}",
                req.prompt.len(),
                req.max_new
            ));
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("max_batch", &self.inner.cfg.max_batch)
            .field("active", &self.active())
            .field("queued", &self.queued())
            .finish()
    }
}

fn scheduler_loop(inner: &ServerInner) {
    let mut active: Vec<ActiveSeq> = Vec::new();
    loop {
        // Join arrivals (and park while idle).
        admit(inner, &mut active);
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Retire cancellations requested since the last step, before
        // spending a step on them.
        retire_cancelled(inner, &mut active);
        if active.is_empty() {
            continue;
        }

        {
            let mut stats = inner.stats.lock();
            stats.steps += 1;
            stats.occupancy_sum += active.len() as u64;
            let depth = inner.queue.lock().len() as u64;
            stats.queue_depth_sum += depth;
            stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        }

        step(inner, &mut active);
    }
    drain(inner, active);
}

/// Admits queued requests while the batch has room; blocks when there
/// is nothing to do at all.
fn admit(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    loop {
        let mut queue = inner.queue.lock();
        while let Some(front) = queue.front() {
            if front.slot.cancel_requested() {
                // Cancelled while queued: resolve without admitting.
                let q = queue.pop_front().expect("front exists");
                inner.stats.lock().cancelled += 1;
                q.slot.resolve(RequestResult {
                    outcome: RequestOutcome::Cancelled,
                    tokens: Vec::new(),
                    metrics: RequestMetrics {
                        queue_wait_ns: q.enqueued_at.elapsed().as_nanos() as u64,
                        ..Default::default()
                    },
                });
                continue;
            }
            if active.len() >= inner.cfg.max_batch {
                break;
            }
            let Some(lease) = inner.pool.lease() else {
                break;
            };
            let q = queue.pop_front().expect("front exists");
            let queue_wait_ns = q.enqueued_at.elapsed().as_nanos() as u64;
            active.push(ActiveSeq {
                slot: q.slot,
                lease,
                rng: StdRng::seed_from_u64(q.req.seed),
                next_input: q.req.prompt.clone(),
                req: q.req,
                tokens: Vec::new(),
                metrics: RequestMetrics {
                    queue_wait_ns,
                    ..Default::default()
                },
                admitted_at: Instant::now(),
                last_token_at: None,
            });
        }
        // Park only when fully idle; otherwise go run a step.
        if !active.is_empty() || inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !queue.is_empty() {
            // Idle but queue non-empty can only mean foreign leases
            // hold the pool; yield and retry rather than spin.
            drop(queue);
            std::thread::yield_now();
            continue;
        }
        inner.wakeup.wait(&mut queue);
    }
}

fn retire_cancelled(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    let mut i = 0;
    while i < active.len() {
        if active[i].slot.cancel_requested() {
            // Order-preserving removal keeps the surviving batch
            // composition deterministic.
            let seq = active.remove(i);
            inner.stats.lock().cancelled += 1;
            seq.resolve(RequestOutcome::Cancelled, &inner.pool);
        } else {
            i += 1;
        }
    }
}

/// Runs one batched engine step and post-processes every sequence.
fn step(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    let mut batch: Vec<BatchSeq> = active
        .iter_mut()
        .map(|seq| BatchSeq {
            cache: std::mem::replace(&mut seq.lease.cache, KvCache::new(&[], 0)),
            tokens: std::mem::take(&mut seq.next_input),
        })
        .collect();
    let result = inner.engine.forward_batch(&mut batch);
    // Caches come back even on error; return them to their leases.
    for (seq, slot) in active.iter_mut().zip(batch.iter_mut()) {
        seq.lease.cache = std::mem::replace(&mut slot.cache, KvCache::new(&[], 0));
    }

    match result {
        Ok(logits) => {
            // Pass 1: sample for every sequence in batch order. The
            // pairing between `active[i]` and `logits[i]` must not
            // shift mid-iteration, so no removal happens here; a
            // finished sequence is marked by leaving `next_input`
            // empty (it was taken when the batch was built and is
            // only refilled for survivors).
            for (seq, l) in active.iter_mut().zip(logits) {
                let next = seq.req.sampler.sample(l.row(l.rows() - 1), &mut seq.rng);
                // Sampled — hand the logits buffer back to the engine's
                // step arena for the next batch.
                inner.engine.recycle_logits(l);
                let now = Instant::now();
                match seq.last_token_at {
                    None => {
                        seq.metrics.ttft_ns =
                            Some(now.duration_since(seq.admitted_at).as_nanos() as u64);
                    }
                    Some(prev) => {
                        seq.metrics
                            .token_latencies_ns
                            .push(now.duration_since(prev).as_nanos() as u64);
                    }
                }
                seq.last_token_at = Some(now);
                seq.tokens.push(next);
                inner.stats.lock().tokens_generated += 1;

                let hit_stop = seq.req.stop_token == Some(next);
                let hit_len = seq.tokens.len() >= seq.req.max_new;
                if !(hit_stop || hit_len) {
                    seq.next_input = vec![next];
                }
            }
            // Pass 2: retire finished sequences, preserving the order
            // of survivors so the batch composition stays a
            // deterministic function of admission order.
            let mut i = 0;
            while i < active.len() {
                if active[i].next_input.is_empty() {
                    let seq = active.remove(i);
                    inner.stats.lock().completed += 1;
                    seq.resolve(RequestOutcome::Completed, &inner.pool);
                } else {
                    i += 1;
                }
            }
        }
        Err(e) => {
            // A step error poisons the whole batch: every in-flight
            // request fails (but still resolves), caches go back to
            // the pool (release resets them).
            let error = e.to_string();
            let mut stats = inner.stats.lock();
            stats.failed += active.len() as u64;
            drop(stats);
            for seq in active.drain(..) {
                seq.resolve(
                    RequestOutcome::Failed {
                        error: error.clone(),
                    },
                    &inner.pool,
                );
            }
        }
    }
}

/// Resolves everything left at shutdown as cancelled.
fn drain(inner: &ServerInner, active: Vec<ActiveSeq>) {
    for seq in active {
        inner.stats.lock().cancelled += 1;
        seq.resolve(RequestOutcome::Cancelled, &inner.pool);
    }
    let leftovers: Vec<Queued> = inner.queue.lock().drain(..).collect();
    for q in leftovers {
        inner.stats.lock().cancelled += 1;
        q.slot.resolve(RequestResult {
            outcome: RequestOutcome::Cancelled,
            tokens: Vec::new(),
            metrics: RequestMetrics {
                queue_wait_ns: q.enqueued_at.elapsed().as_nanos() as u64,
                ..Default::default()
            },
        });
    }
}
