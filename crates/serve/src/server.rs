//! The continuous-batching scheduler with chunked prefill.
//!
//! One scheduler thread owns the engine for the server's lifetime and
//! runs the serving loop: between engine steps it joins newly arrived
//! requests into the batch (admission-controlled by the KV-cache pool)
//! and retires finished or cancelled sequences.
//!
//! Each step is composed under a **token budget** instead of running
//! every admitted prompt whole: all active decode rows join first (one
//! token each), then pending prompts contribute at most one chunk of at
//! most [`ServerConfig::prefill_chunk`] tokens apiece, in admission
//! order, while the step's total stays within
//! [`ServerConfig::step_token_budget`]. A long prompt therefore
//! prefills across several steps while established sequences keep
//! decoding in the same batched forwards — decode inter-token latency
//! is bounded by the budget, not by the longest queued prompt. Chunked
//! prefill is bitwise identical to monolithic prefill (the engine's
//! position-dependent math is row-stable), so scheduling stays pure
//! orchestration.
//!
//! Admission additionally consults the pool's shared-prefix cache
//! (when [`ServerConfig::prefix_cache_bytes`] is nonzero): the longest
//! cached prefix of the prompt is copied into the fresh lease and the
//! scheduler prefills only the uncached suffix. Because cached rows
//! are frozen snapshots of rows the engine itself produced — and KV
//! rows are a prefix-deterministic function of the token prefix — the
//! seeded path yields bitwise-identical logits to a cold prefill. On
//! release, completed (and cancelled) sequences offer their fed-token
//! prefix back to the cache for future requests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use kt_core::{BatchSeq, EngineError, HybridEngine, RequestMetrics, ServeStats};
use kt_model::kvcache::KvCache;
use kt_model::pool::{CacheLease, KvCachePool};
use kt_model::prefix::PrefixCacheConfig;
use kt_tensor::Matrix;
use kt_trace::{LogHistogram, SpanKind};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::request::{Request, RequestHandle, RequestOutcome, RequestResult, RequestSlot};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum sequences active in one batched step (also sizes the
    /// KV-cache pool). Must be nonzero.
    pub max_batch: usize,
    /// Maximum prompt tokens one sequence prefills per step. Must be
    /// nonzero; a value at or above the longest admissible prompt
    /// reproduces monolithic (single-step) prefill.
    pub prefill_chunk: usize,
    /// Per-step token budget the scheduler composes each batched
    /// forward under: decode rows are admitted first (one token each),
    /// then pending prefill chunks fill the remainder. Must be at
    /// least `prefill_chunk`.
    pub step_token_budget: usize,
    /// Byte budget of the shared-prefix KV cache (frozen snapshots of
    /// released sequences, keyed by prompt tokens). `0` disables
    /// prefix reuse entirely; admission then always cold-prefills.
    pub prefix_cache_bytes: usize,
    /// Shortest prompt prefix worth seeding from the cache. Shorter
    /// matches are treated as misses (the copy would cost more than
    /// the prefill it saves). Must be nonzero.
    pub min_prefix_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 8,
            prefill_chunk: 64,
            step_token_budget: 128,
            prefix_cache_bytes: 32 << 20,
            min_prefix_len: 4,
        }
    }
}

/// A request waiting for admission.
struct Queued {
    req: Request,
    slot: Arc<RequestSlot>,
    enqueued_at: Instant,
}

/// What one active sequence does in the step being composed.
#[derive(Clone, Copy)]
enum Work {
    /// Decode one token (the sequence's next sampled token).
    Decode(u32),
    /// Prefill the next `len` prompt tokens; `last` marks the chunk
    /// that completes the prompt (it samples the first token).
    Chunk { len: usize, last: bool },
}

/// A sequence currently in the batch.
struct ActiveSeq {
    slot: Arc<RequestSlot>,
    lease: CacheLease,
    req: Request,
    rng: StdRng,
    /// Prompt tokens already fed to the engine. The prompt is consumed
    /// in chunks; the sequence becomes a decode row once this reaches
    /// `req.prompt.len()`.
    prefilled: usize,
    /// Next token to decode once the prompt is fully prefilled.
    /// `None` before the first sample and after the last one.
    next_token: Option<u32>,
    tokens: Vec<u32>,
    metrics: RequestMetrics,
    admitted_at: Instant,
    last_token_at: Option<Instant>,
}

impl ActiveSeq {
    /// Whether generation ended (stop token or length) and the slot is
    /// ready to resolve.
    fn is_done(&self) -> bool {
        self.prefilled == self.req.prompt.len()
            && self.next_token.is_none()
            && !self.tokens.is_empty()
    }

    fn resolve(self, outcome: RequestOutcome, inner: &ServerInner) {
        inner.record_request_hists(&self.metrics);
        // Release first so the admission valve reopens before any
        // waiter reacts to the result. Completed and cancelled caches
        // hold valid prefix rows (prompt tokens, then fed generations),
        // so their release path also offers the prefix to the cache; a
        // failed step may have left the cache mid-write, so it goes
        // back without an insert (release resets it either way).
        if matches!(outcome, RequestOutcome::Failed { .. }) {
            let _ = inner.pool.release(self.lease);
        } else {
            let len = self.lease.cache.seq_len();
            let from_prompt = len.min(self.prefilled);
            let from_gen = (len - from_prompt).min(self.tokens.len());
            let mut fed: Vec<u32> = Vec::with_capacity(from_prompt + from_gen);
            fed.extend_from_slice(&self.req.prompt[..from_prompt]);
            fed.extend_from_slice(&self.tokens[..from_gen]);
            let _ = inner.pool.release_with_prefix(self.lease, &fed);
        }
        self.slot.resolve(RequestResult {
            outcome,
            tokens: self.tokens,
            metrics: self.metrics,
        });
    }
}

/// Server-side latency histograms, fed at request resolution.
#[derive(Default)]
struct LatencyHists {
    /// Queue wait of every resolved request — including requests
    /// cancelled or failed while still queued, which never produce a
    /// token but did wait. Leaving them out would survivorship-bias
    /// the queue-wait percentiles toward requests that got served.
    queue_wait: LogHistogram,
    /// Time to first token of every request that produced one.
    ttft: LogHistogram,
    /// Inter-token latencies across all requests.
    itl: LogHistogram,
}

struct ServerInner {
    engine: Arc<HybridEngine>,
    pool: KvCachePool,
    queue: Mutex<VecDeque<Queued>>,
    /// Signals the scheduler: new arrival or shutdown.
    wakeup: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<ServeStats>,
    hists: Mutex<LatencyHists>,
    cfg: ServerConfig,
}

impl ServerInner {
    /// Folds a resolved request's latency samples into the server
    /// histograms. Every resolution path that saw the queue calls
    /// this, whatever the outcome.
    fn record_request_hists(&self, m: &RequestMetrics) {
        let mut h = self.hists.lock();
        h.queue_wait.record(m.queue_wait_ns);
        if let Some(t) = m.ttft_ns {
            h.ttft.record(t);
        }
        h.itl.record_all(m.token_latencies_ns.iter().copied());
    }
}

/// A running continuous-batching server over one [`HybridEngine`].
///
/// Dropping the server shuts the scheduler down; queued and in-flight
/// requests resolve as cancelled.
pub struct Server {
    inner: Arc<ServerInner>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the scheduler thread over `engine`.
    ///
    /// # Errors
    ///
    /// Rejects an invalid configuration (`max_batch == 0`,
    /// `prefill_chunk == 0`, or `step_token_budget < prefill_chunk`)
    /// instead of papering over it.
    pub fn start(engine: Arc<HybridEngine>, cfg: ServerConfig) -> Result<Server, EngineError> {
        if cfg.max_batch == 0 {
            return Err(EngineError::config("ServerConfig.max_batch must be nonzero"));
        }
        if cfg.prefill_chunk == 0 {
            return Err(EngineError::config("ServerConfig.prefill_chunk must be nonzero"));
        }
        if cfg.step_token_budget < cfg.prefill_chunk {
            return Err(EngineError::config(format!(
                "ServerConfig.step_token_budget ({}) must be at least prefill_chunk ({})",
                cfg.step_token_budget, cfg.prefill_chunk
            )));
        }
        if cfg.min_prefix_len == 0 {
            return Err(EngineError::config("ServerConfig.min_prefix_len must be nonzero"));
        }
        let mut pool = KvCachePool::for_prototype(&engine.fresh_cache(), cfg.max_batch);
        if cfg.prefix_cache_bytes > 0 {
            pool = pool.with_prefix_cache(PrefixCacheConfig {
                capacity_bytes: cfg.prefix_cache_bytes,
                min_prefix_len: cfg.min_prefix_len,
            });
        }
        kt_trace::enable_from_env();
        let inner = Arc::new(ServerInner {
            engine,
            pool,
            queue: Mutex::new(VecDeque::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(ServeStats::default()),
            hists: Mutex::new(LatencyHists::default()),
            cfg,
        });
        let loop_inner = Arc::clone(&inner);
        let scheduler = std::thread::Builder::new()
            .name("kt-serve-scheduler".into())
            .spawn(move || scheduler_loop(&loop_inner))
            .expect("spawn scheduler thread");
        Ok(Server {
            inner,
            scheduler: Some(scheduler),
        })
    }

    /// Submits a request and returns a handle to wait on or cancel.
    /// Invalid requests (empty prompt, out-of-vocab token, prompt +
    /// `max_new` beyond the cache capacity) resolve immediately as
    /// failed instead of poisoning a batch.
    pub fn submit(&self, req: Request) -> RequestHandle {
        let slot = RequestSlot::new();
        let handle = RequestHandle {
            slot: Arc::clone(&slot),
        };
        if let Err(error) = self.validate(&req) {
            self.inner.stats.lock().failed += 1;
            slot.resolve(RequestResult {
                outcome: RequestOutcome::Failed { error },
                tokens: Vec::new(),
                metrics: RequestMetrics::default(),
            });
            return handle;
        }
        // A prompt that already ends in the stop token has nothing to
        // generate: the first sampled token could only ever trail the
        // stop. Resolve it completed with zero tokens instead of
        // spending prefill on it.
        if req.stop_token.is_some() && req.prompt.last().copied() == req.stop_token {
            self.inner.stats.lock().completed += 1;
            slot.resolve(RequestResult {
                outcome: RequestOutcome::Completed,
                tokens: Vec::new(),
                metrics: RequestMetrics::default(),
            });
            return handle;
        }
        let mut queue = self.inner.queue.lock();
        queue.push_back(Queued {
            req,
            slot,
            enqueued_at: Instant::now(),
        });
        drop(queue);
        self.inner.wakeup.notify_all();
        handle
    }

    /// Snapshot of the aggregate serving statistics, with the engine's
    /// cumulative step-arena counters and virtual-GPU launch counters
    /// folded in.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.inner.stats.lock().clone();
        s.set_arena(&self.inner.engine.workspace_stats());
        s.set_launch(&self.inner.engine.launch_stats());
        s.set_pool(&self.inner.pool.occupancy());
        if let Some(px) = self.inner.pool.prefix_stats() {
            s.set_prefix(&px);
        }
        s
    }

    /// Prometheus-style text exposition of the serving metrics:
    /// request/token/step counters, queue and batch gauges, the
    /// engine's arena and virtual-GPU launch counters, and the
    /// queue-wait / TTFT / inter-token latency histograms (log₂
    /// buckets, cumulative `_bucket{le=...}` form). Suitable for
    /// serving at a `/metrics` endpoint verbatim.
    pub fn stats_text(&self) -> String {
        let s = self.stats();
        let mut out = String::with_capacity(4096);
        let c = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let g = |out: &mut String, name: &str, help: &str, v: f64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        c(&mut out, "kt_requests_completed_total", "Requests that ran to completion.", s.completed);
        c(&mut out, "kt_requests_cancelled_total", "Requests cancelled by their client.", s.cancelled);
        c(&mut out, "kt_requests_failed_total", "Requests that failed with an engine error.", s.failed);
        c(&mut out, "kt_tokens_generated_total", "Tokens emitted across all requests.", s.tokens_generated);
        c(&mut out, "kt_steps_total", "Continuous-batching steps executed.", s.steps);
        c(&mut out, "kt_prefill_chunks_total", "Prefill chunks executed.", s.prefill_chunks);
        c(&mut out, "kt_prefill_tokens_total", "Prompt tokens fed through prefill chunks.", s.prefill_tokens);
        c(&mut out, "kt_gpu_kernel_launches_total", "Kernels launched individually on the virtual GPU.", s.gpu_kernel_launches);
        c(&mut out, "kt_gpu_host_funcs_total", "Host-function callbacks executed in-stream.", s.gpu_host_funcs);
        c(&mut out, "kt_gpu_graph_replays_total", "Graph replays (one launch each).", s.gpu_graph_replays);
        c(&mut out, "kt_gpu_graph_ops_total", "Ops executed via graph replay.", s.gpu_graph_ops);
        c(&mut out, "kt_gpu_launch_overhead_ns_total", "Simulated launch latency charged on the device.", s.gpu_launch_overhead_ns);
        c(&mut out, "kt_gpu_busy_ns_total", "Nanoseconds the device spent executing ops.", s.gpu_busy_ns);
        c(&mut out, "kt_arena_allocations_total", "Fresh heap allocations performed by the step arenas.", s.arena_allocations);
        c(&mut out, "kt_arena_bytes_allocated_total", "Bytes served by fresh heap allocations.", s.arena_bytes_allocated);
        c(&mut out, "kt_arena_bytes_served_total", "Bytes served by reusing an existing arena buffer.", s.arena_bytes_served);
        c(&mut out, "kt_prefix_lookups_total", "Prefix-cache lookups at admission.", s.prefix_lookups);
        c(&mut out, "kt_prefix_hits_total", "Lookups that matched a reusable prefix.", s.prefix_hits);
        c(&mut out, "kt_prefix_misses_total", "Lookups that matched nothing reusable.", s.prefix_misses);
        c(&mut out, "kt_prefix_hit_tokens_total", "Prompt tokens seeded from cached prefixes instead of prefilled.", s.prefix_hit_tokens);
        c(&mut out, "kt_prefix_insertions_total", "Prefix segments frozen into the cache.", s.prefix_insertions);
        c(&mut out, "kt_prefix_evictions_total", "Prefix segments evicted by the byte budget.", s.prefix_evictions);
        c(&mut out, "kt_prefix_evicted_bytes_total", "Bytes freed by prefix eviction.", s.prefix_evicted_bytes);
        g(&mut out, "kt_prefix_resident_bytes", "Bytes resident in frozen prefix segments.", s.prefix_resident_bytes as f64);
        g(&mut out, "kt_prefix_entries", "Prefix segments currently resident.", s.prefix_entries as f64);
        g(&mut out, "kt_kv_leases_in_use", "KV caches currently leased to sequences.", s.kv_leases_in_use as f64);
        g(&mut out, "kt_kv_leases_free", "Reset KV caches parked in the pool.", s.kv_leases_free as f64);
        g(&mut out, "kt_kv_leases_peak", "High-water mark of concurrent leases.", s.kv_leases_peak as f64);
        g(&mut out, "kt_kv_pooled_bytes", "Heap bytes retained by parked pool caches.", s.kv_pooled_bytes as f64);
        g(&mut out, "kt_queue_depth", "Requests currently waiting for admission.", self.queued() as f64);
        g(&mut out, "kt_active_sequences", "Sequences currently admitted (leased caches).", self.active() as f64);
        g(&mut out, "kt_peak_queue_depth", "Deepest admission queue observed.", s.peak_queue_depth as f64);
        g(&mut out, "kt_mean_batch_occupancy", "Mean active sequences per step.", s.mean_occupancy());
        g(&mut out, "kt_arena_high_water_bytes", "High-water mark of bytes held across step arenas.", s.arena_high_water_bytes as f64);
        let hists = self.inner.hists.lock();
        render_histogram(
            &mut out,
            "kt_request_queue_wait_ns",
            "Queue wait of every resolved request (including those cancelled or failed while queued).",
            &hists.queue_wait,
        );
        render_histogram(
            &mut out,
            "kt_request_ttft_ns",
            "Time from admission to first emitted token.",
            &hists.ttft,
        );
        render_histogram(
            &mut out,
            "kt_request_inter_token_ns",
            "Inter-token latencies across all requests.",
            &hists.itl,
        );
        out
    }

    /// The three server latency histograms (queue wait, TTFT,
    /// inter-token), cloned, for programmatic percentile queries.
    pub fn latency_histograms(&self) -> (LogHistogram, LogHistogram, LogHistogram) {
        let h = self.inner.hists.lock();
        (h.queue_wait.clone(), h.ttft.clone(), h.itl.clone())
    }

    /// Sequences currently admitted (leased caches).
    pub fn active(&self) -> usize {
        self.inner.pool.in_use()
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Stops the scheduler and resolves every unfinished request as
    /// cancelled. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wakeup.notify_all();
        if let Some(t) = self.scheduler.take() {
            let _ = t.join();
        }
    }

    fn validate(&self, req: &Request) -> Result<(), String> {
        if req.prompt.is_empty() {
            return Err("request prompt is empty".into());
        }
        let vocab = self.inner.engine.config().vocab;
        if let Some(&t) = req.prompt.iter().find(|&&t| t as usize >= vocab) {
            return Err(format!("prompt token {t} outside vocab {vocab}"));
        }
        let capacity = self.inner.pool.capacity();
        if req.prompt.len() + req.max_new > capacity {
            return Err(format!(
                "prompt ({}) + max_new ({}) exceeds cache capacity {capacity}",
                req.prompt.len(),
                req.max_new
            ));
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("max_batch", &self.inner.cfg.max_batch)
            .field("prefill_chunk", &self.inner.cfg.prefill_chunk)
            .field("step_token_budget", &self.inner.cfg.step_token_budget)
            .field("active", &self.active())
            .field("queued", &self.queued())
            .finish()
    }
}

/// Renders one histogram in Prometheus text format: cumulative
/// `_bucket{le="..."}` lines (one per log₂ bucket up to the highest
/// occupied one, then `+Inf`), `_sum`, and `_count`.
fn render_histogram(out: &mut String, name: &str, help: &str, h: &LogHistogram) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} histogram\n"
    ));
    let top_occupied = (0..kt_trace::hist::N_BUCKETS)
        .rev()
        .find(|&i| h.bucket_count(i) > 0);
    let mut cum = 0u64;
    if let Some(top) = top_occupied {
        // Bucket 64's upper bound is u64::MAX; it folds into +Inf.
        for i in 0..=top.min(63) {
            cum += h.bucket_count(i);
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                LogHistogram::bucket_upper_bound(i)
            ));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

fn scheduler_loop(inner: &ServerInner) {
    let mut active: Vec<ActiveSeq> = Vec::new();
    loop {
        // Join arrivals (and park while idle).
        admit(inner, &mut active);
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Retire cancellations requested since the last step, before
        // spending a step on them. A sequence cancelled between prefill
        // chunks retires here too: its lease goes back to the pool at
        // the step boundary, mid-prompt.
        retire_cancelled(inner, &mut active);
        if active.is_empty() {
            continue;
        }

        {
            let mut stats = inner.stats.lock();
            stats.steps += 1;
            stats.occupancy_sum += active.len() as u64;
            let depth = inner.queue.lock().len() as u64;
            stats.queue_depth_sum += depth;
            stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        }

        step(inner, &mut active);
    }
    drain(inner, active);
}

/// Admits queued requests while the batch has room; blocks when there
/// is nothing to do at all.
fn admit(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    loop {
        let mut queue = inner.queue.lock();
        while let Some(front) = queue.front() {
            if front.slot.cancel_requested() {
                // Cancelled while queued: resolve without admitting.
                // The queue wait still counts toward the histograms.
                let q = queue.pop_front().expect("front exists");
                inner.stats.lock().cancelled += 1;
                let metrics = RequestMetrics {
                    queue_wait_ns: q.enqueued_at.elapsed().as_nanos() as u64,
                    ..Default::default()
                };
                inner.record_request_hists(&metrics);
                q.slot.resolve(RequestResult {
                    outcome: RequestOutcome::Cancelled,
                    tokens: Vec::new(),
                    metrics,
                });
                continue;
            }
            if active.len() >= inner.cfg.max_batch {
                break;
            }
            let Some((mut lease, mut seeded)) = inner.pool.lease_for_prompt(&front.req.prompt)
            else {
                break;
            };
            // Belt and braces: a seeded cache must look exactly like a
            // partially prefilled one to the engine. If it does not,
            // fall back to a cold prefill rather than feed the batch a
            // corrupt cache.
            if seeded > 0 && inner.engine.validate_cache(&lease.cache).is_err() {
                lease.cache.reset();
                seeded = 0;
            }
            let q = queue.pop_front().expect("front exists");
            let queue_wait_ns = q.enqueued_at.elapsed().as_nanos() as u64;
            kt_trace::instant(
                SpanKind::ServeAdmit,
                (queue_wait_ns / 1_000).min(u32::MAX as u64) as u32,
                seeded as u32,
            );
            active.push(ActiveSeq {
                slot: q.slot,
                lease,
                rng: StdRng::seed_from_u64(q.req.seed),
                req: q.req,
                prefilled: seeded,
                next_token: None,
                tokens: Vec::new(),
                metrics: RequestMetrics {
                    queue_wait_ns,
                    ..Default::default()
                },
                admitted_at: Instant::now(),
                last_token_at: None,
            });
        }
        // Park only when fully idle; otherwise go run a step.
        if !active.is_empty() || inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !queue.is_empty() {
            // Idle but queue non-empty can only mean foreign leases
            // hold the pool; yield and retry rather than spin.
            drop(queue);
            std::thread::yield_now();
            continue;
        }
        inner.wakeup.wait(&mut queue);
    }
}

fn retire_cancelled(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    let mut i = 0;
    while i < active.len() {
        if active[i].slot.cancel_requested() {
            // Order-preserving removal keeps the surviving batch
            // composition deterministic.
            let seq = active.remove(i);
            inner.stats.lock().cancelled += 1;
            seq.resolve(RequestOutcome::Cancelled, inner);
        } else {
            i += 1;
        }
    }
}

/// Composes the step under the token budget: every decode row first
/// (one token each, always admitted), then pending prefill chunks of at
/// most `prefill_chunk` tokens in admission order until the budget is
/// spent. Returns one `Work` slot per active sequence; `None` idles
/// the sequence this step.
fn compose(inner: &ServerInner, active: &[ActiveSeq]) -> Vec<Option<Work>> {
    let mut plan: Vec<Option<Work>> = Vec::with_capacity(active.len());
    let mut n_decode = 0usize;
    for seq in active {
        if seq.prefilled == seq.req.prompt.len() {
            let t = seq
                .next_token
                .expect("active sequence past prefill holds its next token");
            plan.push(Some(Work::Decode(t)));
            n_decode += 1;
        } else {
            plan.push(None);
        }
    }
    let mut budget = inner.cfg.step_token_budget.saturating_sub(n_decode);
    let mut granted = false;
    for (seq, slot) in active.iter().zip(plan.iter_mut()) {
        if slot.is_some() {
            continue;
        }
        let remaining = seq.req.prompt.len() - seq.prefilled;
        let take = inner.cfg.prefill_chunk.min(remaining).min(budget);
        if take == 0 {
            continue;
        }
        budget -= take;
        granted = true;
        *slot = Some(Work::Chunk {
            len: take,
            last: take == remaining,
        });
    }
    // Anti-starvation: when decode rows alone exhaust the budget, the
    // oldest pending prompt still advances one chunk — TTFT stays
    // bounded (the budget is a target, not a liveness hazard).
    if !granted {
        for (seq, slot) in active.iter().zip(plan.iter_mut()) {
            if slot.is_none() {
                let remaining = seq.req.prompt.len() - seq.prefilled;
                let take = inner.cfg.prefill_chunk.min(remaining);
                *slot = Some(Work::Chunk {
                    len: take,
                    last: take == remaining,
                });
                break;
            }
        }
    }
    plan
}

/// Runs one batched engine step over the composed plan and
/// post-processes every scheduled sequence.
fn step(inner: &ServerInner, active: &mut Vec<ActiveSeq>) {
    let plan = compose(inner, active);
    let step_tokens: usize = plan
        .iter()
        .flatten()
        .map(|w| match w {
            Work::Decode(_) => 1,
            Work::Chunk { len, .. } => *len,
        })
        .sum();
    let scheduled_seqs = plan.iter().flatten().count();
    let _span = kt_trace::span_ab(
        SpanKind::ServeStep,
        scheduled_seqs as u32,
        step_tokens as u32,
    );

    // Build the batch from the scheduled sequences; `scheduled[b]` maps
    // batch slot `b` back to its index in `active`.
    let mut scheduled: Vec<usize> = Vec::with_capacity(active.len());
    let mut batch: Vec<BatchSeq> = Vec::with_capacity(active.len());
    for (i, (seq, work)) in active.iter_mut().zip(&plan).enumerate() {
        let Some(work) = work else { continue };
        let cache = std::mem::replace(&mut seq.lease.cache, KvCache::new(&[], 0));
        batch.push(match *work {
            Work::Decode(t) => BatchSeq::decode(cache, t),
            Work::Chunk { len, last } => {
                let chunk = seq.req.prompt[seq.prefilled..seq.prefilled + len].to_vec();
                if last {
                    BatchSeq::prefill(cache, chunk)
                } else {
                    BatchSeq::prefill_chunk(cache, chunk)
                }
            }
        });
        scheduled.push(i);
    }
    debug_assert!(!batch.is_empty(), "compose schedules at least one sequence");

    let result = inner.engine.forward_batch(&mut batch);
    // Caches come back even on error; return them to their leases.
    for (&i, slot) in scheduled.iter().zip(batch.iter_mut()) {
        active[i].lease.cache = std::mem::replace(&mut slot.cache, KvCache::new(&[], 0));
    }

    match result {
        Ok(logits) => {
            // Pass 1: advance every scheduled sequence in batch order.
            // The pairing between `scheduled`/`logits` must not shift
            // mid-iteration, so no removal happens here; finished
            // sequences are retired in pass 2.
            for (&i, l) in scheduled.iter().zip(logits) {
                let seq = &mut active[i];
                match plan[i].expect("scheduled implies planned") {
                    Work::Chunk { len, last } => {
                        seq.prefilled += len;
                        kt_trace::instant(SpanKind::ServePrefillChunk, len as u32, last as u32);
                        {
                            let mut stats = inner.stats.lock();
                            stats.prefill_chunks += 1;
                            stats.prefill_tokens += len as u64;
                        }
                        if last {
                            let l = l.expect("final chunk requested logits");
                            sample_next(inner, seq, l);
                        } else {
                            debug_assert!(l.is_none(), "mid-chunk produces no logits");
                        }
                    }
                    Work::Decode(_) => {
                        let l = l.expect("decode row requested logits");
                        sample_next(inner, seq, l);
                    }
                }
            }
            // Pass 2: retire finished sequences, preserving the order
            // of survivors so the batch composition stays a
            // deterministic function of admission order.
            let mut i = 0;
            while i < active.len() {
                if active[i].is_done() {
                    let seq = active.remove(i);
                    inner.stats.lock().completed += 1;
                    seq.resolve(RequestOutcome::Completed, inner);
                } else {
                    i += 1;
                }
            }
        }
        Err(e) => {
            // A step error poisons the whole batch: every in-flight
            // request fails (but still resolves), caches go back to
            // the pool (release resets them).
            let error = e.to_string();
            let mut stats = inner.stats.lock();
            stats.failed += active.len() as u64;
            drop(stats);
            for seq in active.drain(..) {
                seq.resolve(
                    RequestOutcome::Failed {
                        error: error.clone(),
                    },
                    inner,
                );
            }
        }
    }
}

/// Samples the sequence's next token from the step's logits (last row:
/// the newest position) and applies stop-token/length policy.
fn sample_next(inner: &ServerInner, seq: &mut ActiveSeq, l: Matrix) {
    let next = seq.req.sampler.sample(l.row(l.rows() - 1), &mut seq.rng);
    // Sampled — hand the logits buffer back to the engine's step arena
    // for the next batch.
    inner.engine.recycle_logits(l);
    let now = Instant::now();
    match seq.last_token_at {
        None => {
            seq.metrics.ttft_ns = Some(now.duration_since(seq.admitted_at).as_nanos() as u64);
        }
        Some(prev) => {
            seq.metrics
                .token_latencies_ns
                .push(now.duration_since(prev).as_nanos() as u64);
        }
    }
    seq.last_token_at = Some(now);
    seq.tokens.push(next);
    inner.stats.lock().tokens_generated += 1;

    let hit_stop = seq.req.stop_token == Some(next);
    let hit_len = seq.tokens.len() >= seq.req.max_new;
    seq.next_token = if hit_stop || hit_len { None } else { Some(next) };
}

/// Resolves everything left at shutdown as cancelled.
fn drain(inner: &ServerInner, active: Vec<ActiveSeq>) {
    for seq in active {
        inner.stats.lock().cancelled += 1;
        seq.resolve(RequestOutcome::Cancelled, inner);
    }
    let leftovers: Vec<Queued> = inner.queue.lock().drain(..).collect();
    for q in leftovers {
        inner.stats.lock().cancelled += 1;
        let metrics = RequestMetrics {
            queue_wait_ns: q.enqueued_at.elapsed().as_nanos() as u64,
            ..Default::default()
        };
        inner.record_request_hists(&metrics);
        q.slot.resolve(RequestResult {
            outcome: RequestOutcome::Cancelled,
            tokens: Vec::new(),
            metrics,
        });
    }
}
