//! Continuous-batching serving layer for the KTransformers engine.
//!
//! The paper's engine serves one request at a time (batch-1 local
//! serving, §6.1). This crate layers a multi-request front end on top:
//!
//! * [`Server`] owns a scheduler thread that runs the continuous
//!   batching loop: between engine steps it admits newly arrived
//!   requests and retires finished or cancelled sequences, so the
//!   batch composition changes step by step without ever draining.
//! * Admission is controlled by a [`kt_model::pool::KvCachePool`]:
//!   a request is admitted only when a per-sequence KV cache can be
//!   leased, bounding resident KV memory.
//! * Each step drives every active sequence through
//!   [`kt_core::HybridEngine::forward_batch`], composed under a token
//!   budget: every established sequence decodes one token, and pending
//!   prompts prefill in chunks of at most
//!   [`ServerConfig::prefill_chunk`] tokens, as many as fit in
//!   [`ServerConfig::step_token_budget`]. A long prompt no longer
//!   stalls everyone else's inter-token latency — it streams through
//!   several steps while decode rows keep flowing (decode rows are
//!   always admitted first). Expert Deferral stays correct per
//!   sequence: the engine defers only decode rows, never a prefill
//!   chunk, even a 1-token final chunk.
//! * Scheduling is pure orchestration: a request's tokens are
//!   bit-identical to running [`kt_core::HybridEngine::generate`]
//!   alone, for *any* chunking — position-dependent projections use a
//!   row-stable GEMM, so a chunked prefill writes exactly the bits a
//!   monolithic prefill would (pin a single kernel class — e.g.
//!   `Backend::TiledOnly` — to keep expert GEMMs
//!   batch-size-invariant; the default hybrid dispatch is only
//!   tolerance-level equal).
//! * Per-request latency lands in [`kt_core::RequestMetrics`] (queue
//!   wait, TTFT, inter-token gaps) and aggregate behavior in
//!   [`kt_core::ServeStats`] (outcome counts, queue depth, batch
//!   occupancy).
//! * Every request carries an [`SloClass`]
//!   (interactive/standard/batch). Starting the server with
//!   [`ServerConfig::slo`] set to an [`SloPolicy`] turns on SLO-aware
//!   serving: admission picks the most urgent class first (FIFO within
//!   a class), an admission controller predicts queued requests' TTFT
//!   slack from the server's own latency histograms and sheds
//!   negative-slack lower-class work ([`RequestOutcome::Shed`]), and
//!   step composition throttles prefill when decode rows are at risk
//!   of ITL violations. Without a policy the server is exactly the
//!   pure-FIFO scheduler described above.
//! * With tracing enabled (`KT_TRACE=1` or [`kt_trace::enable`]),
//!   every request is traced end to end: a tail-latency flight
//!   recorder keeps recent per-request waterfalls — SLO-violating,
//!   shed, and failed requests frozen so ordinary traffic cannot
//!   evict them — each decomposed into named latency
//!   [`Component`]s that sum to the measured end-to-end time.
//!   Surfaced via [`Server::breakdown`],
//!   [`Server::export_request_trace`] (a per-request Perfetto track
//!   group), and the `kt_latency_component_seconds` histogram family
//!   in [`Server::stats_text`].
//!
//! ```
//! use kt_core::{EngineConfig, HybridEngine};
//! use kt_model::ModelPreset;
//! use kt_serve::{Request, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let cfg = ModelPreset::DeepSeekV3.tiny_config();
//! let engine = Arc::new(
//!     HybridEngine::random(&cfg, EngineConfig::default()).unwrap(),
//! );
//! let server = Server::start(
//!     engine,
//!     ServerConfig {
//!         max_batch: 4,
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//! let handle = server.submit(Request::greedy(&[1, 2, 3], 8));
//! let result = handle.wait();
//! assert!(result.is_completed());
//! assert_eq!(result.tokens.len(), 8);
//! server.shutdown();
//! ```

mod metrics;
mod request;
pub mod preempt;
pub mod sched;
mod server;
pub mod slo;

pub use kt_trace::{Component, RequestBreakdown};
pub use request::{Request, RequestHandle, RequestOutcome, RequestResult};
pub use preempt::{PreemptCostModel, PreemptMode, PreemptPolicy};
pub use server::{Server, ServerConfig};
pub use slo::{ClassCounters, SloClass, SloPolicy, SloTarget};

#[cfg(test)]
mod tests {
    use super::*;
    use kt_core::{EngineConfig, HybridEngine, SchedMode};
    use kt_model::ModelPreset;
    use std::sync::Arc;
    use std::time::Duration;

    fn cfg(max_batch: usize) -> ServerConfig {
        ServerConfig {
            max_batch,
            ..Default::default()
        }
    }

    fn engine(seed: u64) -> Arc<HybridEngine> {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        Arc::new(
            HybridEngine::random(
                &cfg,
                EngineConfig {
                    n_cpu_workers: 2,
                    mode: SchedMode::AsyncGraph,
                    n_deferred: 2,
                    // One kernel class keeps tokens bit-identical no
                    // matter how the batch composition fluctuates.
                    backend: kt_kernels::dispatch::Backend::TiledOnly,
                    seed,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn single_request_completes() {
        let server = Server::start(engine(1), cfg(2)).unwrap();
        let result = server.submit(Request::greedy(&[1, 2, 3], 6)).wait();
        assert!(result.is_completed(), "{:?}", result.outcome);
        assert_eq!(result.tokens.len(), 6);
        assert!(result.metrics.ttft_ns.is_some());
        assert_eq!(result.metrics.n_tokens(), 6);
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.tokens_generated, 6);
        server.shutdown();
    }

    #[test]
    fn invalid_requests_fail_fast() {
        let server = Server::start(engine(2), ServerConfig::default()).unwrap();
        let empty = server.submit(Request::greedy(&[], 4)).wait();
        assert!(matches!(empty.outcome, RequestOutcome::Failed { .. }));
        let oov = server.submit(Request::greedy(&[70_000], 4)).wait();
        assert!(matches!(oov.outcome, RequestOutcome::Failed { .. }));
        let long = server.submit(Request::greedy(&[1], usize::MAX / 2)).wait();
        assert!(matches!(long.outcome, RequestOutcome::Failed { .. }));
        // Failed validation never touches the engine or the pool.
        assert_eq!(server.stats().steps, 0);
        assert_eq!(server.active(), 0);
        server.shutdown();
    }

    #[test]
    fn stop_token_ends_generation_early() {
        let server = Server::start(engine(3), ServerConfig::default()).unwrap();
        // Learn what greedy emits first, then replay with it as stop.
        let probe = server.submit(Request::greedy(&[4, 5], 3)).wait();
        let stop = probe.tokens[0];
        let mut req = Request::greedy(&[4, 5], 64);
        req.stop_token = Some(stop);
        let result = server.submit(req).wait();
        assert!(result.is_completed());
        assert_eq!(result.tokens, vec![stop], "stops after the stop token");
        server.shutdown();
    }

    #[test]
    fn stop_token_as_final_prompt_token_resolves_immediately() {
        let server = Server::start(engine(14), ServerConfig::default()).unwrap();
        let mut req = Request::greedy(&[4, 5, 9], 64);
        req.stop_token = Some(9);
        let result = server.submit(req).wait();
        assert!(result.is_completed(), "{:?}", result.outcome);
        assert!(result.tokens.is_empty(), "nothing to generate past the stop");
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        // Resolved at submission: the engine never ran a step for it.
        assert_eq!(stats.steps, 0);
        assert_eq!(server.active(), 0);
        // A stop token *inside* the prompt does not trigger the fast
        // path — generation proceeds normally.
        let mut mid = Request::greedy(&[9, 4, 5], 4);
        mid.stop_token = Some(9);
        let r = server.submit(mid).wait();
        assert!(r.is_completed());
        assert!(!r.tokens.is_empty(), "mid-prompt stop token still generates");
        server.shutdown();
    }

    #[test]
    fn shared_prefix_reuse_is_bitwise_identical_and_observable() {
        let prompt: Vec<u32> = (0..32u32).map(|i| (i * 7 + 1) % 250).collect();
        let n_new = 6;

        // Reference: prefix cache disabled — every request cold-prefills.
        let cold_server = Server::start(
            engine(15),
            ServerConfig {
                prefix_cache_bytes: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let cold = cold_server.submit(Request::greedy(&prompt, n_new)).wait();
        assert!(cold.is_completed());
        assert_eq!(cold_server.stats().prefix_lookups, 0, "prefix cache disabled");
        cold_server.shutdown();

        // Same weights, prefix cache on: first request misses and
        // freezes its prefix on release; the second seeds 31 rows from
        // the cache and prefills only the final prompt token.
        let server = Server::start(engine(15), ServerConfig::default()).unwrap();
        let first = server.submit(Request::greedy(&prompt, n_new)).wait();
        assert!(first.is_completed());
        let second = server.submit(Request::greedy(&prompt, n_new)).wait();
        assert!(second.is_completed());
        assert_eq!(first.tokens, cold.tokens, "cold path unchanged by the cache");
        assert_eq!(second.tokens, cold.tokens, "warm path is bitwise-identical");

        let stats = server.stats();
        assert_eq!(stats.prefix_lookups, 2);
        assert_eq!(stats.prefix_misses, 1);
        assert_eq!(stats.prefix_hits, 1);
        assert_eq!(stats.prefix_hit_tokens, (prompt.len() - 1) as u64);
        // Prefill fed the whole prompt cold, then only the uncached
        // final token warm.
        assert_eq!(stats.prefill_tokens, (prompt.len() + 1) as u64);
        assert!(stats.prefix_insertions >= 1);
        assert!(stats.prefix_resident_bytes > 0);
        assert!(stats.prefix_entries >= 1);
        assert!(stats.kv_leases_peak >= 1);
        server.shutdown();
    }

    #[test]
    fn cancellation_resolves_queued_and_active() {
        let server = Server::start(engine(4), cfg(1)).unwrap();
        // Keep the batch busy so a second request must queue.
        let busy = server.submit(Request::greedy(&[1, 2, 3], 64));
        let queued = server.submit(Request::greedy(&[6, 7], 64));
        queued.cancel();
        let q = queued.wait_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(q.outcome, RequestOutcome::Cancelled);
        assert_eq!(q.tokens.len(), 0, "cancelled before admission");
        busy.cancel();
        let b = busy.wait_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(b.outcome, RequestOutcome::Cancelled);
        server.shutdown();
    }

    #[test]
    fn shutdown_resolves_everything() {
        let server = Server::start(engine(5), cfg(1)).unwrap();
        let a = server.submit(Request::greedy(&[1, 2], 50));
        let handles: Vec<_> = (0..4)
            .map(|i| server.submit(Request::greedy(&[i + 1], 50)))
            .collect();
        server.shutdown();
        // Every handle resolves (completed before shutdown, or
        // cancelled by it) — nothing hangs.
        let _ = a.wait_timeout(Duration::from_secs(5)).expect("resolved");
        for h in handles {
            let _ = h.wait_timeout(Duration::from_secs(5)).expect("resolved");
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_start() {
        for (bad, field) in [
            (
                ServerConfig {
                    max_batch: 0,
                    ..Default::default()
                },
                "max_batch",
            ),
            (
                ServerConfig {
                    prefill_chunk: 0,
                    ..Default::default()
                },
                "prefill_chunk",
            ),
            (
                ServerConfig {
                    prefill_chunk: 64,
                    step_token_budget: 63,
                    ..Default::default()
                },
                "step_token_budget",
            ),
        ] {
            let err = Server::start(engine(7), bad).expect_err("config must be rejected");
            assert!(
                err.to_string().contains(field),
                "error should name the offending field: {err}"
            );
        }
        // Dynamic placement whose expert cache cannot hold even one
        // routed expert is rejected too, naming the engine field.
        let model = ModelPreset::DeepSeekV3.tiny_config();
        let tiny_cache = Arc::new(
            HybridEngine::random(
                &model,
                EngineConfig {
                    n_cpu_workers: 2,
                    placement: kt_core::PlacementPolicy::Dynamic,
                    expert_cache_bytes: 1,
                    seed: 7,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let err = Server::start(tiny_cache, ServerConfig::default())
            .expect_err("undersized expert cache must be rejected");
        assert!(err.to_string().contains("expert_cache_bytes"), "{err}");
    }

    #[test]
    fn dynamic_placement_serves_identical_tokens_and_exposes_cache_stats() {
        // Same workload on a static-split engine and a dynamic-placement
        // engine (identical weights/seed otherwise): every served token
        // must match, and the expert-cache counters must surface in
        // both ServeStats and the Prometheus exposition.
        let prompts: Vec<Vec<u32>> = (0..4).map(|i| vec![i + 1, 2 * i + 3, 11]).collect();
        let serve_all = |server: &Server| -> Vec<Vec<u32>> {
            prompts
                .iter()
                .map(|p| server.submit(Request::greedy(p, 5)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.wait().tokens)
                .collect()
        };

        let fifo = Server::start(engine(30), cfg(3)).unwrap();
        let base = serve_all(&fifo);
        assert_eq!(fifo.stats().expert_cache_hits, 0, "static engine has no cache");
        fifo.shutdown();

        let model = ModelPreset::DeepSeekV3.tiny_config();
        let dynamic = Arc::new(
            HybridEngine::random(
                &model,
                EngineConfig {
                    n_cpu_workers: 2,
                    mode: SchedMode::AsyncGraph,
                    n_deferred: 2,
                    backend: kt_kernels::dispatch::Backend::TiledOnly,
                    placement: kt_core::PlacementPolicy::Dynamic,
                    expert_cache_bytes: 48 << 20,
                    seed: 30,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let server = Server::start(dynamic, cfg(3)).unwrap();
        let got = serve_all(&server);
        assert_eq!(base, got, "dynamic placement must not change any bits");
        let stats = server.stats();
        assert!(
            stats.expert_cache_hits + stats.expert_cache_misses > 0,
            "cache consulted: {stats:?}"
        );
        let text = server.stats_text();
        assert!(text.contains("kt_expert_cache_hits_total"), "{text}");
        assert!(text.contains("kt_expert_cache_resident_bytes"), "{text}");
        assert!(
            text.contains("kt_expert_hits_total{layer=\""),
            "per-expert exposition missing:\n{text}"
        );
        server.shutdown();
    }

    #[test]
    fn chunked_prefill_serves_identical_tokens_to_monolithic() {
        let prompt: Vec<u32> = (0..23).map(|i| (i * 11 + 2) % 250).collect();
        // Monolithic: the whole prompt fits one chunk.
        let mono_server = Server::start(
            engine(8),
            ServerConfig {
                max_batch: 2,
                prefill_chunk: 512,
                step_token_budget: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let mono = mono_server.submit(Request::greedy(&prompt, 8)).wait();
        assert!(mono.is_completed());
        assert_eq!(mono_server.stats().prefill_chunks, 1);
        mono_server.shutdown();

        // Chunked: 23 tokens in chunks of 5 → 5 chunks over 5 steps.
        let server = Server::start(
            engine(8),
            ServerConfig {
                max_batch: 2,
                prefill_chunk: 5,
                step_token_budget: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let chunked = server.submit(Request::greedy(&prompt, 8)).wait();
        assert!(chunked.is_completed());
        assert_eq!(chunked.tokens, mono.tokens, "chunking must not change output");
        let stats = server.stats();
        assert_eq!(stats.prefill_chunks, 5);
        assert_eq!(stats.prefill_tokens, prompt.len() as u64);
        server.shutdown();
    }

    #[test]
    fn cancel_between_prefill_chunks_releases_the_lease() {
        // Slow launches + 1-token chunks stretch a 400-token prompt's
        // prefill across hundreds of steps, leaving a wide window to
        // cancel mid-prefill.
        let cfg_model = ModelPreset::DeepSeekV3.tiny_config();
        let engine = Arc::new(
            HybridEngine::random(
                &cfg_model,
                EngineConfig {
                    n_cpu_workers: 2,
                    mode: SchedMode::AsyncGraph,
                    vgpu: kt_core::VgpuConfig {
                        launch_latency: Duration::from_micros(200),
                        ..Default::default()
                    },
                    seed: 9,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let server = Server::start(
            engine,
            ServerConfig {
                max_batch: 1,
                prefill_chunk: 1,
                step_token_budget: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(server.active(), 0, "lease baseline");
        let prompt: Vec<u32> = (0..400).map(|i| (i % 250) as u32).collect();
        let handle = server.submit(Request::greedy(&prompt, 16));
        // Wait until prefill has demonstrably started but not finished.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let done = server.stats().prefill_tokens;
            if done > 0 {
                assert!((done as usize) < prompt.len(), "prefill outran the test");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "prefill never started");
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.cancel();
        let result = handle.wait_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(result.outcome, RequestOutcome::Cancelled);
        assert!(
            result.tokens.is_empty(),
            "cancelled mid-prefill, before the first sample"
        );
        // The KV lease went back to the pool at the step boundary.
        assert_eq!(server.active(), 0, "lease count back to baseline");
        assert_eq!(server.stats().cancelled, 1);
        server.shutdown();
    }

    #[test]
    fn stats_text_exposes_counters_gauges_and_histograms() {
        let server = Server::start(engine(10), cfg(2)).unwrap();
        let result = server.submit(Request::greedy(&[1, 2, 3], 4)).wait();
        assert!(result.is_completed());
        let text = server.stats_text();
        for metric in [
            "# TYPE kt_requests_completed_total counter",
            "kt_requests_completed_total 1",
            "kt_tokens_generated_total 4",
            "# TYPE kt_queue_depth gauge",
            "# TYPE kt_request_queue_wait_ns histogram",
            "kt_request_queue_wait_ns_count 1",
            "kt_request_ttft_ns_count 1",
            // 4 tokens → 3 inter-token gaps.
            "kt_request_inter_token_ns_count 3",
            "_bucket{le=\"+Inf\"} 1",
        ] {
            assert!(text.contains(metric), "missing {metric:?} in:\n{text}");
        }
        // Satellite of PR 4: the vGPU launch counters ride along in
        // ServeStats like the arena counters do.
        let stats = server.stats();
        assert!(
            stats.gpu_graph_replays > 0 || stats.gpu_kernel_launches > 0,
            "launch counters folded in: {stats:?}"
        );
        assert!(text.contains("kt_gpu_host_funcs_total"));
        server.shutdown();
    }

    #[test]
    fn stats_text_reports_expert_weight_bytes_with_dtype_label() {
        use kt_tensor::PrecisionPolicy;
        let cfg_model = ModelPreset::DeepSeekV3.tiny_config();
        let engine = Arc::new(
            HybridEngine::random(
                &cfg_model,
                EngineConfig {
                    n_cpu_workers: 2,
                    backend: kt_kernels::dispatch::Backend::TiledOnly,
                    precision: PrecisionPolicy::quantized_serving(8),
                    seed: 21,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let server = Server::start(engine, cfg(2)).unwrap();
        let result = server.submit(Request::greedy(&[1, 2, 3], 4)).wait();
        assert!(result.is_completed());
        let stats = server.stats();
        assert_eq!(stats.expert_weight_dtype, "int4");
        assert!(stats.expert_weight_bytes > 0);
        let text = server.stats_text();
        let line = format!(
            "kt_expert_weight_bytes{{dtype=\"int4\"}} {}",
            stats.expert_weight_bytes
        );
        assert!(text.contains(&line), "missing {line:?} in:\n{text}");
        server.shutdown();
    }

    #[test]
    fn queue_wait_recorded_for_requests_cancelled_while_queued() {
        let server = Server::start(engine(11), cfg(1)).unwrap();
        // Keep the single batch slot busy so the next request queues.
        let busy = server.submit(Request::greedy(&[1, 2, 3], 64));
        let queued = server.submit(Request::greedy(&[6, 7], 64));
        std::thread::sleep(Duration::from_millis(2));
        queued.cancel();
        let q = queued.wait_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(q.outcome, RequestOutcome::Cancelled);
        assert!(q.metrics.queue_wait_ns > 0, "queued time was measured");
        busy.cancel();
        let _ = busy.wait_timeout(Duration::from_secs(30)).unwrap();
        // Both resolutions (cancelled-queued and cancelled-active)
        // contributed queue-wait samples — no survivorship bias.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (queue_wait, _, _) = server.latency_histograms();
            if queue_wait.count() == 2 {
                assert!(queue_wait.max().unwrap() > 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "histograms never saw both requests: {}",
                queue_wait.count()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_all_complete_and_are_deterministic() {
        let server = Server::start(engine(6), cfg(4)).unwrap();
        let prompts: Vec<Vec<u32>> = (0..6).map(|i| vec![i + 1, 2 * i + 3]).collect();
        let handles: Vec<_> = prompts
            .iter()
            .map(|p| server.submit(Request::greedy(p, 5)))
            .collect();
        let first: Vec<Vec<u32>> = handles.iter().map(|h| h.wait().tokens).collect();
        // Same prompts again — batching composition may differ, tokens
        // must not.
        let again: Vec<Vec<u32>> = prompts
            .iter()
            .map(|p| server.submit(Request::greedy(p, 5)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.wait().tokens)
            .collect();
        assert_eq!(first, again);
        let stats = server.stats();
        assert_eq!(stats.completed, 12);
        assert!(stats.mean_occupancy() >= 1.0);
        server.shutdown();
    }

    #[test]
    fn slo_config_rejects_unmeetable_targets() {
        let mut zero = SloPolicy::default();
        zero.targets[SloClass::Standard.index()] = SloTarget { ttft_ns: 0, itl_ns: 0 };
        let err = Server::start(
            engine(20),
            ServerConfig {
                slo: Some(zero),
                ..Default::default()
            },
        )
        .expect_err("zero target must be rejected");
        assert!(err.to_string().contains("SloPolicy"), "{err}");

        // A TTFT target below the ITL target is below one step's worth
        // of budget: the first token cannot arrive faster than a step.
        let mut inverted = SloPolicy::default();
        inverted.targets[SloClass::Batch.index()] = SloTarget::from_millis(1, 2);
        let err = Server::start(
            engine(20),
            ServerConfig {
                slo: Some(inverted),
                ..Default::default()
            },
        )
        .expect_err("ttft below one step's budget must be rejected");
        assert!(err.to_string().contains("below one step"), "{err}");
    }

    #[test]
    fn slo_policy_defaults_preserve_fifo_outputs() {
        // The same workload with and without a (loose) SLO policy
        // produces bitwise-identical tokens: scheduling stays pure
        // orchestration.
        let prompts: Vec<Vec<u32>> = (0..5).map(|i| vec![i + 1, 2 * i + 3, 7]).collect();
        let fifo = Server::start(engine(22), cfg(4)).unwrap();
        let base: Vec<Vec<u32>> = prompts
            .iter()
            .map(|p| fifo.submit(Request::greedy(p, 5)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.wait().tokens)
            .collect();
        fifo.shutdown();

        let slo = Server::start(
            engine(22),
            ServerConfig {
                slo: Some(SloPolicy::default()),
                ..cfg(4)
            },
        )
        .unwrap();
        let classed: Vec<Vec<u32>> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let class = SloClass::ALL[i % 3];
                slo.submit(Request::greedy(p, 5).with_class(class))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.wait().tokens)
            .collect();
        assert_eq!(base, classed, "SLO scheduling must not change any bits");
        let cs = slo.class_stats();
        assert_eq!(cs[SloClass::Interactive.index()].submitted, 2);
        assert_eq!(cs[SloClass::Standard.index()].submitted, 2);
        assert_eq!(cs[SloClass::Batch.index()].submitted, 1);
        assert_eq!(
            cs.iter().map(|c| c.completed).sum::<u64>(),
            5,
            "per-class completions add up: {cs:?}"
        );
        slo.shutdown();
    }

    #[test]
    fn negative_slack_sheds_batch_but_never_interactive() {
        // Slow launches + 1-token chunks keep the single batch slot
        // busy for a long, controllable window.
        let cfg_model = ModelPreset::DeepSeekV3.tiny_config();
        let slow_engine = Arc::new(
            HybridEngine::random(
                &cfg_model,
                EngineConfig {
                    n_cpu_workers: 2,
                    mode: SchedMode::AsyncGraph,
                    vgpu: kt_core::VgpuConfig {
                        launch_latency: Duration::from_micros(200),
                        ..Default::default()
                    },
                    backend: kt_kernels::dispatch::Backend::TiledOnly,
                    seed: 21,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        // Batch class gets an impossible 2 ms TTFT target; the other
        // classes are effectively unbounded.
        let policy = SloPolicy {
            targets: [
                SloTarget::from_millis(60_000, 60_000),
                SloTarget::from_millis(60_000, 60_000),
                SloTarget::from_millis(2, 2),
            ],
            shed: true,
        };
        let server = Server::start(
            slow_engine,
            ServerConfig {
                max_batch: 1,
                prefill_chunk: 1,
                step_token_budget: 1,
                prefix_cache_bytes: 0,
                slo: Some(policy),
                ..Default::default()
            },
        )
        .unwrap();
        // Populate the latency histograms: the admission controller
        // never sheds without evidence.
        let warm = server.submit(Request::greedy(&[1, 2], 2)).wait();
        assert!(warm.is_completed());
        // Occupy the only slot with a long prefill, then queue a
        // doomed batch request and a protected interactive one.
        let prompt: Vec<u32> = (0..400).map(|i| (i % 250) as u32).collect();
        let busy = server.submit(Request::greedy(&prompt, 8));
        let doomed = server.submit(Request::greedy(&[3, 4], 4).with_class(SloClass::Batch));
        let vip = server.submit(Request::greedy(&[5, 6], 4).with_class(SloClass::Interactive));
        let d = doomed.wait_timeout(Duration::from_secs(30)).expect("shed resolves");
        assert_eq!(d.outcome, RequestOutcome::Shed);
        assert!(d.tokens.is_empty(), "shed before admission, no tokens");
        assert!(d.metrics.queue_wait_ns > 0, "queue wait still measured");
        // The interactive request outlived the shed pass that killed
        // the batch request.
        if let Some(v) = vip.try_result() {
            assert_ne!(v.outcome, RequestOutcome::Shed, "interactive is never shed");
        }
        let text = server.stats_text();
        assert!(text.contains("kt_slo_shed_total 1"), "missing shed counter:\n{text}");
        assert!(
            text.contains("kt_slo_class_shed_total{class=\"batch\"} 1"),
            "missing per-class shed counter:\n{text}"
        );
        busy.cancel();
        vip.cancel();
        let v = vip.wait_timeout(Duration::from_secs(30)).expect("resolves");
        assert_ne!(v.outcome, RequestOutcome::Shed, "interactive is never shed");
        let stats = server.stats();
        assert_eq!(stats.shed, 1);
        let cs = server.class_stats();
        assert_eq!(cs[SloClass::Batch.index()].shed, 1);
        assert_eq!(cs[SloClass::Interactive.index()].shed, 0);
        assert_eq!(
            cs.iter().map(|c| c.resolved()).sum::<u64>(),
            stats.resolved(),
            "class ledger matches the aggregate ledger"
        );
        server.shutdown();
    }
}
