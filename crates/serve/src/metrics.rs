//! Prometheus text-exposition helpers.
//!
//! `Server::stats_text` used to hand-format every line; the formatting
//! and label-escaping rules now live here so each family is emitted
//! exactly once with one `# HELP`/`# TYPE` pair, label values are
//! escaped per the exposition format (`\\`, `\"`, `\n`), and the
//! histogram renderers agree on the cumulative-bucket form. The
//! conformance test (`tests/prom_conformance.rs`) parses the whole
//! exposition back and checks these invariants hold for every family.
//!
//! The component-latency renderer additionally attaches
//! OpenMetrics-style exemplars — `# {request_id="42"} 1.25e-3` after a
//! bucket line — pointing at the worst request each bucket has seen,
//! so a dashboard's slowest bucket links straight to a flight-recorder
//! lookup.

use kt_trace::hist::N_BUCKETS;
use kt_trace::LogHistogram;

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote, and newline get backslash-escaped.
pub(crate) fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Writes the one `# HELP`/`# TYPE` pair a family gets.
pub(crate) fn push_family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Formats a `{label="value",...}` block (empty string for no labels),
/// escaping every value.
pub(crate) fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Writes one sample line.
pub(crate) fn push_sample(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    value: impl std::fmt::Display,
) {
    out.push_str(&format!("{name}{} {value}\n", label_block(labels)));
}

/// One-sample counter family.
pub(crate) fn push_counter(out: &mut String, name: &str, help: &str, v: u64) {
    push_family(out, name, "counter", help);
    push_sample(out, name, &[], v);
}

/// One-sample gauge family.
pub(crate) fn push_gauge(out: &mut String, name: &str, help: &str, v: f64) {
    push_family(out, name, "gauge", help);
    push_sample(out, name, &[], v);
}

/// Renders one histogram in Prometheus text format: cumulative
/// `_bucket{le="..."}` lines (one per log₂ bucket up to the highest
/// occupied one, then `+Inf`), `_sum`, and `_count`. Values stay in
/// the histogram's native unit (nanoseconds for the latency hists).
pub(crate) fn push_histogram(out: &mut String, name: &str, help: &str, h: &LogHistogram) {
    push_family(out, name, "histogram", help);
    push_histogram_samples(out, name, &[], h);
}

/// The sample lines of one (possibly labeled) histogram, without the
/// family header — callers emitting one family across several label
/// sets write the header once and call this per label set.
pub(crate) fn push_histogram_samples(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    h: &LogHistogram,
) {
    let top_occupied = (0..N_BUCKETS).rev().find(|&i| h.bucket_count(i) > 0);
    let mut cum = 0u64;
    if let Some(top) = top_occupied {
        // Bucket 64's upper bound is u64::MAX; it folds into +Inf.
        for i in 0..=top.min(63) {
            cum += h.bucket_count(i);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le = LogHistogram::bucket_upper_bound(i).to_string();
            with_le.push(("le", &le));
            push_sample(out, &format!("{name}_bucket"), &with_le, cum);
        }
    }
    let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
    with_inf.push(("le", "+Inf"));
    push_sample(out, &format!("{name}_bucket"), &with_inf, h.count());
    push_sample(out, &format!("{name}_sum"), labels, h.sum());
    push_sample(out, &format!("{name}_count"), labels, h.count());
}

/// Like [`push_histogram_samples`] but scaled nanoseconds → seconds
/// (Prometheus base units), with an OpenMetrics-style exemplar
/// appended to every bucket line whose bucket has one: the worst
/// request id that landed there.
pub(crate) fn push_histogram_samples_seconds(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    h: &LogHistogram,
) {
    let secs = |ns: u64| ns as f64 / 1e9;
    let top_occupied = (0..N_BUCKETS).rev().find(|&i| h.bucket_count(i) > 0);
    let mut cum = 0u64;
    if let Some(top) = top_occupied {
        for i in 0..=top.min(63) {
            cum += h.bucket_count(i);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le = format!("{}", secs(LogHistogram::bucket_upper_bound(i)));
            with_le.push(("le", &le));
            let exemplar = h
                .exemplar(i)
                .map(|e| format!(" # {{request_id=\"{}\"}} {}", e.id, secs(e.value)))
                .unwrap_or_default();
            out.push_str(&format!(
                "{name}_bucket{} {cum}{exemplar}\n",
                label_block(&with_le)
            ));
        }
    }
    let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
    with_inf.push(("le", "+Inf"));
    push_sample(out, &format!("{name}_bucket"), &with_inf, h.count());
    push_sample(out, &format!("{name}_sum"), labels, secs(h.sum()));
    push_sample(out, &format!("{name}_count"), labels, h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn label_block_forms() {
        assert_eq!(label_block(&[]), "");
        assert_eq!(label_block(&[("class", "interactive")]), "{class=\"interactive\"}");
        assert_eq!(
            label_block(&[("a", "x\"y"), ("b", "2")]),
            "{a=\"x\\\"y\",b=\"2\"}"
        );
    }

    #[test]
    fn counter_and_gauge_form_one_family() {
        let mut out = String::new();
        push_counter(&mut out, "kt_things_total", "Things.", 3);
        push_gauge(&mut out, "kt_level", "Level.", 1.5);
        assert_eq!(
            out,
            "# HELP kt_things_total Things.\n# TYPE kt_things_total counter\nkt_things_total 3\n\
             # HELP kt_level Level.\n# TYPE kt_level gauge\nkt_level 1.5\n"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let mut h = LogHistogram::new();
        h.record_all([1, 2, 3, 100]);
        let mut out = String::new();
        push_histogram(&mut out, "kt_x_ns", "X.", &h);
        assert!(out.contains("kt_x_ns_bucket{le=\"1\"} 1\n"));
        assert!(out.contains("kt_x_ns_bucket{le=\"3\"} 3\n"));
        assert!(out.contains("kt_x_ns_bucket{le=\"127\"} 4\n"));
        assert!(out.contains("kt_x_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(out.contains("kt_x_ns_sum 106\n"));
        assert!(out.contains("kt_x_ns_count 4\n"));
    }

    #[test]
    fn seconds_histogram_attaches_exemplars() {
        let mut h = LogHistogram::new();
        h.record_with_exemplar(1_500_000, 7); // 1.5ms, request 7
        h.record_with_exemplar(1_900_000, 9); // same bucket, worse
        let mut out = String::new();
        push_histogram_samples_seconds(&mut out, "kt_lat_seconds", &[("component", "merge")], &h);
        // The bucket line carries the worst exemplar in that bucket.
        assert!(
            out.contains("# {request_id=\"9\"} 0.0019"),
            "missing exemplar in:\n{out}"
        );
        assert!(out.contains("kt_lat_seconds_bucket{component=\"merge\",le=\"+Inf\"} 2\n"));
        assert!(out.contains("kt_lat_seconds_count{component=\"merge\"} 2\n"));
        // Sum is in seconds.
        assert!(out.contains("kt_lat_seconds_sum{component=\"merge\"} 0.0034"));
    }
}
