//! Request descriptions, handles and results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kt_core::RequestMetrics;
use kt_model::sampler::Sampler;
use parking_lot::{Condvar, Mutex};

use crate::slo::SloClass;

/// One generation request submitted to the server.
#[derive(Debug, Clone)]
pub struct Request {
    /// Prompt tokens (prefilled on admission).
    pub prompt: Vec<u32>,
    /// Maximum tokens to generate.
    pub max_new: usize,
    /// Sampling strategy. [`Sampler::Greedy`] makes the request
    /// deterministic regardless of `seed`.
    pub sampler: Sampler,
    /// Seed of the request's private sampling RNG.
    pub seed: u64,
    /// Generation stops after emitting this token, if set.
    pub stop_token: Option<u32>,
    /// Service class: admission priority and latency targets when the
    /// server runs an [`crate::SloPolicy`]; ignored (pure FIFO)
    /// otherwise.
    pub class: SloClass,
}

impl Request {
    /// A greedy [`SloClass::Standard`] request with no stop token.
    pub fn greedy(prompt: &[u32], max_new: usize) -> Self {
        Request {
            prompt: prompt.to_vec(),
            max_new,
            sampler: Sampler::Greedy,
            seed: 0,
            stop_token: None,
            class: SloClass::Standard,
        }
    }

    /// The same request in a different service class.
    pub fn with_class(mut self, class: SloClass) -> Self {
        self.class = class;
        self
    }
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Ran to `max_new` tokens or the stop token.
    Completed,
    /// Cancelled by its client; `tokens` holds what was generated.
    Cancelled,
    /// Shed by the admission controller: the predicted slack against
    /// the class's TTFT target was negative, so serving it would have
    /// produced output that already missed its deadline. Only queued
    /// (never admitted) requests of non-interactive classes are shed.
    Shed,
    /// An engine error aborted the request.
    Failed {
        /// The engine error message.
        error: String,
    },
}

/// Final state of a resolved request.
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// The server-assigned request id (also the key into the flight
    /// recorder: `Server::breakdown(id)` / trace exports). Every
    /// submitted request gets one, starting at 1; 0 means "untagged"
    /// throughout the trace layer and is never assigned.
    pub request_id: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// Tokens generated before resolution (complete output for
    /// [`RequestOutcome::Completed`], partial otherwise).
    pub tokens: Vec<u32>,
    /// Latency metrics (queue wait, TTFT, inter-token gaps).
    pub metrics: RequestMetrics,
}

impl RequestResult {
    /// Whether the request completed normally.
    pub fn is_completed(&self) -> bool {
        self.outcome == RequestOutcome::Completed
    }
}

/// Shared slot the scheduler resolves and clients wait on.
pub(crate) struct RequestSlot {
    /// Server-assigned id, fixed at submission.
    pub(crate) id: u64,
    result: Mutex<Option<RequestResult>>,
    resolved: Condvar,
    cancelled: AtomicBool,
}

impl RequestSlot {
    pub(crate) fn new(id: u64) -> Arc<Self> {
        Arc::new(RequestSlot {
            id,
            result: Mutex::new(None),
            resolved: Condvar::new(),
            cancelled: AtomicBool::new(false),
        })
    }

    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Publishes the result exactly once (later calls are ignored) and
    /// wakes every waiter.
    pub(crate) fn resolve(&self, result: RequestResult) {
        let mut slot = self.result.lock();
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.resolved.notify_all();
    }
}

/// Client-side handle to a submitted request.
///
/// Cloneable: any clone can wait or cancel; all observe the same
/// result.
#[derive(Clone)]
pub struct RequestHandle {
    pub(crate) slot: Arc<RequestSlot>,
}

impl RequestHandle {
    /// The server-assigned request id — the key for
    /// `Server::breakdown` and flight-recorder exports.
    pub fn id(&self) -> u64 {
        self.slot.id
    }

    /// Requests cancellation. The scheduler retires the sequence at
    /// the next step boundary and resolves it as
    /// [`RequestOutcome::Cancelled`] (or lets an already-finished
    /// result stand).
    pub fn cancel(&self) {
        self.slot.cancelled.store(true, Ordering::Release);
    }

    /// Result if already resolved, without blocking.
    pub fn try_result(&self) -> Option<RequestResult> {
        self.slot.result.lock().clone()
    }

    /// Blocks until the request resolves.
    pub fn wait(&self) -> RequestResult {
        let mut slot = self.slot.result.lock();
        while slot.is_none() {
            self.slot.resolved.wait(&mut slot);
        }
        slot.clone().expect("checked above")
    }

    /// Blocks until the request resolves or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<RequestResult> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.slot.result.lock();
        while slot.is_none() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.slot.resolved.wait_for(&mut slot, deadline - now);
        }
        slot.clone()
    }
}

impl std::fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("resolved", &self.slot.result.lock().is_some())
            .field("cancel_requested", &self.slot.cancel_requested())
            .finish()
    }
}
