//! SLO classes, per-class latency targets, and the slack-based
//! admission predictor.
//!
//! Every [`crate::Request`] carries an [`SloClass`]; when the server
//! is started with an [`SloPolicy`], admission and step composition
//! become priority-aware and the admission controller predicts each
//! queued request's *slack* — the margin between its TTFT target and
//! the TTFT the scheduler expects to deliver given the current queue
//! and batch state. A request whose predicted slack is negative is a
//! dead loss: serving it spends step budget on output that already
//! missed its deadline. Under the shedding policy such requests are
//! resolved with [`crate::RequestOutcome::Shed`] instead — except
//! requests of the highest class, which are always served best-effort
//! (a missed target there is counted as a violation, not discarded
//! work).
//!
//! Everything here is pure data + pure functions so the scheduler
//! invariants (shed only on negative slack, priority order, FIFO
//! within a class) are property-testable without an engine.

/// Service class of a request. Lower `priority()` is more urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SloClass {
    /// Latency-critical traffic (chat turns, autocomplete). Never
    /// shed: a missed deadline is served anyway and counted as a
    /// violation.
    Interactive,
    /// Default traffic with relaxed targets.
    Standard,
    /// Throughput traffic (evals, batch summarization). First to be
    /// shed at saturation.
    Batch,
}

impl SloClass {
    /// Every class, most urgent first.
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Standard, SloClass::Batch];

    /// Scheduling priority: 0 is most urgent.
    pub fn priority(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// Index into per-class tables (same order as [`SloClass::ALL`]).
    pub fn index(self) -> usize {
        self.priority()
    }

    /// Stable display name (also the Prometheus `class` label).
    pub fn as_str(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }
}

/// Latency targets of one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTarget {
    /// Time-to-first-token target in nanoseconds.
    pub ttft_ns: u64,
    /// Inter-token latency target in nanoseconds.
    pub itl_ns: u64,
}

impl SloTarget {
    /// Convenience constructor from milliseconds.
    pub fn from_millis(ttft_ms: u64, itl_ms: u64) -> SloTarget {
        SloTarget {
            ttft_ns: ttft_ms * 1_000_000,
            itl_ns: itl_ms * 1_000_000,
        }
    }
}

/// Per-class SLO targets plus the shedding switch. Passing `Some` of
/// this in [`crate::ServerConfig::slo`] turns on priority admission,
/// priority-aware step composition, and (when `shed` is set) load
/// shedding of negative-slack lower-class work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloPolicy {
    /// Targets indexed by [`SloClass::index`].
    pub targets: [SloTarget; 3],
    /// Whether the admission controller may shed queued lower-class
    /// requests whose predicted slack is negative. With this off the
    /// server still prioritizes, but every admitted request is
    /// eventually served.
    pub shed: bool,
}

impl SloPolicy {
    /// The targets of `class`.
    pub fn target(&self, class: SloClass) -> SloTarget {
        self.targets[class.index()]
    }
}

impl Default for SloPolicy {
    /// Loose defaults sized for the simulated tiny engine: interactive
    /// 250 ms TTFT / 100 ms ITL, standard 1 s / 250 ms, batch
    /// 10 s / 1 s, shedding on.
    fn default() -> Self {
        SloPolicy {
            targets: [
                SloTarget::from_millis(250, 100),
                SloTarget::from_millis(1_000, 250),
                SloTarget::from_millis(10_000, 1_000),
            ],
            shed: true,
        }
    }
}

/// Inputs of one slack prediction, snapshotted from the scheduler
/// state when the queued request is examined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlackInputs {
    /// Per-wave service estimate in nanoseconds: how long one batch
    /// slot takes to open up and deliver a first token. Read from the
    /// server's TTFT [`kt_trace::LogHistogram`] (p50), falling back to
    /// the ITL histogram, then to 0 — an empty history predicts
    /// optimistically, so nothing is shed before there is evidence.
    pub service_estimate_ns: u64,
    /// Sequences currently holding batch slots.
    pub active: usize,
    /// Batch slots the server can fill ([`crate::ServerConfig::max_batch`]).
    pub max_batch: usize,
    /// Queued requests that will be admitted before this one (higher
    /// priority, or same class and earlier arrival).
    pub queued_ahead: usize,
    /// Time this request has already spent queued, in nanoseconds.
    pub waited_ns: u64,
}

/// Predicted TTFT of a queued request: time already waited plus one
/// service wave per batch-width cohort that must drain ahead of it.
pub fn predicted_ttft_ns(inputs: &SlackInputs) -> u64 {
    let max_batch = inputs.max_batch.max(1);
    let free_slots = max_batch.saturating_sub(inputs.active);
    // Waves of the batch that must complete before this request gets a
    // slot: 0 if a slot is free right now and nothing is ahead.
    let waves_ahead = if inputs.queued_ahead < free_slots {
        0
    } else {
        1 + (inputs.queued_ahead - free_slots) / max_batch
    };
    // One more wave to actually produce the first token.
    let waves = waves_ahead as u64 + 1;
    inputs
        .waited_ns
        .saturating_add(waves.saturating_mul(inputs.service_estimate_ns))
}

/// Slack of a queued request against its TTFT target: positive means
/// the predictor expects the deadline to hold.
pub fn slack_ns(target: SloTarget, predicted_ttft: u64) -> i64 {
    let t = target.ttft_ns.min(i64::MAX as u64) as i64;
    let p = predicted_ttft.min(i64::MAX as u64) as i64;
    t - p
}

/// Whether a queued request should be shed. True **only** when all
/// hold: shedding is enabled, the predicted slack is negative, and the
/// class is not the highest-priority one (interactive work is served
/// best-effort, never discarded).
pub fn shed_decision(policy: &SloPolicy, class: SloClass, slack: i64) -> bool {
    policy.shed && slack < 0 && class != SloClass::Interactive
}

/// Per-class outcome and SLO counters, exposed by
/// [`crate::Server::class_stats`] and the `kt_slo_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Requests submitted with this class.
    pub submitted: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled by their client.
    pub cancelled: u64,
    /// Requests that failed with an engine error.
    pub failed: u64,
    /// Requests shed by the admission controller.
    pub shed: u64,
    /// Completed requests that met both their TTFT and ITL targets.
    pub slo_met: u64,
    /// Resolved requests that missed their TTFT target.
    pub ttft_violations: u64,
    /// Resolved requests with at least one inter-token gap over the
    /// ITL target.
    pub itl_violations: u64,
}

impl ClassCounters {
    /// Requests resolved one way or another.
    pub fn resolved(&self) -> u64 {
        self.completed + self.cancelled + self.failed + self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_and_names() {
        assert!(SloClass::Interactive.priority() < SloClass::Standard.priority());
        assert!(SloClass::Standard.priority() < SloClass::Batch.priority());
        for (i, c) in SloClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(SloClass::Interactive.as_str(), "interactive");
        assert_eq!(SloClass::Batch.as_str(), "batch");
    }

    #[test]
    fn prediction_counts_batch_waves() {
        let base = SlackInputs {
            service_estimate_ns: 100,
            active: 4,
            max_batch: 4,
            queued_ahead: 0,
            waited_ns: 7,
        };
        // Saturated batch, nothing queued ahead: one wave to drain a
        // slot... the request itself still needs one service wave.
        assert_eq!(predicted_ttft_ns(&base), 7 + 2 * 100);
        // A free slot and empty queue: just the request's own wave.
        let free = SlackInputs { active: 3, ..base };
        assert_eq!(predicted_ttft_ns(&free), 7 + 100);
        // Eight queued ahead of a saturated batch of 4: two more waves.
        let deep = SlackInputs { queued_ahead: 8, ..base };
        assert_eq!(predicted_ttft_ns(&deep), 7 + 4 * 100);
        // No history yet: optimistic zero-cost prediction.
        let blind = SlackInputs { service_estimate_ns: 0, queued_ahead: 100, ..base };
        assert_eq!(predicted_ttft_ns(&blind), 7);
    }

    #[test]
    fn slack_and_shed_policy() {
        let policy = SloPolicy::default();
        let target = policy.target(SloClass::Batch);
        assert!(slack_ns(target, target.ttft_ns - 1) > 0);
        assert!(slack_ns(target, target.ttft_ns + 1) < 0);
        // Negative slack sheds batch and standard, never interactive.
        assert!(shed_decision(&policy, SloClass::Batch, -1));
        assert!(shed_decision(&policy, SloClass::Standard, -1));
        assert!(!shed_decision(&policy, SloClass::Interactive, i64::MIN));
        // Non-negative slack never sheds.
        assert!(!shed_decision(&policy, SloClass::Batch, 0));
        assert!(!shed_decision(&policy, SloClass::Batch, 1));
        // Shedding disabled never sheds.
        let no_shed = SloPolicy { shed: false, ..SloPolicy::default() };
        assert!(!shed_decision(&no_shed, SloClass::Batch, i64::MIN));
    }

    #[test]
    fn saturating_slack_on_huge_values() {
        let t = SloTarget { ttft_ns: u64::MAX, itl_ns: 1 };
        assert!(slack_ns(t, 0) > 0);
        assert!(slack_ns(t, u64::MAX) == 0);
    }
}
