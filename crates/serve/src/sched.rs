//! Pure step-composition and admission-ordering logic.
//!
//! The scheduler's decisions — which queued request to admit next,
//! and how to spend the step token budget across decode rows and
//! pending prefills — are pure functions of lightweight views of the
//! batch state. Keeping them engine-free makes the scheduling
//! invariants (decode rows never starve, priority order, FIFO within
//! a class, budget conservation) property-testable in microseconds.

/// What the composer knows about one active sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqView {
    /// Prompt tokens not yet fed. `0` means the sequence is a decode
    /// row.
    pub prompt_remaining: usize,
    /// Scheduling priority ([`crate::SloClass::priority`]); FIFO
    /// servers pass `0` for everyone. Ties preserve slice order, which
    /// is admission order.
    pub priority: usize,
    /// Whether a decode row is predicted close to an ITL violation
    /// (its inter-token gap is already past a fraction of its target).
    /// Ignored for prefilling sequences.
    pub at_risk: bool,
}

/// One sequence's share of the composed step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanWork {
    /// Decode one token.
    Decode,
    /// Prefill the next `len` prompt tokens; `last` marks the chunk
    /// that completes the prompt.
    Chunk {
        /// Tokens in this chunk.
        len: usize,
        /// Whether this chunk finishes the prompt.
        last: bool,
    },
}

/// Composition knobs (mirrors the relevant [`crate::ServerConfig`]
/// fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComposeCfg {
    /// Maximum prompt tokens one sequence prefills per step.
    pub prefill_chunk: usize,
    /// Per-step token budget.
    pub step_token_budget: usize,
    /// Whether prefill allocation honors `SeqView::priority` and
    /// `at_risk` (SLO mode). Off reproduces plain FIFO composition.
    pub priority_aware: bool,
}

/// Composes one step under the token budget.
///
/// Invariants (property-tested in `tests/slo_proptests.rs`):
///
/// * Every decode row is scheduled — decode never starves behind
///   prefill of any priority.
/// * Prefill tokens stay within `step_token_budget - n_decode`, except
///   for the single anti-starvation chunk granted when decode rows
///   alone exhaust the budget.
/// * In priority-aware mode a lower-priority sequence receives a
///   chunk only if every higher-priority pending sequence already
///   received one, and within a priority level grants follow slice
///   (admission) order.
/// * When any decode row is at risk, prefill is throttled to at most
///   one chunk this step, steering the budget toward keeping the step
///   (and therefore the at-risk rows' ITL) short.
pub fn compose_plan(cfg: &ComposeCfg, seqs: &[SeqView]) -> Vec<Option<PlanWork>> {
    let mut plan: Vec<Option<PlanWork>> = vec![None; seqs.len()];
    let mut n_decode = 0usize;
    for (seq, slot) in seqs.iter().zip(plan.iter_mut()) {
        if seq.prompt_remaining == 0 {
            *slot = Some(PlanWork::Decode);
            n_decode += 1;
        }
    }
    let mut budget = cfg.step_token_budget.saturating_sub(n_decode);
    if cfg.priority_aware && seqs.iter().any(|s| s.prompt_remaining == 0 && s.at_risk) {
        // An at-risk decode row's ITL is bounded by the step's wall
        // time, which grows with the prefill riding along. Reallocate:
        // cap this step's prefill to a single chunk so the step stays
        // near decode-only size.
        budget = budget.min(cfg.prefill_chunk);
    }

    // Pending prompts in grant order: admission order for FIFO, stable
    // (priority, admission) order when priority-aware.
    let mut pending: Vec<usize> = (0..seqs.len())
        .filter(|&i| seqs[i].prompt_remaining > 0)
        .collect();
    if cfg.priority_aware {
        pending.sort_by_key(|&i| seqs[i].priority);
    }

    let mut granted = false;
    for &i in &pending {
        let remaining = seqs[i].prompt_remaining;
        let take = cfg.prefill_chunk.min(remaining).min(budget);
        if take == 0 {
            continue;
        }
        budget -= take;
        granted = true;
        plan[i] = Some(PlanWork::Chunk {
            len: take,
            last: take == remaining,
        });
    }
    // Anti-starvation: when decode rows alone exhaust the budget, the
    // most urgent pending prompt still advances one chunk — TTFT stays
    // bounded (the budget is a target, not a liveness hazard).
    if !granted {
        if let Some(&i) = pending.first() {
            let remaining = seqs[i].prompt_remaining;
            let take = cfg.prefill_chunk.min(remaining);
            plan[i] = Some(PlanWork::Chunk {
                len: take,
                last: take == remaining,
            });
        }
    }
    plan
}

/// Picks the queue index to admit next: the earliest-arrived request
/// of the most urgent class present when `priority_aware`, plain
/// front-of-queue otherwise. Entries are `(priority, arrival_seq)`;
/// `arrival_seq` is a process-wide submission counter, so FIFO order
/// within a class is exactly arrival order.
pub fn pick_next(queued: &[(usize, u64)], priority_aware: bool) -> Option<usize> {
    if queued.is_empty() {
        return None;
    }
    if !priority_aware {
        return Some(0);
    }
    queued
        .iter()
        .enumerate()
        .min_by_key(|(_, &(priority, seq_no))| (priority, seq_no))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(at_risk: bool) -> SeqView {
        SeqView { prompt_remaining: 0, priority: 0, at_risk }
    }

    fn prefill(remaining: usize, priority: usize) -> SeqView {
        SeqView { prompt_remaining: remaining, priority, at_risk: false }
    }

    const FIFO: ComposeCfg = ComposeCfg {
        prefill_chunk: 8,
        step_token_budget: 16,
        priority_aware: false,
    };
    const SLO: ComposeCfg = ComposeCfg { priority_aware: true, ..FIFO };

    #[test]
    fn decode_rows_always_scheduled() {
        let seqs = [decode(false), prefill(100, 2), decode(true)];
        for cfg in [FIFO, SLO] {
            let plan = compose_plan(&cfg, &seqs);
            assert_eq!(plan[0], Some(PlanWork::Decode));
            assert_eq!(plan[2], Some(PlanWork::Decode));
        }
    }

    #[test]
    fn fifo_grants_in_admission_order() {
        // Budget 16, 2 decode rows leave 14: first prompt takes a full
        // chunk of 8, second gets the remaining 6.
        let seqs = [decode(false), prefill(20, 2), decode(false), prefill(20, 0)];
        let plan = compose_plan(&FIFO, &seqs);
        assert_eq!(plan[1], Some(PlanWork::Chunk { len: 8, last: false }));
        assert_eq!(plan[3], Some(PlanWork::Chunk { len: 6, last: false }));
    }

    #[test]
    fn priority_reorders_grants() {
        // Same shape, priority-aware: the priority-0 prompt (admitted
        // later) takes the full chunk first.
        let seqs = [decode(false), prefill(20, 2), decode(false), prefill(20, 0)];
        let plan = compose_plan(&SLO, &seqs);
        assert_eq!(plan[3], Some(PlanWork::Chunk { len: 8, last: false }));
        assert_eq!(plan[1], Some(PlanWork::Chunk { len: 6, last: false }));
    }

    #[test]
    fn final_chunk_is_marked_last() {
        let seqs = [prefill(5, 0)];
        let plan = compose_plan(&FIFO, &seqs);
        assert_eq!(plan[0], Some(PlanWork::Chunk { len: 5, last: true }));
    }

    #[test]
    fn at_risk_decode_throttles_prefill_to_one_chunk() {
        // 2 decode rows + budget 16 leaves 14 ⇒ FIFO spreads 8 + 6;
        // with an at-risk row the cap drops to one chunk of 8.
        let seqs = [decode(true), prefill(20, 1), decode(false), prefill(20, 1)];
        let plan = compose_plan(&SLO, &seqs);
        let prefill_tokens: usize = plan
            .iter()
            .flatten()
            .map(|w| match w {
                PlanWork::Decode => 0,
                PlanWork::Chunk { len, .. } => *len,
            })
            .sum();
        assert_eq!(prefill_tokens, 8, "one chunk rides along: {plan:?}");
        assert_eq!(plan[1], Some(PlanWork::Chunk { len: 8, last: false }));
        assert_eq!(plan[3], None);
    }

    #[test]
    fn anti_starvation_grant_survives_decode_saturation() {
        let cfg = ComposeCfg { prefill_chunk: 4, step_token_budget: 2, priority_aware: true };
        let seqs = [decode(false), decode(false), prefill(10, 2), prefill(10, 1)];
        let plan = compose_plan(&cfg, &seqs);
        // Budget exhausted by decode, yet the most urgent prompt still
        // advances one chunk.
        assert_eq!(plan[3], Some(PlanWork::Chunk { len: 4, last: false }));
        assert_eq!(plan[2], None);
    }

    #[test]
    fn pick_next_prefers_priority_then_arrival() {
        let q = [(2, 10), (1, 12), (1, 11), (2, 9)];
        assert_eq!(pick_next(&q, true), Some(2), "earliest of the best class");
        assert_eq!(pick_next(&q, false), Some(0), "FIFO takes the front");
        assert_eq!(pick_next(&[], true), None);
    }
}
