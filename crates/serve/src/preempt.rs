//! Preemption policy for paged KV serving: swap-vs-recompute cost
//! model and victim selection.
//!
//! When a step's planned KV growth needs more pages than the block
//! allocator has free, the scheduler evicts running sequences until the
//! plan fits. Two mechanisms exist to take a victim's pages away
//! without losing its work:
//!
//! * **Swap**: capture the victim's KV rows into host-side
//!   [`kt_model::SwappedKv`] buffers (the offloaded tier), release the
//!   lease, and restore the rows bit-for-bit into a fresh lease at
//!   resume. Costs one PCIe round trip over the cache bytes.
//! * **Recompute**: drop the pages outright and re-feed the token
//!   stream at resume — prompt positions through the chunked-prefill
//!   path (bitwise identical to monolithic by the chunk invariance
//!   contract), already-emitted generations as sampling-suppressed
//!   decode rows, because Expert Deferral is decode-row-only and a
//!   generation re-fed as prefill would write different KV bits. The
//!   rebuilt cache is exactly the dropped one. Costs recompute FLOPs
//!   but zero transfer.
//!
//! [`PreemptPolicy::Auto`] picks per victim by comparing the two costs
//! under a [`PreemptCostModel`] calibrated from the hardware simulator
//! (same [`Calibration`]/[`Platform`] anchors as the dynamic-placement
//! `CostModel` in `kt_core::placement`): short sequences recompute
//! (cheap FLOPs, no transfer), long ones swap (PCIe beats re-running a
//! long prefill). Either way the resumed sequence's tokens are bitwise
//! identical to an unpreempted run — preemption is pure scheduling.
//!
//! Victim *selection* is SLO-class-aware and reuses the admission
//! ordering of the SLO scheduler: the least urgent class goes first
//! (highest [`SloClass::priority`] value), newest admission first
//! within a class — the mirror image of `pick_next`, so the sequences
//! the scheduler would admit last are preempted first.

use kt_hwsim::{Calibration, Platform};

/// How the scheduler takes pages back from preemption victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptPolicy {
    /// Per-victim swap-vs-recompute by the calibrated cost model.
    #[default]
    Auto,
    /// Always swap pages to the host tier (useful for pinning down the
    /// swap path in tests and ablations).
    AlwaysSwap,
    /// Always drop pages and recompute at resume.
    AlwaysRecompute,
}

/// The mechanism chosen for one victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptMode {
    /// Capture rows to host memory; restore at resume.
    Swap,
    /// Drop rows; re-prefill the fed tokens at resume.
    Recompute,
}

impl PreemptMode {
    /// Label used by the `kt_preempt_total{mode=...}` metric family.
    pub fn as_str(self) -> &'static str {
        match self {
            PreemptMode::Swap => "swap",
            PreemptMode::Recompute => "recompute",
        }
    }
}

/// Calibrated per-unit costs of the two preemption mechanisms.
///
/// Swap moves every KV byte across PCIe twice (out now, back in at
/// resume); recompute replays prefill on the CPU roofline — the vGPU in
/// this harness executes kernels on host cores at host speed, the same
/// reasoning as `kt_core::placement::dynamic::CostModel`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptCostModel {
    /// Seconds to swap one KV byte out and back in.
    pub swap_s_per_byte: f64,
    /// Seconds to re-prefill one token at resume.
    pub recompute_s_per_token: f64,
}

impl PreemptCostModel {
    /// Builds the model from the hwsim calibration anchors for the
    /// paper's server platform. `flops_per_token` is the model's
    /// forward cost per prefilled token (attention + FFN across all
    /// layers); [`flops_per_token`] estimates it from the model shape.
    pub fn calibrated(flops_per_token: f64) -> Self {
        let cal = Calibration::default();
        let platform = Platform::a100_dual_xeon();
        let swap_s_per_byte = 2.0 * cal.pcie_time(1.0, platform.pcie_gbs);
        let cpu_tflops = cal.kt_avx512_tflops * platform.cpu.sockets as f64;
        PreemptCostModel {
            swap_s_per_byte,
            recompute_s_per_token: flops_per_token / (cpu_tflops * 1e12),
        }
    }

    /// Predicted cost of swapping `bytes` of KV out and back.
    pub fn swap_cost_s(&self, bytes: usize) -> f64 {
        bytes as f64 * self.swap_s_per_byte
    }

    /// Predicted cost of re-prefilling `tokens` rows at resume.
    pub fn recompute_cost_s(&self, tokens: usize) -> f64 {
        tokens as f64 * self.recompute_s_per_token
    }

    /// Picks the mechanism for one victim holding `bytes` of KV across
    /// `tokens` rows.
    pub fn mode(&self, policy: PreemptPolicy, bytes: usize, tokens: usize) -> PreemptMode {
        match policy {
            PreemptPolicy::AlwaysSwap => PreemptMode::Swap,
            PreemptPolicy::AlwaysRecompute => PreemptMode::Recompute,
            PreemptPolicy::Auto => {
                if self.swap_cost_s(bytes) <= self.recompute_cost_s(tokens) {
                    PreemptMode::Swap
                } else {
                    PreemptMode::Recompute
                }
            }
        }
    }
}

/// Rough forward FLOPs per prefilled token for a model shape:
/// per layer, the four attention projections (`4·h²`) plus a
/// three-matrix gated FFN over the larger intermediate size
/// (`3·h·inter`), times two FLOPs per multiply-add. Feeds
/// [`PreemptCostModel::calibrated`]; only the swap-vs-recompute
/// *ratio* matters, so a shape-level estimate is enough.
pub fn flops_per_token(n_layers: usize, hidden: usize, inter: usize) -> f64 {
    n_layers as f64 * 2.0 * (4.0 * hidden as f64 * hidden as f64 + 3.0 * hidden as f64 * inter as f64)
}

/// What victim selection knows about one active sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimView {
    /// [`crate::SloClass::priority`] — 0 is most urgent.
    pub priority: usize,
    /// Process-wide admission counter: larger means admitted later.
    pub admit_seq: u64,
}

/// Picks the next preemption victim: the least urgent class present
/// (largest priority value), newest admission within it — exactly the
/// sequences priority admission would have admitted last. With two or
/// more candidates the pick is never the most urgent oldest sequence,
/// so at least one sequence always survives a preemption cascade.
/// `None` on an empty slice.
pub fn select_victim(views: &[VictimView]) -> Option<usize> {
    views
        .iter()
        .enumerate()
        .max_by_key(|(_, v)| (v.priority, v.admit_seq))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_policies_ignore_the_costs() {
        let m = PreemptCostModel::calibrated(1e9);
        assert_eq!(m.mode(PreemptPolicy::AlwaysSwap, usize::MAX, 0), PreemptMode::Swap);
        assert_eq!(
            m.mode(PreemptPolicy::AlwaysRecompute, 0, usize::MAX),
            PreemptMode::Recompute
        );
    }

    #[test]
    fn auto_swaps_long_sequences_and_recomputes_short_ones() {
        // A shape where one token's recompute FLOPs cost more than
        // swapping its KV bytes: KV rows are tiny next to the weights
        // they'd re-stream. Roughly the regime of any real MoE model.
        let m = PreemptCostModel::calibrated(flops_per_token(24, 1024, 4096));
        let row_bytes = 2 * 1024 * 4;
        // Per-row swap cost is far below per-row recompute cost, so
        // Auto swaps at any length with proportional bytes...
        assert_eq!(
            m.mode(PreemptPolicy::Auto, 512 * row_bytes, 512),
            PreemptMode::Swap
        );
        // ...and recomputes when the cache is disproportionately fat
        // for its row count (e.g. most rows already shared with the
        // prefix index, so recompute re-derives only a few).
        assert_eq!(
            m.mode(PreemptPolicy::Auto, 200 * 1024 * 1024, 3),
            PreemptMode::Recompute
        );
    }

    #[test]
    fn cost_model_anchors_are_sane() {
        let m = PreemptCostModel::calibrated(flops_per_token(24, 1024, 4096));
        // PCIe 4.0 x16 at 32 GB/s, both directions.
        assert!((m.swap_s_per_byte - 2.0 / 32e9).abs() < 1e-15);
        assert!(m.recompute_s_per_token > 0.0);
        assert_eq!(m.swap_cost_s(0), 0.0);
        assert_eq!(m.recompute_cost_s(0), 0.0);
    }

    #[test]
    fn victim_order_is_least_urgent_newest_first() {
        let v = |priority, admit_seq| VictimView { priority, admit_seq };
        assert_eq!(select_victim(&[]), None);
        // Class order beats admission order.
        assert_eq!(select_victim(&[v(0, 9), v(2, 1), v(1, 5)]), Some(1));
        // Within a class, newest first.
        assert_eq!(select_victim(&[v(1, 3), v(1, 7), v(0, 9)]), Some(1));
        // Two candidates never pick the most urgent oldest: a survivor
        // is guaranteed.
        assert_eq!(select_victim(&[v(0, 1), v(0, 2)]), Some(1));
    }
}
