//! Bakes the git revision into the crate so the `kt_build_info` gauge
//! can tell replicas apart in multi-instance scrapes. Falls back to
//! "unknown" outside a git checkout (e.g. a source tarball) — the
//! gauge must never break the build.

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=KT_GIT_HASH={hash}");
    // Re-run when HEAD moves so the baked hash tracks the checkout.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
