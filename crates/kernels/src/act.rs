//! Activation functions used by MoE feed-forward blocks.

/// SiLU (sigmoid-weighted linear unit), the gate activation of the
/// DeepSeek/Qwen expert MLPs: `silu(x) = x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Applies `dst[i] = silu(gate[i]) * up[i]` — the fused SwiGLU combine
/// between the Gate and Up projections of an expert.
pub fn swiglu_combine(gate: &[f32], up: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(gate.len(), up.len());
    debug_assert_eq!(gate.len(), dst.len());
    for ((d, &g), &u) in dst.iter_mut().zip(gate).zip(up) {
        *d = silu(g) * u;
    }
}

/// Numerically stable in-place softmax.
pub fn softmax_inplace(v: &mut [f32]) {
    if v.is_empty() {
        return;
    }
    let max = v.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Sigmoid, used by DeepSeek-V3's gating scores.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-10.0).abs() < 1e-3);
        // SiLU is asymptotically identity for large x.
        assert!((silu(20.0) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn swiglu_combines_elementwise() {
        let gate = [0.0, 1.0];
        let up = [3.0, 2.0];
        let mut dst = [0.0f32; 2];
        swiglu_combine(&gate, &up, &mut dst);
        assert_eq!(dst[0], 0.0);
        assert!((dst[1] - 2.0 * silu(1.0)).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = [1.0f32, 2.0, 3.0];
        let mut b = [101.0f32, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let mut v = [f32::NEG_INFINITY, 0.0];
        softmax_inplace(&mut v);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 1.0).abs() < 1e-6);
        let mut empty: [f32; 0] = [];
        softmax_inplace(&mut empty);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
    }
}
