//! Worker-thread pool with static and dynamic task scheduling.
//!
//! §3.2: "dynamic scheduling partitions large tasks into smaller
//! sequential subtasks in a lightweight task queue. CPU threads
//! dynamically retrieve tasks, significantly reducing imbalance".
//!
//! The pool is persistent (workers are spawned once and parked between
//! jobs, as an inference server would) and offers two policies:
//!
//! * [`SchedulePolicy::Static`] — tasks are split into equal contiguous
//!   ranges per worker up front. This is the baseline that suffers when
//!   expert activation is skewed (some ranges are much heavier).
//! * [`SchedulePolicy::Dynamic`] — workers claim the next task index
//!   from a shared atomic counter (the lightweight task queue), so a
//!   worker that finishes early immediately steals remaining work.

use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::sync::WaitGroup;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::KernelError;

/// Task-distribution policy for a pool job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// Equal contiguous ranges assigned up front (baseline).
    Static,
    /// Shared-counter work queue; idle workers pull the next task.
    Dynamic,
}

/// Type-erased task function: `f(task_index)`.
type TaskFn = dyn Fn(usize) + Sync;

struct Job {
    /// Erased pointer to the caller's closure.
    ///
    /// Validity: `ThreadPool::run` does not return until every worker
    /// has dropped its `WaitGroup` guard, which happens strictly after
    /// the last use of this pointer, so the pointee outlives all uses.
    f: *const TaskFn,
    n_tasks: usize,
    next: Arc<AtomicUsize>,
    /// Static range for this worker (`None` under dynamic scheduling).
    range: Option<(usize, usize)>,
    panicked: Arc<AtomicBool>,
    wg: WaitGroup,
}

// SAFETY: The raw closure pointer is only dereferenced while the caller
// blocks in `run` (see `Job::f` validity note); the pointee is `Sync` so
// concurrent shared calls are allowed.
unsafe impl Send for Job {}

/// A persistent pool of worker threads executing index-addressed tasks.
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    senders: Vec<Sender<Job>>,
    n_threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `n_threads` total execution lanes.
    ///
    /// One lane is the caller's own thread (the paper's CPU control
    /// thread also executes expert work), so `n_threads - 1` workers are
    /// spawned.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] if `n_threads` is zero.
    pub fn new(n_threads: usize) -> Result<Self, KernelError> {
        if n_threads == 0 {
            return Err(KernelError::config("thread pool requires n_threads >= 1"));
        }
        let mut workers = Vec::new();
        let mut senders = Vec::new();
        for i in 0..n_threads.saturating_sub(1) {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
            senders.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kt-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("failed to spawn worker thread"),
            );
        }
        Ok(ThreadPool {
            workers,
            senders,
            n_threads,
        })
    }

    /// Number of execution lanes (including the caller's thread).
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Runs `n_tasks` tasks, calling `f(i)` exactly once for every
    /// `i in 0..n_tasks`, distributed over all lanes according to
    /// `policy`. Blocks until all tasks complete.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) if any task panicked on a worker thread.
    pub fn run<F>(&self, n_tasks: usize, policy: SchedulePolicy, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n_tasks == 0 {
            return;
        }
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: We erase the lifetime of `f_ref` (fat-pointer
        // transmute to the `'static`-bounded alias). The pointer is used
        // only by jobs whose `WaitGroup` guards we wait on below before
        // returning, so `f` strictly outlives every dereference.
        let f_ptr: *const TaskFn =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &TaskFn>(f_ref) };

        let next = Arc::new(AtomicUsize::new(0));
        let panicked = Arc::new(AtomicBool::new(false));
        let wg = WaitGroup::new();
        let lanes = self.n_threads;

        // Dispatch to workers (lanes 1..n); lane 0 is this thread.
        for (w, tx) in self.senders.iter().enumerate() {
            let lane = w + 1;
            let range = match policy {
                SchedulePolicy::Static => Some(static_range(n_tasks, lanes, lane)),
                SchedulePolicy::Dynamic => None,
            };
            let job = Job {
                f: f_ptr,
                n_tasks,
                next: Arc::clone(&next),
                range,
                panicked: Arc::clone(&panicked),
                wg: wg.clone(),
            };
            tx.send(job).expect("worker thread exited unexpectedly");
        }

        // Participate from the calling thread as lane 0.
        let my_range = match policy {
            SchedulePolicy::Static => Some(static_range(n_tasks, lanes, 0)),
            SchedulePolicy::Dynamic => None,
        };
        execute_tasks(f_ref, n_tasks, &next, my_range, &panicked);

        wg.wait();
        if panicked.load(Ordering::Acquire) {
            panic!("a pool task panicked");
        }
    }

    /// Convenience: runs with [`SchedulePolicy::Dynamic`], the paper's
    /// default configuration.
    pub fn run_dynamic<F>(&self, n_tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run(n_tasks, SchedulePolicy::Dynamic, f);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channels makes the worker loops return.
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("n_threads", &self.n_threads)
            .finish()
    }
}

fn worker_loop(rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        // SAFETY: See `Job::f` — the caller blocks until `job.wg` is
        // dropped, keeping the closure alive for the duration.
        let f: &TaskFn = unsafe { &*job.f };
        execute_tasks(f, job.n_tasks, &job.next, job.range, &job.panicked);
        drop(job.wg);
    }
}

fn execute_tasks(
    f: &(dyn Fn(usize) + Sync),
    n_tasks: usize,
    next: &AtomicUsize,
    range: Option<(usize, usize)>,
    panicked: &AtomicBool,
) {
    let result = catch_unwind(AssertUnwindSafe(|| match range {
        Some((start, end)) => {
            for i in start..end {
                f(i);
            }
        }
        None => loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            f(i);
        },
    }));
    if result.is_err() {
        panicked.store(true, Ordering::Release);
    }
}

/// Contiguous static range of `lane` out of `lanes` for `n_tasks` tasks.
fn static_range(n_tasks: usize, lanes: usize, lane: usize) -> (usize, usize) {
    let base = n_tasks / lanes;
    let rem = n_tasks % lanes;
    let start = lane * base + lane.min(rem);
    let len = base + usize::from(lane < rem);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_threads_is_rejected() {
        assert!(ThreadPool::new(0).is_err());
    }

    #[test]
    fn static_ranges_cover_exactly_once() {
        for n_tasks in [0usize, 1, 5, 16, 17, 100] {
            for lanes in [1usize, 2, 3, 8] {
                let mut seen = vec![0u32; n_tasks];
                for lane in 0..lanes {
                    let (s, e) = static_range(n_tasks, lanes, lane);
                    for c in seen.iter_mut().take(e).skip(s) {
                        *c += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "n={n_tasks} lanes={lanes}");
            }
        }
    }

    #[test]
    fn all_tasks_run_exactly_once_each_policy() {
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads).unwrap();
            for policy in [SchedulePolicy::Static, SchedulePolicy::Dynamic] {
                let n = 257;
                let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                pool.run(n, policy, |i| {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "threads={threads} policy={policy:?}"
                );
            }
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = ThreadPool::new(2).unwrap();
        pool.run_dynamic(0, |_| panic!("must not be called"));
    }

    #[test]
    fn results_can_be_written_through_shared_slice() {
        let pool = ThreadPool::new(3).unwrap();
        let n = 64;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run_dynamic(n, |i| {
            out[i].store((i * i) as u64, Ordering::Relaxed);
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), (i * i) as u64);
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(2).unwrap();
        let total = AtomicU64::new(0);
        for _ in 0..10 {
            pool.run_dynamic(100, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }

    #[test]
    #[should_panic(expected = "a pool task panicked")]
    fn worker_panics_propagate() {
        let pool = ThreadPool::new(2).unwrap();
        pool.run_dynamic(8, |i| {
            if i == 5 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn skewed_workloads_complete_under_both_policies() {
        // Functional smoke test for the load-imbalance scenario of §3.2;
        // the quantitative dynamic-vs-static comparison is a benchmark
        // (ablation_sched) because wall-clock balance is not assertable
        // on arbitrary CI hardware.
        let pool = ThreadPool::new(4).unwrap();
        let n = 64;
        let cost = |i: usize| if i < n / 2 { 50u64 } else { 1 };
        for policy in [SchedulePolicy::Static, SchedulePolicy::Dynamic] {
            let total = AtomicU64::new(0);
            pool.run(n, policy, |i| {
                let mut acc = 0u64;
                for _ in 0..cost(i) * 100 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                total.fetch_add(cost(i), Ordering::Relaxed);
            });
            let expect: u64 = (0..n).map(cost).sum();
            assert_eq!(total.load(Ordering::Relaxed), expect, "policy={policy:?}");
        }
    }
}
