//! Error type for kernel execution.

use std::fmt;

/// Errors produced by kernel entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Operand shapes are incompatible.
    Shape {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// A configuration value is invalid (e.g. zero threads).
    Config {
        /// Human-readable description of the invalid setting.
        what: String,
    },
}

impl KernelError {
    /// Convenience constructor for [`KernelError::Shape`].
    pub fn shape(what: impl Into<String>) -> Self {
        KernelError::Shape { what: what.into() }
    }

    /// Convenience constructor for [`KernelError::Config`].
    pub fn config(what: impl Into<String>) -> Self {
        KernelError::Config { what: what.into() }
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Shape { what } => write!(f, "shape mismatch: {what}"),
            KernelError::Config { what } => write!(f, "invalid config: {what}"),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(KernelError::shape("a.cols != w.k").to_string().contains("a.cols"));
        assert!(KernelError::config("threads=0").to_string().contains("threads"));
    }
}
