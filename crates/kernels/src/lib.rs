//! CPU compute kernels for the KTransformers reproduction (§3.2).
//!
//! This crate implements the paper's "Arithmetic Intensity-Aware Hybrid
//! Inference Kernel" in portable Rust:
//!
//! * [`gemm`] — the tiled, cache-blocked "AMX-class" GEMM operating on
//!   the packed tile layout from `kt-tensor`, plus the lightweight
//!   "AVX-512-class" vector kernel that shares the same layout.
//! * [`dispatch`] — arithmetic-intensity-based kernel selection (tokens
//!   per expert ≤ 4 → vector kernel; Figure 7's crossover).
//! * [`schedule`] — worker thread pool with *static* and *dynamic* task
//!   scheduling; dynamic scheduling is the paper's "lightweight task
//!   queue" that fixes prefill load imbalance (up to 1.83×).
//! * [`steal`] — the work-stealing alternative (per-worker deques with
//!   home affinity for expert co-scheduling), for comparison.
//! * [`moe`] — the fused MoE operator: Gate+Up projections of all
//!   activated experts merged into one task batch, Down projections into
//!   a second, eliminating per-projection synchronization.
//! * [`numa`] — NUMA-aware tensor parallelism: every expert weight
//!   matrix is column-partitioned across socket domains with a
//!   reduce-scatter-style combine, vs. the Expert-Parallel baseline.
//!
//! On this reproduction's hardware there is no AMX unit; the tiled
//! kernel reproduces the *algorithm* (packed tile-major weights,
//! L2-sized blocking, register-blocked microkernel, one-pass staging of
//! inputs) with real AVX-512/AVX2 microkernels ([`simd`]) where the
//! host supports them, and the AMX performance *model* lives in
//! `kt-hwsim`.

pub mod act;
pub mod dispatch;
pub mod error;
pub mod gemm;
pub mod moe;
pub mod numa;
pub mod schedule;
pub mod simd;
pub mod steal;

pub use dispatch::{select_kernel, KernelClass, ARI_CROSSOVER};
pub use error::KernelError;
pub use gemm::{gemm_auto, gemm_tiled, gemv_vector};
pub use moe::{ExpertWeights, FusedMoE, MoeRouting, MoeWorkspace};
pub use numa::{ExpertParallelMoe, NumaTopology, TensorParallelMoe};
pub use schedule::{SchedulePolicy, ThreadPool};
pub use simd::{simd_level, SimdLevel};
pub use steal::run_stealing;
