//! Work-stealing task execution.
//!
//! The shared-counter queue in [`crate::schedule`] is the paper's
//! "lightweight task queue"; this module provides the classic
//! alternative — per-worker deques with stealing (crossbeam's
//! `deque`) — so the two designs can be compared. Work stealing adds
//! per-task overhead (CAS on a deque instead of one fetch-add) but
//! preserves **locality**: a worker drains its own deque LIFO-adjacent
//! tasks first, which keeps tasks that share an expert's weights on the
//! same core — the cache-reuse co-scheduling §3.2 asks for.

use crossbeam::deque::{Injector, Stealer, Worker};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::error::KernelError;

/// Executes `n_tasks` index-addressed tasks across `n_threads` scoped
/// workers using work-stealing deques. `f(i)` is called exactly once
/// for every `i`; `home(i)` names the worker whose deque initially
/// holds task `i` (use it to co-locate tasks sharing weights).
///
/// Unlike the persistent [`crate::schedule::ThreadPool`], workers are
/// scoped to the call — this entry point targets batch (prefill-style)
/// work where spawn cost amortizes.
///
/// # Errors
///
/// Returns [`KernelError::Config`] when `n_threads` is zero.
///
/// # Panics
///
/// Re-raises (as a panic) if any task panicked.
pub fn run_stealing<F, H>(
    n_threads: usize,
    n_tasks: usize,
    home: H,
    f: F,
) -> Result<(), KernelError>
where
    F: Fn(usize) + Sync,
    H: Fn(usize) -> usize,
{
    if n_threads == 0 {
        return Err(KernelError::config("work stealing requires >= 1 thread"));
    }
    if n_tasks == 0 {
        return Ok(());
    }
    // Build per-worker deques and seed them by home affinity.
    let workers: Vec<Worker<usize>> = (0..n_threads).map(|_| Worker::new_fifo()).collect();
    let injector: Injector<usize> = Injector::new();
    for i in 0..n_tasks {
        let h = home(i) % n_threads;
        workers[h].push(i);
    }
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    let remaining = AtomicUsize::new(n_tasks);
    let panicked = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let injector = &injector;
            let remaining = &remaining;
            let panicked = &panicked;
            let f = &f;
            scope.spawn(move || {
                let run_one = |task: usize| {
                    if catch_unwind(AssertUnwindSafe(|| f(task))).is_err() {
                        panicked.store(true, Ordering::Release);
                    }
                    remaining.fetch_sub(1, Ordering::AcqRel);
                };
                loop {
                    // 1. Own deque first (locality).
                    if let Some(task) = worker.pop() {
                        run_one(task);
                        continue;
                    }
                    if remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    // 2. Global injector, then 3. steal round-robin.
                    let mut found = false;
                    if let crossbeam::deque::Steal::Success(task) =
                        injector.steal_batch_and_pop(&worker)
                    {
                        run_one(task);
                        found = true;
                    } else {
                        for off in 1..stealers.len().max(2) {
                            let victim = (wid + off) % stealers.len();
                            if victim == wid {
                                continue;
                            }
                            if let crossbeam::deque::Steal::Success(task) =
                                stealers[victim].steal_batch_and_pop(&worker)
                            {
                                run_one(task);
                                found = true;
                                break;
                            }
                        }
                    }
                    if !found {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    if panicked.load(Ordering::Acquire) {
        panic!("a stolen task panicked");
    }
    debug_assert_eq!(remaining.load(Ordering::Acquire), 0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_threads_is_rejected_and_zero_tasks_is_noop() {
        assert!(run_stealing(0, 4, |i| i, |_| {}).is_err());
        run_stealing(2, 0, |i| i, |_| panic!("must not run")).unwrap();
    }

    #[test]
    fn every_task_runs_exactly_once() {
        for threads in [1usize, 2, 4] {
            let n = 203;
            let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            run_stealing(threads, n, |i| i % threads, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn skewed_home_assignment_still_completes() {
        // All tasks seeded on worker 0: the others must steal.
        let n = 64;
        let done = AtomicU64::new(0);
        run_stealing(4, n, |_| 0, |_| {
            done.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(done.load(Ordering::Relaxed), n as u64);
    }

    #[test]
    fn results_are_deterministic_values() {
        let n = 100;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        run_stealing(3, n, |i| i / 16, |i| {
            out[i].store((i * 3) as u64, Ordering::Relaxed);
        })
        .unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), (i * 3) as u64);
        }
    }

    #[test]
    #[should_panic(expected = "a stolen task panicked")]
    fn task_panics_propagate_after_completion() {
        let done = AtomicU64::new(0);
        run_stealing(2, 16, |i| i % 2, |i| {
            if i == 7 {
                panic!("boom");
            }
            done.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    }
}
