//! SIMD microkernels with runtime feature detection.
//!
//! The packed layout's [`kt_tensor::NR`] = 16 panel width was chosen to
//! match one AMX tile row — and it is also exactly one AVX-512 `zmm`
//! register of `f32`, or two AVX2 `ymm` registers. These microkernels
//! exploit that: per K-step they broadcast one activation, load the
//! staged 16-wide weight row and issue fused multiply-adds into
//! register-resident accumulator tiles, which is precisely the inner
//! loop of the paper's §3.2 kernels.
//!
//! Dispatch is by runtime detection (cached), with the portable scalar
//! kernel as both the fallback and the golden reference; results differ
//! from scalar only by FMA rounding.
//!
//! # Fused-dequant GEMV kernels
//!
//! The quantized serving hot path decodes packed Int8/Int4 codes (and
//! BF16 halves) **in-register**: codes are widened with exact integer
//! conversions, the group scale multiply is a single IEEE `mul`, and
//! the activation multiply-accumulate is one fused multiply-add. The
//! scalar golden references perform the *same* per-lane operation
//! sequence with `f32::mul_add` (correctly rounded, like the hardware
//! FMA), so the SIMD kernels are **bitwise identical** to scalar at
//! every level — the property the chunked-prefill and forced-level
//! proptests pin.
//!
//! Tests can cap dispatch on the current thread with
//! [`with_forced_simd_level`]; the disabled-path cost is one relaxed
//! atomic load.

use kt_tensor::{Bf16, NR};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Available instruction level, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar fallback.
    Scalar,
    /// AVX2 + FMA (two 8-lane registers per panel row).
    Avx2Fma,
    /// AVX-512F (one 16-lane register per panel row).
    Avx512,
}

/// Detects the best available level (cached after first call).
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2Fma;
            }
        }
        SimdLevel::Scalar
    })
}

/// Count of live [`with_forced_simd_level`] scopes across all threads.
/// Zero (the overwhelmingly common case) means dispatch can skip the
/// thread-local lookup entirely.
static FORCE_SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread dispatch cap installed by [`with_forced_simd_level`].
    static FORCED_LEVEL: Cell<Option<SimdLevel>> = const { Cell::new(None) };
}

/// Runs `f` with SIMD dispatch on the **calling thread** capped at
/// `level`. Kernels executed by other threads (e.g. a `ThreadPool`)
/// are unaffected, so tests that need a pinned level call kernels with
/// `pool = None`. Scopes nest; the outer cap is restored on exit.
pub fn with_forced_simd_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    struct Guard(Option<SimdLevel>);
    impl Drop for Guard {
        fn drop(&mut self) {
            FORCED_LEVEL.with(|c| c.set(self.0));
            FORCE_SCOPES.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let prev = FORCED_LEVEL.with(|c| c.replace(Some(level)));
    FORCE_SCOPES.fetch_add(1, Ordering::Relaxed);
    let _restore = Guard(prev);
    f()
}

/// The level dispatch actually uses: the detected level, capped by the
/// current thread's forced level when a forcing scope is active.
#[inline]
pub fn effective_simd_level() -> SimdLevel {
    let detected = simd_level();
    if FORCE_SCOPES.load(Ordering::Relaxed) == 0 {
        return detected;
    }
    FORCED_LEVEL.with(|c| c.get()).map_or(detected, |l| l.min(detected))
}

/// Portable scalar microkernel (the golden reference): accumulates `M`
/// activation rows against one staged K-major panel block.
#[allow(clippy::needless_range_loop)] // fixed-trip loops vectorize best
#[inline]
pub fn microkernel_scalar<const M: usize>(
    a: [&[f32]; M],
    staged: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; M],
) {
    for kk in 0..kb {
        let wrow = &staged[kk * NR..kk * NR + NR];
        for i in 0..M {
            let ai = a[i][kk];
            let t = &mut acc[i];
            for j in 0..NR {
                t[j] += ai * wrow[j];
            }
        }
    }
}

/// AVX-512 microkernel: one `zmm` register per accumulator row.
///
/// # Safety
///
/// Callers must ensure AVX-512F is available (checked via
/// [`simd_level`]). Slice bounds are enforced by the debug assertions
/// and the loop structure: `staged` holds at least `kb * NR` values and
/// every `a[i]` at least `kb`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn microkernel_avx512<const M: usize>(
    a: [&[f32]; M],
    staged: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; M],
) {
    use std::arch::x86_64::*;
    debug_assert!(staged.len() >= kb * NR);
    for row in a.iter().take(M) {
        debug_assert!(row.len() >= kb);
    }
    // SAFETY: All pointer arithmetic stays within the slices per the
    // debug assertions above; NR == 16 matches one __m512 of f32.
    unsafe {
        let mut vacc = [_mm512_setzero_ps(); M];
        for (i, t) in acc.iter().enumerate().take(M) {
            vacc[i] = _mm512_loadu_ps(t.as_ptr());
        }
        let sp = staged.as_ptr();
        for kk in 0..kb {
            let w = _mm512_loadu_ps(sp.add(kk * NR));
            for i in 0..M {
                let ai = _mm512_set1_ps(*a[i].as_ptr().add(kk));
                vacc[i] = _mm512_fmadd_ps(ai, w, vacc[i]);
            }
        }
        for (i, t) in acc.iter_mut().enumerate().take(M) {
            _mm512_storeu_ps(t.as_mut_ptr(), vacc[i]);
        }
    }
}

/// AVX2+FMA microkernel: two `ymm` registers per accumulator row.
///
/// # Safety
///
/// Callers must ensure AVX2 and FMA are available (checked via
/// [`simd_level`]); bounds as for [`microkernel_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn microkernel_avx2<const M: usize>(
    a: [&[f32]; M],
    staged: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; M],
) {
    use std::arch::x86_64::*;
    debug_assert!(staged.len() >= kb * NR);
    // SAFETY: As for `microkernel_avx512`; NR == 16 == 2 x __m256.
    unsafe {
        let mut lo = [_mm256_setzero_ps(); M];
        let mut hi = [_mm256_setzero_ps(); M];
        for i in 0..M {
            lo[i] = _mm256_loadu_ps(acc[i].as_ptr());
            hi[i] = _mm256_loadu_ps(acc[i].as_ptr().add(8));
        }
        let sp = staged.as_ptr();
        for kk in 0..kb {
            let wlo = _mm256_loadu_ps(sp.add(kk * NR));
            let whi = _mm256_loadu_ps(sp.add(kk * NR + 8));
            for i in 0..M {
                let ai = _mm256_set1_ps(*a[i].as_ptr().add(kk));
                lo[i] = _mm256_fmadd_ps(ai, wlo, lo[i]);
                hi[i] = _mm256_fmadd_ps(ai, whi, hi[i]);
            }
        }
        for i in 0..M {
            _mm256_storeu_ps(acc[i].as_mut_ptr(), lo[i]);
            _mm256_storeu_ps(acc[i].as_mut_ptr().add(8), hi[i]);
        }
    }
}

/// Dispatching microkernel: picks the best detected implementation.
#[inline]
pub fn microkernel<const M: usize>(
    a: [&[f32]; M],
    staged: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; M],
) {
    match effective_simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 =>
        // SAFETY: `effective_simd_level` never exceeds the detected
        // level, which verified AVX-512F support at runtime.
        unsafe { microkernel_avx512::<M>(a, staged, kb, acc) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma =>
        // SAFETY: As above for AVX2+FMA.
        unsafe { microkernel_avx2::<M>(a, staged, kb, acc) },
        _ => microkernel_scalar::<M>(a, staged, kb, acc),
    }
}

// ---------------------------------------------------------------------
// Fused-dequant GEMV kernels (quantized serving hot path).
//
// Contract shared by every implementation below: for each K-step `kk`
// and each lane `j`, exactly
//
//     w      = widen(code[kk][j])            (exact int/bf16 -> f32)
//     wv     = w * scale[kk/group][j]        (one IEEE mul; skipped for bf16)
//     acc[j] = fma(x[kk], wv, acc[j])        (correctly rounded FMA)
//
// in ascending `kk` order. `f32::mul_add` is correctly rounded, as are
// the AVX FMA instructions, and the widenings are exact, so scalar,
// AVX2 and AVX-512 paths agree bit for bit.
// ---------------------------------------------------------------------

/// Scalar golden reference: fused-dequant GEMV over one BF16 panel.
#[allow(clippy::needless_range_loop)]
pub fn gemv_bf16_scalar(x: &[f32], panel: &[Bf16], acc: &mut [f32; NR]) {
    debug_assert!(panel.len() >= x.len() * NR);
    for (kk, &xv) in x.iter().enumerate() {
        let wrow = &panel[kk * NR..kk * NR + NR];
        for j in 0..NR {
            acc[j] = xv.mul_add(wrow[j].to_f32(), acc[j]);
        }
    }
}

/// Scalar golden reference: fused-dequant GEMV over one Int8 panel.
#[allow(clippy::needless_range_loop)]
pub fn gemv_int8_scalar(x: &[f32], bytes: &[u8], scales: &[f32], group: usize, acc: &mut [f32; NR]) {
    debug_assert!(bytes.len() >= x.len() * NR);
    for (kk, &xv) in x.iter().enumerate() {
        let srow = &scales[(kk / group) * NR..(kk / group) * NR + NR];
        let brow = &bytes[kk * NR..kk * NR + NR];
        for j in 0..NR {
            let wv = (brow[j] as i8) as f32 * srow[j];
            acc[j] = xv.mul_add(wv, acc[j]);
        }
    }
}

/// Scalar golden reference: fused-dequant GEMV over one Int4 panel
/// (two codes per byte: low nibble = even `kk`, high nibble = odd).
#[allow(clippy::needless_range_loop)]
pub fn gemv_int4_scalar(x: &[f32], bytes: &[u8], scales: &[f32], group: usize, acc: &mut [f32; NR]) {
    for (kk, &xv) in x.iter().enumerate() {
        let srow = &scales[(kk / group) * NR..(kk / group) * NR + NR];
        let brow = &bytes[(kk / 2) * NR..(kk / 2) * NR + NR];
        if kk % 2 == 0 {
            for j in 0..NR {
                let code = ((brow[j] & 0x0F) as i8) << 4 >> 4;
                acc[j] = xv.mul_add(code as f32 * srow[j], acc[j]);
            }
        } else {
            for j in 0..NR {
                let code = (brow[j] as i8) >> 4;
                acc[j] = xv.mul_add(code as f32 * srow[j], acc[j]);
            }
        }
    }
}

/// AVX-512 fused-dequant BF16 GEMV: 16 halves are zero-extended to
/// `i32`, shifted into f32 position (exact) and FMA-accumulated.
///
/// # Safety
///
/// Caller must ensure AVX-512F is available; `panel` holds at least
/// `x.len() * NR` values.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn gemv_bf16_avx512(x: &[f32], panel: &[Bf16], acc: &mut [f32; NR]) {
    use std::arch::x86_64::*;
    debug_assert!(panel.len() >= x.len() * NR);
    // SAFETY: `Bf16` is repr(transparent) over u16; all loads stay
    // within `panel` (one 16-lane row per K-step) per the assertion.
    unsafe {
        let mut vacc = _mm512_loadu_ps(acc.as_ptr());
        let wp = panel.as_ptr().cast::<u16>();
        for (kk, &xv) in x.iter().enumerate() {
            let h = _mm256_loadu_si256(wp.add(kk * NR).cast());
            let w = _mm512_castsi512_ps(_mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16));
            vacc = _mm512_fmadd_ps(_mm512_set1_ps(xv), w, vacc);
        }
        _mm512_storeu_ps(acc.as_mut_ptr(), vacc);
    }
}

/// AVX2+FMA fused-dequant BF16 GEMV (two 8-lane halves).
///
/// # Safety
///
/// Caller must ensure AVX2 and FMA are available; bounds as for
/// [`gemv_bf16_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemv_bf16_avx2(x: &[f32], panel: &[Bf16], acc: &mut [f32; NR]) {
    use std::arch::x86_64::*;
    debug_assert!(panel.len() >= x.len() * NR);
    // SAFETY: As for `gemv_bf16_avx512`, split into ymm halves.
    unsafe {
        let mut lo = _mm256_loadu_ps(acc.as_ptr());
        let mut hi = _mm256_loadu_ps(acc.as_ptr().add(8));
        let wp = panel.as_ptr().cast::<u16>();
        for (kk, &xv) in x.iter().enumerate() {
            let h = _mm256_loadu_si256(wp.add(kk * NR).cast());
            let wlo = _mm256_castsi256_ps(_mm256_slli_epi32(
                _mm256_cvtepu16_epi32(_mm256_castsi256_si128(h)),
                16,
            ));
            let whi = _mm256_castsi256_ps(_mm256_slli_epi32(
                _mm256_cvtepu16_epi32(_mm256_extracti128_si256(h, 1)),
                16,
            ));
            let ai = _mm256_set1_ps(xv);
            lo = _mm256_fmadd_ps(ai, wlo, lo);
            hi = _mm256_fmadd_ps(ai, whi, hi);
        }
        _mm256_storeu_ps(acc.as_mut_ptr(), lo);
        _mm256_storeu_ps(acc.as_mut_ptr().add(8), hi);
    }
}

/// AVX-512 fused-dequant Int8 GEMV: 16 codes sign-extend to `i32`
/// in-register, one scale mul per K-step (scale row reloaded once per
/// quantization group), FMA accumulate.
///
/// # Safety
///
/// Caller must ensure AVX-512F is available; `bytes` holds at least
/// `x.len() * NR` codes and `scales` one 16-wide row per group.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn gemv_int8_avx512(
    x: &[f32],
    bytes: &[u8],
    scales: &[f32],
    group: usize,
    acc: &mut [f32; NR],
) {
    use std::arch::x86_64::*;
    debug_assert!(bytes.len() >= x.len() * NR);
    // SAFETY: Row loads are 16 bytes at `kk * NR` and 64 bytes at
    // `(kk/group) * NR`, both in bounds per the layout contract.
    unsafe {
        let mut vacc = _mm512_loadu_ps(acc.as_ptr());
        let bp = bytes.as_ptr();
        let sp = scales.as_ptr();
        let k = x.len();
        let mut g0 = 0usize;
        let mut gi = 0usize;
        while g0 < k {
            let gend = (g0 + group).min(k);
            let s = _mm512_loadu_ps(sp.add(gi * NR));
            for (kk, &xv) in x.iter().enumerate().take(gend).skip(g0) {
                let codes = _mm_loadu_si128(bp.add(kk * NR).cast());
                let w = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(codes));
                vacc = _mm512_fmadd_ps(_mm512_set1_ps(xv), _mm512_mul_ps(w, s), vacc);
            }
            g0 = gend;
            gi += 1;
        }
        _mm512_storeu_ps(acc.as_mut_ptr(), vacc);
    }
}

/// AVX2+FMA fused-dequant Int8 GEMV (two 8-lane halves).
///
/// # Safety
///
/// Caller must ensure AVX2 and FMA are available; bounds as for
/// [`gemv_int8_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemv_int8_avx2(
    x: &[f32],
    bytes: &[u8],
    scales: &[f32],
    group: usize,
    acc: &mut [f32; NR],
) {
    use std::arch::x86_64::*;
    debug_assert!(bytes.len() >= x.len() * NR);
    // SAFETY: As for `gemv_int8_avx512`, split into ymm halves.
    unsafe {
        let mut lo = _mm256_loadu_ps(acc.as_ptr());
        let mut hi = _mm256_loadu_ps(acc.as_ptr().add(8));
        let bp = bytes.as_ptr();
        let sp = scales.as_ptr();
        let k = x.len();
        let mut g0 = 0usize;
        let mut gi = 0usize;
        while g0 < k {
            let gend = (g0 + group).min(k);
            let slo = _mm256_loadu_ps(sp.add(gi * NR));
            let shi = _mm256_loadu_ps(sp.add(gi * NR + 8));
            for (kk, &xv) in x.iter().enumerate().take(gend).skip(g0) {
                let codes = _mm_loadu_si128(bp.add(kk * NR).cast());
                let wlo = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(codes));
                let whi = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(codes, 8)));
                let ai = _mm256_set1_ps(xv);
                lo = _mm256_fmadd_ps(ai, _mm256_mul_ps(wlo, slo), lo);
                hi = _mm256_fmadd_ps(ai, _mm256_mul_ps(whi, shi), hi);
            }
            g0 = gend;
            gi += 1;
        }
        _mm256_storeu_ps(acc.as_mut_ptr(), lo);
        _mm256_storeu_ps(acc.as_mut_ptr().add(8), hi);
    }
}

/// AVX-512 fused-dequant Int4 GEMV. Each 16-byte row holds the codes of
/// two adjacent K-steps; nibbles sign-extend via shift pairs (even:
/// `<< 28 >> 28`, odd: `<< 24 >> 28`). Int4 groups are even, so both
/// K-steps of a byte row share one scale row.
///
/// # Safety
///
/// Caller must ensure AVX-512F is available; `bytes` holds at least
/// `ceil(x.len()/2) * NR` packed bytes, `scales` one row per group.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn gemv_int4_avx512(
    x: &[f32],
    bytes: &[u8],
    scales: &[f32],
    group: usize,
    acc: &mut [f32; NR],
) {
    use std::arch::x86_64::*;
    debug_assert!(bytes.len() >= x.len().div_ceil(2) * NR);
    // SAFETY: Byte-row loads are 16 bytes at `(kk/2) * NR`; scale loads
    // 64 bytes at the group row — in bounds per the layout contract.
    unsafe {
        let mut vacc = _mm512_loadu_ps(acc.as_ptr());
        let bp = bytes.as_ptr();
        let sp = scales.as_ptr();
        let k = x.len();
        let xp = x.as_ptr();
        let mut g0 = 0usize;
        let mut gi = 0usize;
        while g0 < k {
            let gend = (g0 + group).min(k);
            let s = _mm512_loadu_ps(sp.add(gi * NR));
            let mut kk = g0;
            while kk + 2 <= gend {
                let b = _mm_loadu_si128(bp.add((kk / 2) * NR).cast());
                let w32 = _mm512_cvtepu8_epi32(b);
                let we = _mm512_srai_epi32(_mm512_slli_epi32(w32, 28), 28);
                let wo = _mm512_srai_epi32(_mm512_slli_epi32(w32, 24), 28);
                let wve = _mm512_mul_ps(_mm512_cvtepi32_ps(we), s);
                let wvo = _mm512_mul_ps(_mm512_cvtepi32_ps(wo), s);
                vacc = _mm512_fmadd_ps(_mm512_set1_ps(*xp.add(kk)), wve, vacc);
                vacc = _mm512_fmadd_ps(_mm512_set1_ps(*xp.add(kk + 1)), wvo, vacc);
                kk += 2;
            }
            if kk < gend {
                // Odd trailing K-step (cannot occur for packed weights,
                // whose even group divides k — kept for robustness).
                let b = _mm_loadu_si128(bp.add((kk / 2) * NR).cast());
                let w32 = _mm512_cvtepu8_epi32(b);
                let we = _mm512_srai_epi32(_mm512_slli_epi32(w32, 28), 28);
                let wve = _mm512_mul_ps(_mm512_cvtepi32_ps(we), s);
                vacc = _mm512_fmadd_ps(_mm512_set1_ps(*xp.add(kk)), wve, vacc);
            }
            g0 = gend;
            gi += 1;
        }
        _mm512_storeu_ps(acc.as_mut_ptr(), vacc);
    }
}

/// AVX2+FMA fused-dequant Int4 GEMV (two 8-lane halves).
///
/// # Safety
///
/// Caller must ensure AVX2 and FMA are available; bounds as for
/// [`gemv_int4_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemv_int4_avx2(
    x: &[f32],
    bytes: &[u8],
    scales: &[f32],
    group: usize,
    acc: &mut [f32; NR],
) {
    use std::arch::x86_64::*;
    debug_assert!(bytes.len() >= x.len().div_ceil(2) * NR);
    // SAFETY: As for `gemv_int4_avx512`, split into ymm halves.
    unsafe {
        let mut lo = _mm256_loadu_ps(acc.as_ptr());
        let mut hi = _mm256_loadu_ps(acc.as_ptr().add(8));
        let bp = bytes.as_ptr();
        let sp = scales.as_ptr();
        let k = x.len();
        let xp = x.as_ptr();
        let mut g0 = 0usize;
        let mut gi = 0usize;
        while g0 < k {
            let gend = (g0 + group).min(k);
            let slo = _mm256_loadu_ps(sp.add(gi * NR));
            let shi = _mm256_loadu_ps(sp.add(gi * NR + 8));
            let mut kk = g0;
            while kk < gend {
                let b = _mm_loadu_si128(bp.add((kk / 2) * NR).cast());
                let blo = _mm256_cvtepu8_epi32(b);
                let bhi = _mm256_cvtepu8_epi32(_mm_srli_si128(b, 8));
                let elo = _mm256_srai_epi32(_mm256_slli_epi32(blo, 28), 28);
                let ehi = _mm256_srai_epi32(_mm256_slli_epi32(bhi, 28), 28);
                let ae = _mm256_set1_ps(*xp.add(kk));
                lo = _mm256_fmadd_ps(ae, _mm256_mul_ps(_mm256_cvtepi32_ps(elo), slo), lo);
                hi = _mm256_fmadd_ps(ae, _mm256_mul_ps(_mm256_cvtepi32_ps(ehi), shi), hi);
                if kk + 1 < gend {
                    let olo = _mm256_srai_epi32(_mm256_slli_epi32(blo, 24), 28);
                    let ohi = _mm256_srai_epi32(_mm256_slli_epi32(bhi, 24), 28);
                    let ao = _mm256_set1_ps(*xp.add(kk + 1));
                    lo = _mm256_fmadd_ps(ao, _mm256_mul_ps(_mm256_cvtepi32_ps(olo), slo), lo);
                    hi = _mm256_fmadd_ps(ao, _mm256_mul_ps(_mm256_cvtepi32_ps(ohi), shi), hi);
                }
                kk += 2;
            }
            g0 = gend;
            gi += 1;
        }
        _mm256_storeu_ps(acc.as_mut_ptr(), lo);
        _mm256_storeu_ps(acc.as_mut_ptr().add(8), hi);
    }
}

/// Dispatching fused-dequant BF16 GEMV.
#[inline]
pub fn gemv_bf16(x: &[f32], panel: &[Bf16], acc: &mut [f32; NR]) {
    match effective_simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level never exceeds the runtime-detected features.
        SimdLevel::Avx512 => unsafe { gemv_bf16_avx512(x, panel, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: As above.
        SimdLevel::Avx2Fma => unsafe { gemv_bf16_avx2(x, panel, acc) },
        _ => gemv_bf16_scalar(x, panel, acc),
    }
}

/// Dispatching fused-dequant Int8 GEMV.
#[inline]
pub fn gemv_int8(x: &[f32], bytes: &[u8], scales: &[f32], group: usize, acc: &mut [f32; NR]) {
    match effective_simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level never exceeds the runtime-detected features.
        SimdLevel::Avx512 => unsafe { gemv_int8_avx512(x, bytes, scales, group, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: As above.
        SimdLevel::Avx2Fma => unsafe { gemv_int8_avx2(x, bytes, scales, group, acc) },
        _ => gemv_int8_scalar(x, bytes, scales, group, acc),
    }
}

/// Dispatching fused-dequant Int4 GEMV.
#[inline]
pub fn gemv_int4(x: &[f32], bytes: &[u8], scales: &[f32], group: usize, acc: &mut [f32; NR]) {
    match effective_simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level never exceeds the runtime-detected features.
        SimdLevel::Avx512 => unsafe { gemv_int4_avx512(x, bytes, scales, group, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: As above.
        SimdLevel::Avx2Fma => unsafe { gemv_int4_avx2(x, bytes, scales, group, acc) },
        _ => gemv_int4_scalar(x, bytes, scales, group, acc),
    }
}

// ---------------------------------------------------------------------
// SIMD dequant-to-buffer (staging) helpers for the tiled GEMM path.
//
// The tiled kernel dequantizes one KC-block of a panel exactly once and
// reuses it for every activation row — that staging pass is where its
// dequant cost lives, so it gets the same in-register treatment. Every
// staged value is exactly `widen(code) * scale` (one IEEE mul), the
// same value the scalar staging produced, so the staged buffer is
// bitwise level-independent.
// ---------------------------------------------------------------------

/// Dequantizes BF16 K-steps `k0..k1` into `buf` (K-major, NR lanes).
pub fn stage_bf16(panel: &[Bf16], k0: usize, k1: usize, buf: &mut [f32]) {
    debug_assert!(buf.len() >= (k1 - k0) * NR);
    #[cfg(target_arch = "x86_64")]
    if effective_simd_level() >= SimdLevel::Avx2Fma {
        // SAFETY: AVX2 verified by the level check; bounds per the
        // debug assertion and the panel layout.
        unsafe { stage_bf16_avx2(panel, k0, k1, buf) };
        return;
    }
    for (dst, src) in buf[..(k1 - k0) * NR].iter_mut().zip(&panel[k0 * NR..k1 * NR]) {
        *dst = src.to_f32();
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn stage_bf16_avx2(panel: &[Bf16], k0: usize, k1: usize, buf: &mut [f32]) {
    use std::arch::x86_64::*;
    // SAFETY: Caller verified AVX2; each iteration reads one 16-lane
    // u16 row and writes one 16-lane f32 row, in bounds.
    unsafe {
        let wp = panel.as_ptr().cast::<u16>();
        let dp = buf.as_mut_ptr();
        for kk in k0..k1 {
            let h = _mm256_loadu_si256(wp.add(kk * NR).cast());
            let lo = _mm256_castsi256_ps(_mm256_slli_epi32(
                _mm256_cvtepu16_epi32(_mm256_castsi256_si128(h)),
                16,
            ));
            let hi = _mm256_castsi256_ps(_mm256_slli_epi32(
                _mm256_cvtepu16_epi32(_mm256_extracti128_si256(h, 1)),
                16,
            ));
            _mm256_storeu_ps(dp.add((kk - k0) * NR), lo);
            _mm256_storeu_ps(dp.add((kk - k0) * NR + 8), hi);
        }
    }
}

/// Dequantizes Int8 K-steps `k0..k1` into `buf` (K-major, NR lanes).
#[allow(clippy::needless_range_loop)]
pub fn stage_int8(bytes: &[u8], scales: &[f32], group: usize, k0: usize, k1: usize, buf: &mut [f32]) {
    debug_assert!(buf.len() >= (k1 - k0) * NR);
    #[cfg(target_arch = "x86_64")]
    if effective_simd_level() >= SimdLevel::Avx2Fma {
        // SAFETY: AVX2 verified by the level check; bounds per the
        // debug assertion and the panel layout.
        unsafe { stage_int8_avx2(bytes, scales, group, k0, k1, buf) };
        return;
    }
    for kk in k0..k1 {
        let srow = &scales[(kk / group) * NR..(kk / group) * NR + NR];
        let brow = &bytes[kk * NR..kk * NR + NR];
        let drow = &mut buf[(kk - k0) * NR..(kk - k0) * NR + NR];
        for j in 0..NR {
            drow[j] = (brow[j] as i8) as f32 * srow[j];
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn stage_int8_avx2(
    bytes: &[u8],
    scales: &[f32],
    group: usize,
    k0: usize,
    k1: usize,
    buf: &mut [f32],
) {
    use std::arch::x86_64::*;
    // SAFETY: Caller verified AVX2; loads/stores are one 16-lane row
    // per K-step, in bounds per the layout contract.
    unsafe {
        let bp = bytes.as_ptr();
        let sp = scales.as_ptr();
        let dp = buf.as_mut_ptr();
        for kk in k0..k1 {
            let codes = _mm_loadu_si128(bp.add(kk * NR).cast());
            let wlo = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(codes));
            let whi = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(codes, 8)));
            let slo = _mm256_loadu_ps(sp.add((kk / group) * NR));
            let shi = _mm256_loadu_ps(sp.add((kk / group) * NR + 8));
            _mm256_storeu_ps(dp.add((kk - k0) * NR), _mm256_mul_ps(wlo, slo));
            _mm256_storeu_ps(dp.add((kk - k0) * NR + 8), _mm256_mul_ps(whi, shi));
        }
    }
}

/// Dequantizes Int4 K-steps `k0..k1` into `buf` (K-major, NR lanes).
#[allow(clippy::needless_range_loop)]
pub fn stage_int4(bytes: &[u8], scales: &[f32], group: usize, k0: usize, k1: usize, buf: &mut [f32]) {
    debug_assert!(buf.len() >= (k1 - k0) * NR);
    #[cfg(target_arch = "x86_64")]
    if effective_simd_level() >= SimdLevel::Avx2Fma {
        // SAFETY: AVX2 verified by the level check; bounds per the
        // debug assertion and the panel layout.
        unsafe { stage_int4_avx2(bytes, scales, group, k0, k1, buf) };
        return;
    }
    for kk in k0..k1 {
        let srow = &scales[(kk / group) * NR..(kk / group) * NR + NR];
        let brow = &bytes[(kk / 2) * NR..(kk / 2) * NR + NR];
        let drow = &mut buf[(kk - k0) * NR..(kk - k0) * NR + NR];
        if kk % 2 == 0 {
            for j in 0..NR {
                let code = ((brow[j] & 0x0F) as i8) << 4 >> 4;
                drow[j] = code as f32 * srow[j];
            }
        } else {
            for j in 0..NR {
                let code = (brow[j] as i8) >> 4;
                drow[j] = code as f32 * srow[j];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn stage_int4_avx2(
    bytes: &[u8],
    scales: &[f32],
    group: usize,
    k0: usize,
    k1: usize,
    buf: &mut [f32],
) {
    use std::arch::x86_64::*;
    // SAFETY: Caller verified AVX2; byte-row loads are 16 bytes at
    // `(kk/2) * NR`, in bounds per the layout contract.
    unsafe {
        let bp = bytes.as_ptr();
        let sp = scales.as_ptr();
        let dp = buf.as_mut_ptr();
        for kk in k0..k1 {
            let b = _mm_loadu_si128(bp.add((kk / 2) * NR).cast());
            let blo = _mm256_cvtepu8_epi32(b);
            let bhi = _mm256_cvtepu8_epi32(_mm_srli_si128(b, 8));
            let (clo, chi) = if kk % 2 == 0 {
                (
                    _mm256_srai_epi32(_mm256_slli_epi32(blo, 28), 28),
                    _mm256_srai_epi32(_mm256_slli_epi32(bhi, 28), 28),
                )
            } else {
                (
                    _mm256_srai_epi32(_mm256_slli_epi32(blo, 24), 28),
                    _mm256_srai_epi32(_mm256_slli_epi32(bhi, 24), 28),
                )
            };
            let slo = _mm256_loadu_ps(sp.add((kk / group) * NR));
            let shi = _mm256_loadu_ps(sp.add((kk / group) * NR + 8));
            _mm256_storeu_ps(dp.add((kk - k0) * NR), _mm256_mul_ps(_mm256_cvtepi32_ps(clo), slo));
            _mm256_storeu_ps(
                dp.add((kk - k0) * NR + 8),
                _mm256_mul_ps(_mm256_cvtepi32_ps(chi), shi),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_tensor::rng::seeded;

    fn random_inputs(kb: usize, m: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = seeded(seed);
        let mut staged = vec![0.0f32; kb * NR];
        kt_tensor::rng::fill_uniform(&mut rng, &mut staged, 1.0);
        let a = (0..m)
            .map(|_| {
                let mut row = vec![0.0f32; kb];
                kt_tensor::rng::fill_uniform(&mut rng, &mut row, 1.0);
                row
            })
            .collect();
        (a, staged)
    }

    fn check_level<const M: usize>(level: SimdLevel, kb: usize, seed: u64) {
        if simd_level() < level {
            return; // feature not available on this host
        }
        let (a_rows, staged) = random_inputs(kb, M, seed);
        let a: [&[f32]; M] = std::array::from_fn(|i| a_rows[i].as_slice());
        let mut expect = [[0.1f32; NR]; M];
        let mut got = [[0.1f32; NR]; M];
        microkernel_scalar::<M>(a, &staged, kb, &mut expect);
        match level {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: guarded by the simd_level() check above.
            SimdLevel::Avx512 => unsafe {
                microkernel_avx512::<M>(a, &staged, kb, &mut got)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: guarded by the simd_level() check above.
            SimdLevel::Avx2Fma => unsafe {
                microkernel_avx2::<M>(a, &staged, kb, &mut got)
            },
            _ => microkernel_scalar::<M>(a, &staged, kb, &mut got),
        }
        for i in 0..M {
            for j in 0..NR {
                let e = expect[i][j];
                let g = got[i][j];
                // FMA changes rounding; tolerance scales with kb.
                assert!(
                    (e - g).abs() <= 1e-5 * (kb as f32) * e.abs().max(1.0),
                    "{level:?} M={M} kb={kb} [{i}][{j}]: {e} vs {g}"
                );
            }
        }
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(simd_level(), simd_level());
    }

    #[test]
    fn avx512_matches_scalar() {
        for kb in [1usize, 3, 17, 256] {
            check_level::<1>(SimdLevel::Avx512, kb, 1);
            check_level::<2>(SimdLevel::Avx512, kb, 2);
            check_level::<4>(SimdLevel::Avx512, kb, 3);
        }
    }

    #[test]
    fn avx2_matches_scalar() {
        for kb in [1usize, 5, 64] {
            check_level::<1>(SimdLevel::Avx2Fma, kb, 4);
            check_level::<3>(SimdLevel::Avx2Fma, kb, 5);
            check_level::<4>(SimdLevel::Avx2Fma, kb, 6);
        }
    }

    #[test]
    fn dispatcher_accumulates_into_existing_tiles() {
        let (a_rows, staged) = random_inputs(8, 2, 7);
        let a: [&[f32]; 2] = [a_rows[0].as_slice(), a_rows[1].as_slice()];
        let mut acc = [[1.0f32; NR]; 2];
        microkernel::<2>(a, &staged, 8, &mut acc);
        let mut fresh = [[0.0f32; NR]; 2];
        microkernel::<2>(a, &staged, 8, &mut fresh);
        for i in 0..2 {
            for j in 0..NR {
                assert!((acc[i][j] - fresh[i][j] - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn zero_kb_is_identity() {
        let (a_rows, staged) = random_inputs(4, 1, 8);
        let a: [&[f32]; 1] = [a_rows[0].as_slice()];
        let mut acc = [[2.5f32; NR]; 1];
        microkernel::<1>(a, &staged, 0, &mut acc);
        assert!(acc[0].iter().all(|&v| v == 2.5));
    }

    #[test]
    fn forced_level_caps_at_detected_and_restores() {
        let detected = simd_level();
        assert_eq!(effective_simd_level(), detected);
        with_forced_simd_level(SimdLevel::Scalar, || {
            assert_eq!(effective_simd_level(), SimdLevel::Scalar);
            with_forced_simd_level(SimdLevel::Avx512, || {
                // Forcing above the host level clamps to detected.
                assert_eq!(effective_simd_level(), SimdLevel::Avx512.min(detected));
            });
            assert_eq!(effective_simd_level(), SimdLevel::Scalar);
        });
        assert_eq!(effective_simd_level(), detected);
    }

    /// Random quantized panel material: codes for `k` K-steps (Int8
    /// layout k*NR bytes, Int4 ceil(k/2)*NR), scales per group row.
    fn quant_fixture(k: usize, group: usize, seed: u64) -> (Vec<f32>, Vec<u8>, Vec<f32>) {
        let mut rng = seeded(seed);
        let mut x = vec![0.0f32; k];
        kt_tensor::rng::fill_uniform(&mut rng, &mut x, 1.0);
        let mut raw = vec![0.0f32; k * NR];
        kt_tensor::rng::fill_uniform(&mut rng, &mut raw, 128.0);
        let bytes: Vec<u8> = raw.iter().map(|&v| v as i32 as u8).collect();
        let groups = k.div_ceil(group);
        let mut scales = vec![0.0f32; groups * NR];
        kt_tensor::rng::fill_uniform(&mut rng, &mut scales, 0.1);
        (x, bytes, scales)
    }

    fn assert_acc_bits_eq(a: &[f32; NR], b: &[f32; NR], what: &str) {
        for j in 0..NR {
            assert_eq!(
                a[j].to_bits(),
                b[j].to_bits(),
                "{what} lane {j}: {} vs {}",
                a[j],
                b[j]
            );
        }
    }

    #[test]
    fn fused_dequant_gemv_bitwise_matches_scalar_at_every_level() {
        for level in [SimdLevel::Scalar, SimdLevel::Avx2Fma, SimdLevel::Avx512] {
            if simd_level() < level {
                continue;
            }
            for (k, group) in [(8usize, 8usize), (16, 8), (64, 16), (96, 32), (24, 8)] {
                let (x, bytes, scales) = quant_fixture(k, group, 11 + k as u64);
                let halves: Vec<Bf16> = x.iter().map(|&v| Bf16::from_f32(v * 3.0)).collect();
                let panel: Vec<Bf16> = (0..k * NR).map(|i| halves[i % k]).collect();

                let mut want = [0.25f32; NR];
                gemv_int8_scalar(&x, &bytes, &scales, group, &mut want);
                let mut got = [0.25f32; NR];
                with_forced_simd_level(level, || gemv_int8(&x, &bytes, &scales, group, &mut got));
                assert_acc_bits_eq(&want, &got, &format!("int8 {level:?} k={k} g={group}"));

                let mut want = [-0.5f32; NR];
                gemv_int4_scalar(&x, &bytes, &scales, group, &mut want);
                let mut got = [-0.5f32; NR];
                with_forced_simd_level(level, || gemv_int4(&x, &bytes, &scales, group, &mut got));
                assert_acc_bits_eq(&want, &got, &format!("int4 {level:?} k={k} g={group}"));

                let mut want = [1.5f32; NR];
                gemv_bf16_scalar(&x, &panel, &mut want);
                let mut got = [1.5f32; NR];
                with_forced_simd_level(level, || gemv_bf16(&x, &panel, &mut got));
                assert_acc_bits_eq(&want, &got, &format!("bf16 {level:?} k={k}"));
            }
        }
    }

    #[test]
    fn staged_dequant_bitwise_matches_scalar_at_every_level() {
        let k = 64usize;
        let group = 16usize;
        let (x, bytes, scales) = quant_fixture(k, group, 99);
        let panel: Vec<Bf16> = x
            .iter()
            .cycle()
            .take(k * NR)
            .map(|&v| Bf16::from_f32(v))
            .collect();
        for (k0, k1) in [(0usize, k), (16, 48), (8, 24)] {
            let mut want = vec![0.0f32; (k1 - k0) * NR];
            with_forced_simd_level(SimdLevel::Scalar, || {
                stage_int8(&bytes, &scales, group, k0, k1, &mut want)
            });
            for level in [SimdLevel::Avx2Fma, SimdLevel::Avx512] {
                if simd_level() < level {
                    continue;
                }
                let mut got = vec![f32::NAN; (k1 - k0) * NR];
                with_forced_simd_level(level, || {
                    stage_int8(&bytes, &scales, group, k0, k1, &mut got)
                });
                assert!(
                    want.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "stage_int8 {level:?} [{k0},{k1})"
                );
            }

            let mut want4 = vec![0.0f32; (k1 - k0) * NR];
            with_forced_simd_level(SimdLevel::Scalar, || {
                stage_int4(&bytes, &scales, group, k0, k1, &mut want4)
            });
            let mut wantb = vec![0.0f32; (k1 - k0) * NR];
            with_forced_simd_level(SimdLevel::Scalar, || stage_bf16(&panel, k0, k1, &mut wantb));
            for level in [SimdLevel::Avx2Fma, SimdLevel::Avx512] {
                if simd_level() < level {
                    continue;
                }
                let mut got4 = vec![f32::NAN; (k1 - k0) * NR];
                with_forced_simd_level(level, || {
                    stage_int4(&bytes, &scales, group, k0, k1, &mut got4)
                });
                assert!(
                    want4.iter().zip(&got4).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "stage_int4 {level:?} [{k0},{k1})"
                );
                let mut gotb = vec![f32::NAN; (k1 - k0) * NR];
                with_forced_simd_level(level, || stage_bf16(&panel, k0, k1, &mut gotb));
                assert!(
                    wantb.iter().zip(&gotb).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "stage_bf16 {level:?} [{k0},{k1})"
                );
            }
        }
    }
}
