//! SIMD microkernels with runtime feature detection.
//!
//! The packed layout's [`kt_tensor::NR`] = 16 panel width was chosen to
//! match one AMX tile row — and it is also exactly one AVX-512 `zmm`
//! register of `f32`, or two AVX2 `ymm` registers. These microkernels
//! exploit that: per K-step they broadcast one activation, load the
//! staged 16-wide weight row and issue fused multiply-adds into
//! register-resident accumulator tiles, which is precisely the inner
//! loop of the paper's §3.2 kernels.
//!
//! Dispatch is by runtime detection (cached), with the portable scalar
//! kernel as both the fallback and the golden reference; results differ
//! from scalar only by FMA rounding.

use kt_tensor::NR;
use std::sync::OnceLock;

/// Available instruction level, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar fallback.
    Scalar,
    /// AVX2 + FMA (two 8-lane registers per panel row).
    Avx2Fma,
    /// AVX-512F (one 16-lane register per panel row).
    Avx512,
}

/// Detects the best available level (cached after first call).
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2Fma;
            }
        }
        SimdLevel::Scalar
    })
}

/// Portable scalar microkernel (the golden reference): accumulates `M`
/// activation rows against one staged K-major panel block.
#[allow(clippy::needless_range_loop)] // fixed-trip loops vectorize best
#[inline]
pub fn microkernel_scalar<const M: usize>(
    a: [&[f32]; M],
    staged: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; M],
) {
    for kk in 0..kb {
        let wrow = &staged[kk * NR..kk * NR + NR];
        for i in 0..M {
            let ai = a[i][kk];
            let t = &mut acc[i];
            for j in 0..NR {
                t[j] += ai * wrow[j];
            }
        }
    }
}

/// AVX-512 microkernel: one `zmm` register per accumulator row.
///
/// # Safety
///
/// Callers must ensure AVX-512F is available (checked via
/// [`simd_level`]). Slice bounds are enforced by the debug assertions
/// and the loop structure: `staged` holds at least `kb * NR` values and
/// every `a[i]` at least `kb`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn microkernel_avx512<const M: usize>(
    a: [&[f32]; M],
    staged: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; M],
) {
    use std::arch::x86_64::*;
    debug_assert!(staged.len() >= kb * NR);
    for row in a.iter().take(M) {
        debug_assert!(row.len() >= kb);
    }
    // SAFETY: All pointer arithmetic stays within the slices per the
    // debug assertions above; NR == 16 matches one __m512 of f32.
    unsafe {
        let mut vacc = [_mm512_setzero_ps(); M];
        for (i, t) in acc.iter().enumerate().take(M) {
            vacc[i] = _mm512_loadu_ps(t.as_ptr());
        }
        let sp = staged.as_ptr();
        for kk in 0..kb {
            let w = _mm512_loadu_ps(sp.add(kk * NR));
            for i in 0..M {
                let ai = _mm512_set1_ps(*a[i].as_ptr().add(kk));
                vacc[i] = _mm512_fmadd_ps(ai, w, vacc[i]);
            }
        }
        for (i, t) in acc.iter_mut().enumerate().take(M) {
            _mm512_storeu_ps(t.as_mut_ptr(), vacc[i]);
        }
    }
}

/// AVX2+FMA microkernel: two `ymm` registers per accumulator row.
///
/// # Safety
///
/// Callers must ensure AVX2 and FMA are available (checked via
/// [`simd_level`]); bounds as for [`microkernel_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn microkernel_avx2<const M: usize>(
    a: [&[f32]; M],
    staged: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; M],
) {
    use std::arch::x86_64::*;
    debug_assert!(staged.len() >= kb * NR);
    // SAFETY: As for `microkernel_avx512`; NR == 16 == 2 x __m256.
    unsafe {
        let mut lo = [_mm256_setzero_ps(); M];
        let mut hi = [_mm256_setzero_ps(); M];
        for i in 0..M {
            lo[i] = _mm256_loadu_ps(acc[i].as_ptr());
            hi[i] = _mm256_loadu_ps(acc[i].as_ptr().add(8));
        }
        let sp = staged.as_ptr();
        for kk in 0..kb {
            let wlo = _mm256_loadu_ps(sp.add(kk * NR));
            let whi = _mm256_loadu_ps(sp.add(kk * NR + 8));
            for i in 0..M {
                let ai = _mm256_set1_ps(*a[i].as_ptr().add(kk));
                lo[i] = _mm256_fmadd_ps(ai, wlo, lo[i]);
                hi[i] = _mm256_fmadd_ps(ai, whi, hi[i]);
            }
        }
        for i in 0..M {
            _mm256_storeu_ps(acc[i].as_mut_ptr(), lo[i]);
            _mm256_storeu_ps(acc[i].as_mut_ptr().add(8), hi[i]);
        }
    }
}

/// Dispatching microkernel: picks the best detected implementation.
#[inline]
pub fn microkernel<const M: usize>(
    a: [&[f32]; M],
    staged: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; M],
) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 =>
        // SAFETY: `simd_level` verified AVX-512F support at runtime.
        unsafe { microkernel_avx512::<M>(a, staged, kb, acc) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma =>
        // SAFETY: `simd_level` verified AVX2+FMA support at runtime.
        unsafe { microkernel_avx2::<M>(a, staged, kb, acc) },
        _ => microkernel_scalar::<M>(a, staged, kb, acc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_tensor::rng::seeded;

    fn random_inputs(kb: usize, m: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = seeded(seed);
        let mut staged = vec![0.0f32; kb * NR];
        kt_tensor::rng::fill_uniform(&mut rng, &mut staged, 1.0);
        let a = (0..m)
            .map(|_| {
                let mut row = vec![0.0f32; kb];
                kt_tensor::rng::fill_uniform(&mut rng, &mut row, 1.0);
                row
            })
            .collect();
        (a, staged)
    }

    fn check_level<const M: usize>(level: SimdLevel, kb: usize, seed: u64) {
        if simd_level() < level {
            return; // feature not available on this host
        }
        let (a_rows, staged) = random_inputs(kb, M, seed);
        let a: [&[f32]; M] = std::array::from_fn(|i| a_rows[i].as_slice());
        let mut expect = [[0.1f32; NR]; M];
        let mut got = [[0.1f32; NR]; M];
        microkernel_scalar::<M>(a, &staged, kb, &mut expect);
        match level {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: guarded by the simd_level() check above.
            SimdLevel::Avx512 => unsafe {
                microkernel_avx512::<M>(a, &staged, kb, &mut got)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: guarded by the simd_level() check above.
            SimdLevel::Avx2Fma => unsafe {
                microkernel_avx2::<M>(a, &staged, kb, &mut got)
            },
            _ => microkernel_scalar::<M>(a, &staged, kb, &mut got),
        }
        for i in 0..M {
            for j in 0..NR {
                let e = expect[i][j];
                let g = got[i][j];
                // FMA changes rounding; tolerance scales with kb.
                assert!(
                    (e - g).abs() <= 1e-5 * (kb as f32) * e.abs().max(1.0),
                    "{level:?} M={M} kb={kb} [{i}][{j}]: {e} vs {g}"
                );
            }
        }
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(simd_level(), simd_level());
    }

    #[test]
    fn avx512_matches_scalar() {
        for kb in [1usize, 3, 17, 256] {
            check_level::<1>(SimdLevel::Avx512, kb, 1);
            check_level::<2>(SimdLevel::Avx512, kb, 2);
            check_level::<4>(SimdLevel::Avx512, kb, 3);
        }
    }

    #[test]
    fn avx2_matches_scalar() {
        for kb in [1usize, 5, 64] {
            check_level::<1>(SimdLevel::Avx2Fma, kb, 4);
            check_level::<3>(SimdLevel::Avx2Fma, kb, 5);
            check_level::<4>(SimdLevel::Avx2Fma, kb, 6);
        }
    }

    #[test]
    fn dispatcher_accumulates_into_existing_tiles() {
        let (a_rows, staged) = random_inputs(8, 2, 7);
        let a: [&[f32]; 2] = [a_rows[0].as_slice(), a_rows[1].as_slice()];
        let mut acc = [[1.0f32; NR]; 2];
        microkernel::<2>(a, &staged, 8, &mut acc);
        let mut fresh = [[0.0f32; NR]; 2];
        microkernel::<2>(a, &staged, 8, &mut fresh);
        for i in 0..2 {
            for j in 0..NR {
                assert!((acc[i][j] - fresh[i][j] - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn zero_kb_is_identity() {
        let (a_rows, staged) = random_inputs(4, 1, 8);
        let a: [&[f32]; 1] = [a_rows[0].as_slice()];
        let mut acc = [[2.5f32; NR]; 1];
        microkernel::<1>(a, &staged, 0, &mut acc);
        assert!(acc[0].iter().all(|&v| v == 2.5));
    }
}
