//! Tiled ("AMX-class") GEMM and lightweight ("AVX-512-class") GEMV.
//!
//! Both kernels consume the packed tile-major weight layout from
//! `kt-tensor` and implement the execution process of Figure 6:
//!
//! 1. The weight matrix is vertically partitioned into **panel tasks**
//!    ([`kt_tensor::NR`] output neurons each) that are dynamically
//!    scheduled across threads.
//! 2. Each task walks the reduction dimension in **L2-sized blocks**
//!    ([`KC`] K-steps), staging (dequantizing) the packed weights for
//!    the block exactly once.
//! 3. Within a block, a register-blocked **microkernel** processes
//!    [`MR`] activation rows at a time against the 16-wide panel,
//!    accumulating into local tiles before spilling to the output.
//!
//! The vector kernel reuses the identical packed bytes but decodes them
//! inline per K-step with no staging or M-padding — the paper's
//! "lightweight AVX-512 kernel fully compatible with the AMX memory
//! layout", which wins whenever tokens-per-expert is small (Figure 7).

use kt_tensor::{Matrix, PackedWeights, WeightDtype, NR};

use crate::error::KernelError;
use crate::schedule::ThreadPool;

/// Activation rows processed per microkernel invocation.
pub const MR: usize = 4;

/// K-steps per cache block (staging granularity); `KC * NR * 4` bytes of
/// staged weights (16 KiB) plus `MR * KC` activations fit comfortably in
/// a per-core L2.
pub const KC: usize = 256;

/// Shared mutable output pointer for disjoint-column panel writes.
///
/// Panels write non-overlapping column ranges of the output matrix, so
/// concurrent use is race-free by construction.
#[derive(Clone, Copy)]
pub(crate) struct OutPtr(pub(crate) *mut f32);
// SAFETY: Each panel task touches a disjoint set of output columns (its
// own `p * NR ..` lanes), so no two threads write the same element.
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

/// Stages (decodes to f32) K-steps `k0..k1` of panel `p` into `buf`,
/// K-major: `buf[(kk - k0) * NR + j]`.
///
/// Quantized dtypes route through the SIMD staging helpers in
/// [`crate::simd`]; each staged value is the same `widen(code) * scale`
/// the scalar decode produces, so staged buffers — and hence tiled GEMM
/// outputs — are bitwise independent of the SIMD level.
fn stage_panel(w: &PackedWeights, p: usize, k0: usize, k1: usize, buf: &mut [f32]) {
    debug_assert!(buf.len() >= (k1 - k0) * NR);
    match w.dtype() {
        WeightDtype::F32 => {
            let panel = w.panel_f32(p);
            buf[..(k1 - k0) * NR].copy_from_slice(&panel[k0 * NR..k1 * NR]);
        }
        WeightDtype::Bf16 => simd::stage_bf16(w.panel_bf16(p), k0, k1, buf),
        WeightDtype::Int8 { group } => {
            simd::stage_int8(w.panel_bytes(p), w.panel_scales(p), group, k0, k1, buf);
        }
        WeightDtype::Int4 { group } => {
            simd::stage_int4(w.panel_bytes(p), w.panel_scales(p), group, k0, k1, buf);
        }
    }
}

use crate::simd::{self, microkernel};

/// Executes panel `p` with the given kernel class, writing output
/// columns `p*NR .. p*NR+valid` of an `a.rows() x out_cols` output.
///
/// This is the task granule of the fused MoE operator: one (expert
/// matrix, panel) pair, dispatched dynamically across worker threads.
#[allow(clippy::needless_range_loop)]
pub(crate) fn run_panel(
    a: &Matrix,
    w: &PackedWeights,
    out: OutPtr,
    out_cols: usize,
    p: usize,
    class: crate::dispatch::KernelClass,
) {
    match class {
        crate::dispatch::KernelClass::Tiled => panel_task(a, w, out, out_cols, p),
        crate::dispatch::KernelClass::Vector => {
            let valid = NR.min(w.n() - p * NR);
            for i in 0..a.rows() {
                let acc = gemv_panel(a.row(i), w, p);
                // SAFETY: Panel tasks own disjoint output columns; row
                // `i < a.rows()` is in bounds of the output matrix.
                unsafe {
                    let dst = out.0.add(i * out_cols + p * NR);
                    for j in 0..valid {
                        *dst.add(j) = acc[j];
                    }
                }
            }
        }
    }
}

/// Executes one panel task of the tiled GEMM: all M rows, all K blocks,
/// writing output columns `p*NR .. p*NR+valid`.
#[allow(clippy::needless_range_loop)] // raw-pointer writes, see SAFETY
fn panel_task(a: &Matrix, w: &PackedWeights, out: OutPtr, out_cols: usize, p: usize) {
    let m = a.rows();
    let k = a.cols();
    let valid = NR.min(w.n() - p * NR);
    let mut staged = [0.0f32; KC * NR];

    // Accumulators spill into the output; zero our columns first.
    for i in 0..m {
        // SAFETY: `out` points to an `m x out_cols` matrix that outlives
        // this call; this task exclusively owns columns
        // `p*NR .. p*NR+valid` (see `OutPtr`).
        unsafe {
            let row = out.0.add(i * out_cols + p * NR);
            std::ptr::write_bytes(row, 0, valid);
        }
    }

    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KC).min(k);
        let kb = k1 - k0;
        stage_panel(w, p, k0, k1, &mut staged);

        let mut i = 0;
        while i < m {
            let mb = MR.min(m - i);
            let mut acc = [[0.0f32; NR]; MR];
            match mb {
                4 => microkernel::<4>(
                    [
                        &a.row(i)[k0..k1],
                        &a.row(i + 1)[k0..k1],
                        &a.row(i + 2)[k0..k1],
                        &a.row(i + 3)[k0..k1],
                    ],
                    &staged,
                    kb,
                    (&mut acc[..4]).try_into().unwrap(),
                ),
                3 => microkernel::<3>(
                    [
                        &a.row(i)[k0..k1],
                        &a.row(i + 1)[k0..k1],
                        &a.row(i + 2)[k0..k1],
                    ],
                    &staged,
                    kb,
                    (&mut acc[..3]).try_into().unwrap(),
                ),
                2 => microkernel::<2>(
                    [&a.row(i)[k0..k1], &a.row(i + 1)[k0..k1]],
                    &staged,
                    kb,
                    (&mut acc[..2]).try_into().unwrap(),
                ),
                _ => microkernel::<1>(
                    [&a.row(i)[k0..k1]],
                    &staged,
                    kb,
                    (&mut acc[..1]).try_into().unwrap(),
                ),
            }
            for (r, tile) in acc.iter().enumerate().take(mb) {
                // SAFETY: As above — exclusive column ownership; row
                // index `i + r < m` by the loop bounds.
                unsafe {
                    let row = out.0.add((i + r) * out_cols + p * NR);
                    for j in 0..valid {
                        *row.add(j) += tile[j];
                    }
                }
            }
            i += mb;
        }
        k0 = k1;
    }
}

/// Tiled GEMM: `out = a * w^T` (`a`: `m x k`, `w`: packed `n x k`,
/// `out`: `m x n`), parallelized over panel tasks.
///
/// # Errors
///
/// Returns [`KernelError::Shape`] when `a.cols() != w.k()` or `out` has
/// the wrong shape.
pub fn gemm_tiled(
    a: &Matrix,
    w: &PackedWeights,
    out: &mut Matrix,
    pool: Option<&ThreadPool>,
) -> Result<(), KernelError> {
    check_shapes(a, w, out)?;
    let out_cols = out.cols();
    let outp = OutPtr(out.as_mut_slice().as_mut_ptr());
    let n_panels = w.n_panels();
    match pool {
        Some(pool) => pool.run_dynamic(n_panels, |p| panel_task(a, w, outp, out_cols, p)),
        None => {
            for p in 0..n_panels {
                panel_task(a, w, outp, out_cols, p);
            }
        }
    }
    Ok(())
}

/// Vector kernel: `y = w * x` for a single activation row, decoding the
/// packed weights inline with no staging or M-padding.
///
/// # Errors
///
/// Returns [`KernelError::Shape`] when `x.len() != w.k()` or
/// `y.len() != w.n()`.
#[allow(clippy::needless_range_loop)] // raw-pointer writes, see SAFETY
pub fn gemv_vector(
    x: &[f32],
    w: &PackedWeights,
    y: &mut [f32],
    pool: Option<&ThreadPool>,
) -> Result<(), KernelError> {
    if x.len() != w.k() {
        return Err(KernelError::shape(format!(
            "gemv: x.len()={} but w.k()={}",
            x.len(),
            w.k()
        )));
    }
    if y.len() != w.n() {
        return Err(KernelError::shape(format!(
            "gemv: y.len()={} but w.n()={}",
            y.len(),
            w.n()
        )));
    }
    let yp = OutPtr(y.as_mut_ptr());
    let n = w.n();
    let task = |p: usize| {
        // Force-capture the whole OutPtr (which is Sync) rather than its
        // raw `*mut f32` field — edition-2021 closures capture disjoint
        // fields otherwise, and a bare `*mut` is not Sync.
        #[allow(clippy::redundant_locals)]
        let yp = yp;
        let acc = gemv_panel(x, w, p);
        let valid = NR.min(n - p * NR);
        // SAFETY: Panel tasks own disjoint `y` ranges (`p*NR..`).
        unsafe {
            let dst = yp.0.add(p * NR);
            for j in 0..valid {
                *dst.add(j) = acc[j];
            }
        }
    };
    match pool {
        Some(pool) => pool.run_dynamic(w.n_panels(), task),
        None => {
            for p in 0..w.n_panels() {
                task(p);
            }
        }
    }
    Ok(())
}

/// Computes the 16 partial outputs of panel `p` for activation `x`,
/// fusing per-dtype weight decode into the SIMD accumulation.
///
/// Bf16/Int8/Int4 use the fused-dequant kernels from [`crate::simd`]
/// (codes widened in-register, group scale folded into the FMA), which
/// are bitwise identical across SIMD levels; F32 reuses the staged-form
/// microkernel directly.
fn gemv_panel(x: &[f32], w: &PackedWeights, p: usize) -> [f32; NR] {
    let mut acc = [0.0f32; NR];
    match w.dtype() {
        WeightDtype::F32 => {
            // The f32 panel is already in staged (K-major) form, so the
            // SIMD microkernel applies directly with M = 1.
            let panel = w.panel_f32(p);
            let mut tile = [[0.0f32; NR]; 1];
            microkernel::<1>([x], panel, x.len(), &mut tile);
            acc = tile[0];
        }
        WeightDtype::Bf16 => simd::gemv_bf16(x, w.panel_bf16(p), &mut acc),
        WeightDtype::Int8 { group } => {
            simd::gemv_int8(x, w.panel_bytes(p), w.panel_scales(p), group, &mut acc);
        }
        WeightDtype::Int4 { group } => {
            simd::gemv_int4(x, w.panel_bytes(p), w.panel_scales(p), group, &mut acc);
        }
    }
    acc
}

/// Hybrid dispatch: uses the vector kernel when `a.rows()` is at or
/// below the arithmetic-intensity crossover, the tiled kernel otherwise
/// (§3.2, Figure 7).
///
/// # Examples
///
/// ```
/// use kt_kernels::gemm::gemm_auto;
/// use kt_tensor::{Matrix, PackedWeights, WeightDtype};
///
/// let a = Matrix::from_rows(1, 2, &[1.0, 2.0]).unwrap();
/// let w = Matrix::from_rows(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
/// let packed = PackedWeights::pack(&w, WeightDtype::F32).unwrap();
/// let mut out = Matrix::zeros(1, 3).unwrap();
/// gemm_auto(&a, &packed, &mut out, None).unwrap();
/// assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
/// ```
///
/// # Errors
///
/// Propagates shape errors from the selected kernel.
pub fn gemm_auto(
    a: &Matrix,
    w: &PackedWeights,
    out: &mut Matrix,
    pool: Option<&ThreadPool>,
) -> Result<(), KernelError> {
    check_shapes(a, w, out)?;
    if a.rows() <= crate::dispatch::ARI_CROSSOVER {
        for i in 0..a.rows() {
            // Borrow-splitting: rows of `out` are disjoint.
            let out_cols = out.cols();
            let row =
                &mut out.as_mut_slice()[i * out_cols..(i + 1) * out_cols];
            gemv_vector(a.row(i), w, row, pool)?;
        }
        Ok(())
    } else {
        gemm_tiled(a, w, out, pool)
    }
}

/// Row-stable GEMM: every output row is computed by the vector kernel
/// regardless of how many rows the batch holds, so row `i` of `out` is
/// a function of row `i` of `a` **only** — bit-for-bit independent of
/// the batch composition, for every dtype and every `k`.
///
/// `gemm_auto` cannot promise this in general: its gemv/tiled dispatch
/// flips at the arithmetic-intensity crossover, and the two kernel
/// classes only agree bitwise for f32 weights whose `k` fits a single
/// tiled k-block. Position-dependent computations that must be
/// invariant under re-chunking (attention projections, the LM head —
/// the chunked-prefill contract) use this entry point; throughput-bound
/// batch work (expert FFNs) keeps the hybrid dispatch.
///
/// # Errors
///
/// Returns [`KernelError::Shape`] on the same mismatches as
/// [`gemm_auto`].
pub fn gemm_rowwise(
    a: &Matrix,
    w: &PackedWeights,
    out: &mut Matrix,
    pool: Option<&ThreadPool>,
) -> Result<(), KernelError> {
    check_shapes(a, w, out)?;
    let out_cols = out.cols();
    for i in 0..a.rows() {
        // Borrow-splitting: rows of `out` are disjoint.
        let row = &mut out.as_mut_slice()[i * out_cols..(i + 1) * out_cols];
        gemv_vector(a.row(i), w, row, pool)?;
    }
    Ok(())
}

fn check_shapes(a: &Matrix, w: &PackedWeights, out: &Matrix) -> Result<(), KernelError> {
    if a.cols() != w.k() {
        return Err(KernelError::shape(format!(
            "a is {}x{} but w.k()={}",
            a.rows(),
            a.cols(),
            w.k()
        )));
    }
    if out.rows() != a.rows() || out.cols() != w.n() {
        return Err(KernelError::shape(format!(
            "out is {}x{} but expected {}x{}",
            out.rows(),
            out.cols(),
            a.rows(),
            w.n()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_tensor::rng::seeded;

    fn dtypes() -> Vec<(WeightDtype, f32)> {
        vec![
            (WeightDtype::F32, 1e-4),
            (WeightDtype::Bf16, 2e-2),
            (WeightDtype::Int8 { group: 32 }, 2e-2),
            (WeightDtype::Int4 { group: 32 }, 2e-1),
        ]
    }

    /// Golden check: optimized kernel vs dequantized reference matmul.
    fn check_gemm(m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = seeded(seed);
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng).unwrap();
        let wmat = Matrix::random_uniform(n, k, 1.0, &mut rng).unwrap();
        for (dt, _tol) in dtypes() {
            let w = PackedWeights::pack(&wmat, dt).unwrap();
            // Reference on the *dequantized* weights so only kernel
            // arithmetic (not quantization) is under test.
            let wref = w.unpack();
            let expect = a.matmul_wt(&wref).unwrap();
            let mut out = Matrix::zeros(m, n).unwrap();
            gemm_tiled(&a, &w, &mut out, None).unwrap();
            let err = expect.relative_error(&out);
            assert!(err < 1e-4, "tiled {dt:?} m={m} n={n} k={k} err={err}");

            let mut out2 = Matrix::zeros(m, n).unwrap();
            gemm_auto(&a, &w, &mut out2, None).unwrap();
            let err2 = expect.relative_error(&out2);
            assert!(err2 < 1e-4, "auto {dt:?} err={err2}");
        }
    }

    #[test]
    fn gemm_matches_reference_small() {
        check_gemm(1, 16, 32, 1);
        check_gemm(3, 17, 64, 2);
        check_gemm(4, 16, 32, 3);
    }

    #[test]
    fn gemm_matches_reference_odd_shapes() {
        check_gemm(5, 33, 96, 4);
        check_gemm(7, 48, 160, 5);
        check_gemm(13, 31, 320, 6); // K spans multiple KC? (no, KC=256: 320 does)
    }

    #[test]
    fn gemm_handles_multiple_k_blocks() {
        check_gemm(6, 32, 2 * KC + 64, 7);
    }

    #[test]
    fn gemv_matches_tiled_for_single_row() {
        let mut rng = seeded(8);
        let k = 128;
        let n = 48;
        let a = Matrix::random_uniform(1, k, 1.0, &mut rng).unwrap();
        let wmat = Matrix::random_uniform(n, k, 1.0, &mut rng).unwrap();
        for (dt, _) in dtypes() {
            let w = PackedWeights::pack(&wmat, dt).unwrap();
            let mut tiled = Matrix::zeros(1, n).unwrap();
            gemm_tiled(&a, &w, &mut tiled, None).unwrap();
            let mut y = vec![0.0f32; n];
            gemv_vector(a.row(0), &w, &mut y, None).unwrap();
            for (x, t) in y.iter().zip(tiled.row(0)) {
                assert!((x - t).abs() <= 1e-3 * t.abs().max(1.0), "{dt:?}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = seeded(9);
        let a = Matrix::random_uniform(9, 384, 1.0, &mut rng).unwrap();
        let wmat = Matrix::random_uniform(100, 384, 1.0, &mut rng).unwrap();
        let w = PackedWeights::pack(&wmat, WeightDtype::Int8 { group: 64 }).unwrap();
        let pool = ThreadPool::new(4).unwrap();
        let mut serial = Matrix::zeros(9, 100).unwrap();
        let mut parallel = Matrix::zeros(9, 100).unwrap();
        gemm_tiled(&a, &w, &mut serial, None).unwrap();
        gemm_tiled(&a, &w, &mut parallel, Some(&pool)).unwrap();
        assert_eq!(serial.as_slice(), parallel.as_slice());

        let mut ys = vec![0.0f32; 100];
        let mut yp = vec![0.0f32; 100];
        gemv_vector(a.row(0), &w, &mut ys, None).unwrap();
        gemv_vector(a.row(0), &w, &mut yp, Some(&pool)).unwrap();
        assert_eq!(ys, yp);
    }

    #[test]
    fn rowwise_is_batch_invariant_bitwise() {
        // The whole point of `gemm_rowwise`: row i of a 13-row batch
        // carries exactly the bits of the same row computed alone, for
        // every dtype — including the multi-k-block and quantized cases
        // where gemv and tiled kernels legitimately disagree.
        let mut rng = seeded(11);
        let m = 13;
        let n = 48;
        let k = 2 * KC + 64;
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng).unwrap();
        let wmat = Matrix::random_uniform(n, k, 1.0, &mut rng).unwrap();
        for (dt, _) in dtypes() {
            let w = PackedWeights::pack(&wmat, dt).unwrap();
            let mut batch = Matrix::zeros(m, n).unwrap();
            gemm_rowwise(&a, &w, &mut batch, None).unwrap();
            // Against each row alone, and against direct gemv.
            for i in 0..m {
                let one = Matrix::from_rows(1, k, a.row(i)).unwrap();
                let mut alone = Matrix::zeros(1, n).unwrap();
                gemm_rowwise(&one, &w, &mut alone, None).unwrap();
                assert_eq!(batch.row(i), alone.row(0), "{dt:?} row {i}");
                let mut y = vec![0.0f32; n];
                gemv_vector(a.row(i), &w, &mut y, None).unwrap();
                assert_eq!(batch.row(i), &y[..], "{dt:?} row {i} vs gemv");
            }
        }
    }

    #[test]
    fn rowwise_matches_reference() {
        let mut rng = seeded(12);
        let a = Matrix::random_uniform(6, 96, 1.0, &mut rng).unwrap();
        let wmat = Matrix::random_uniform(33, 96, 1.0, &mut rng).unwrap();
        let w = PackedWeights::pack(&wmat, WeightDtype::F32).unwrap();
        let expect = a.matmul_wt(&w.unpack()).unwrap();
        let mut out = Matrix::zeros(6, 33).unwrap();
        gemm_rowwise(&a, &w, &mut out, None).unwrap();
        let err = expect.relative_error(&out);
        assert!(err < 1e-4, "err={err}");
        assert!(gemm_rowwise(&a, &w, &mut Matrix::zeros(7, 33).unwrap(), None).is_err());
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = Matrix::zeros(2, 8).unwrap();
        let wmat = Matrix::zeros(16, 16).unwrap();
        let w = PackedWeights::pack(&wmat, WeightDtype::F32).unwrap();
        let mut out = Matrix::zeros(2, 16).unwrap();
        assert!(gemm_tiled(&a, &w, &mut out, None).is_err());
        let a2 = Matrix::zeros(2, 16).unwrap();
        let mut bad_out = Matrix::zeros(3, 16).unwrap();
        assert!(gemm_tiled(&a2, &w, &mut bad_out, None).is_err());
        let mut y = vec![0.0; 8];
        assert!(gemv_vector(&[0.0; 16], &w, &mut y, None).is_err());
        assert!(gemv_vector(&[0.0; 8], &w, &mut [0.0; 16], None).is_err());
    }

    #[test]
    fn quantized_gemm_is_close_to_full_precision() {
        // End-to-end quantization error should stay small in relative
        // Frobenius norm: Int8 ~ group absmax / 127.
        let mut rng = seeded(10);
        let a = Matrix::random_uniform(8, 256, 1.0, &mut rng).unwrap();
        let wmat = Matrix::random_uniform(64, 256, 0.1, &mut rng).unwrap();
        let wf = PackedWeights::pack(&wmat, WeightDtype::F32).unwrap();
        let wq = PackedWeights::pack(&wmat, WeightDtype::Int8 { group: 64 }).unwrap();
        let mut of = Matrix::zeros(8, 64).unwrap();
        let mut oq = Matrix::zeros(8, 64).unwrap();
        gemm_tiled(&a, &wf, &mut of, None).unwrap();
        gemm_tiled(&a, &wq, &mut oq, None).unwrap();
        let err = of.relative_error(&oq);
        assert!(err < 0.02, "int8 end-to-end err={err}");
    }
}
