//! NUMA-aware tensor parallelism for MoE layers (§3.3, Figure 8).
//!
//! Multi-socket servers pay heavily for cross-socket memory traffic
//! (220 GB/s local vs 125 GB/s remote on the paper's testbed). Two
//! placements are implemented:
//!
//! * [`ExpertParallelMoe`] — the Expert Parallelism baseline
//!   (Figure 8a): whole experts are pinned to sockets. Skewed expert
//!   activation leaves "some sockets idle and others saturated".
//! * [`TensorParallelMoe`] — the paper's design (Figure 8b): **every**
//!   expert's weight matrices are partitioned across sockets along the
//!   intermediate dimension (column-parallel Gate/Up, row-parallel
//!   Down), each socket computes on purely local weights, and a single
//!   lightweight reduce combines the partial outputs. Work is balanced
//!   by construction regardless of routing skew.
//!
//! Each socket domain owns its own packed weight shard and worker pool;
//! shards execute concurrently on dedicated threads, mirroring the
//! paper's socket-local execution. (The *bandwidth* consequences of the
//! two placements are modeled in `kt-hwsim`; here the code paths and
//! work distribution are real.)

use kt_tensor::{Matrix, WeightDtype};

use crate::dispatch::Backend;
use crate::error::KernelError;
use crate::moe::{ExpertWeights, FusedMoE, MoeRouting};
use crate::schedule::{SchedulePolicy, ThreadPool};

/// Description of the socket topology used by NUMA-aware execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaTopology {
    /// Number of CPU sockets (NUMA domains).
    pub sockets: usize,
    /// Worker threads per socket.
    pub threads_per_socket: usize,
}

impl NumaTopology {
    /// Creates a topology.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] when either field is zero.
    pub fn new(sockets: usize, threads_per_socket: usize) -> Result<Self, KernelError> {
        if sockets == 0 || threads_per_socket == 0 {
            return Err(KernelError::config(
                "NUMA topology requires >= 1 socket and >= 1 thread per socket",
            ));
        }
        Ok(NumaTopology {
            sockets,
            threads_per_socket,
        })
    }
}

/// Dense (unpacked) expert weights, the input to NUMA sharding.
pub type DenseExpert = (Matrix, Matrix, Matrix);

/// Copies a contiguous column range of `m`.
fn col_slice(m: &Matrix, c0: usize, c1: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), c1 - c0).expect("nonzero slice");
    for r in 0..m.rows() {
        out.row_mut(r).copy_from_slice(&m.row(r)[c0..c1]);
    }
    out
}

/// Copies a contiguous row range of `m`.
fn row_slice(m: &Matrix, r0: usize, r1: usize) -> Matrix {
    let mut out = Matrix::zeros(r1 - r0, m.cols()).expect("nonzero slice");
    for r in r0..r1 {
        out.row_mut(r - r0).copy_from_slice(m.row(r));
    }
    out
}

/// Splits `len` into `parts` contiguous near-equal ranges.
fn partition(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let sz = base + usize::from(p < rem);
        out.push((start, start + sz));
        start += sz;
    }
    out
}

/// NUMA-aware tensor-parallel MoE: every expert sharded across sockets.
pub struct TensorParallelMoe {
    shards: Vec<FusedMoE>,
    pools: Vec<ThreadPool>,
    hidden: usize,
}

impl TensorParallelMoe {
    /// Shards dense experts across the topology and packs each socket's
    /// slice locally.
    ///
    /// The intermediate dimension is split: socket `s` holds Gate/Up
    /// rows and Down columns of its slice. SwiGLU is elementwise over
    /// the intermediate dimension, so each socket's slice is
    /// self-contained; only the final Down partial outputs are summed.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] when there are fewer intermediate
    /// neurons than sockets or shapes are inconsistent.
    pub fn new(
        experts: &[DenseExpert],
        dtype: WeightDtype,
        backend: Backend,
        topo: NumaTopology,
    ) -> Result<Self, KernelError> {
        let Some((gate0, _, _)) = experts.first() else {
            return Err(KernelError::config("TensorParallelMoe requires experts"));
        };
        let hidden = gate0.cols();
        let inter = gate0.rows();
        if inter < topo.sockets {
            return Err(KernelError::config(format!(
                "cannot split inter={inter} across {} sockets",
                topo.sockets
            )));
        }
        let ranges = partition(inter, topo.sockets);
        let mut shards = Vec::with_capacity(topo.sockets);
        for &(i0, i1) in &ranges {
            let mut shard_experts = Vec::with_capacity(experts.len());
            for (gate, up, down) in experts {
                let gate_s = row_slice(gate, i0, i1);
                let up_s = row_slice(up, i0, i1);
                let down_s = col_slice(down, i0, i1);
                shard_experts.push(ExpertWeights::from_matrices(&gate_s, &up_s, &down_s, dtype)?);
            }
            shards.push(FusedMoE::new(shard_experts, backend)?);
        }
        let pools = (0..topo.sockets)
            .map(|_| ThreadPool::new(topo.threads_per_socket))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TensorParallelMoe {
            shards,
            pools,
            hidden,
        })
    }

    /// Number of socket shards.
    pub fn sockets(&self) -> usize {
        self.shards.len()
    }

    /// Runs all socket shards concurrently and reduces their partial
    /// outputs (the "lightweight reduce-scatter" combine).
    ///
    /// # Errors
    ///
    /// Propagates shape/routing errors from the shards.
    pub fn forward(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        policy: SchedulePolicy,
    ) -> Result<Matrix, KernelError> {
        let partials: Vec<Result<Matrix, KernelError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&self.pools)
                .map(|(shard, pool)| {
                    scope.spawn(move || shard.forward(x, routing, Some(pool), policy))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("socket shard thread panicked"))
                .collect()
        });
        let mut out = Matrix::zeros(x.rows(), self.hidden)
            .map_err(|e| KernelError::shape(e.to_string()))?;
        for p in partials {
            let p = p?;
            for (o, v) in out.as_mut_slice().iter_mut().zip(p.as_slice()) {
                *o += v;
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for TensorParallelMoe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TensorParallelMoe")
            .field("sockets", &self.shards.len())
            .field("hidden", &self.hidden)
            .finish()
    }
}

/// Expert-parallel MoE baseline: whole experts pinned to sockets.
pub struct ExpertParallelMoe {
    /// Per socket: the local expert pool and the global indices it owns.
    shards: Vec<(FusedMoE, Vec<usize>)>,
    pools: Vec<ThreadPool>,
    hidden: usize,
    n_experts: usize,
}

impl ExpertParallelMoe {
    /// Distributes experts round-robin across sockets (Figure 8a).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] when a socket would receive no
    /// experts, or on packing failures.
    pub fn new(
        experts: &[DenseExpert],
        dtype: WeightDtype,
        backend: Backend,
        topo: NumaTopology,
    ) -> Result<Self, KernelError> {
        if experts.len() < topo.sockets {
            return Err(KernelError::config(format!(
                "cannot place {} experts on {} sockets",
                experts.len(),
                topo.sockets
            )));
        }
        let hidden = experts[0].0.cols();
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); topo.sockets];
        for e in 0..experts.len() {
            owned[e % topo.sockets].push(e);
        }
        let mut shards = Vec::with_capacity(topo.sockets);
        for ids in owned {
            let local = ids
                .iter()
                .map(|&e| {
                    let (gate, up, down) = &experts[e];
                    ExpertWeights::from_matrices(gate, up, down, dtype)
                })
                .collect::<Result<Vec<_>, _>>()?;
            shards.push((FusedMoE::new(local, backend)?, ids));
        }
        let pools = (0..topo.sockets)
            .map(|_| ThreadPool::new(topo.threads_per_socket))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExpertParallelMoe {
            shards,
            pools,
            hidden,
            n_experts: experts.len(),
        })
    }

    /// Activation counts per socket under `routing` — the imbalance
    /// measure that motivates tensor parallelism.
    pub fn socket_loads(&self, routing: &MoeRouting) -> Vec<usize> {
        let mut owner = vec![0usize; self.n_experts];
        for (s, (_, ids)) in self.shards.iter().enumerate() {
            for &e in ids {
                owner[e] = s;
            }
        }
        let mut loads = vec![0usize; self.shards.len()];
        for a in &routing.assignments {
            for &(e, _) in a {
                if e < self.n_experts {
                    loads[owner[e]] += 1;
                }
            }
        }
        loads
    }

    /// Runs each socket's local experts concurrently and sums outputs.
    ///
    /// # Errors
    ///
    /// Propagates shape/routing errors (including out-of-range experts).
    pub fn forward(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        policy: SchedulePolicy,
    ) -> Result<Matrix, KernelError> {
        // Validate expert range globally first (local shards only know
        // their own subset).
        for a in &routing.assignments {
            for &(e, _) in a {
                if e >= self.n_experts {
                    return Err(KernelError::shape(format!(
                        "expert {e} out of range ({} total)",
                        self.n_experts
                    )));
                }
            }
        }
        // Translate the global routing into per-shard local routings.
        let mut local_maps: Vec<std::collections::HashMap<usize, usize>> = Vec::new();
        for (_, ids) in &self.shards {
            local_maps.push(ids.iter().enumerate().map(|(l, &g)| (g, l)).collect());
        }
        let locals: Vec<MoeRouting> = local_maps
            .iter()
            .map(|map| {
                MoeRouting::new(
                    routing
                        .assignments
                        .iter()
                        .map(|a| {
                            a.iter()
                                .filter_map(|&(e, w)| map.get(&e).map(|&l| (l, w)))
                                .collect()
                        })
                        .collect(),
                )
            })
            .collect();

        let partials: Vec<Result<Matrix, KernelError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&self.pools)
                .zip(&locals)
                .map(|(((shard, _), pool), local)| {
                    scope.spawn(move || shard.forward(x, local, Some(pool), policy))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("socket shard thread panicked"))
                .collect()
        });
        let mut out = Matrix::zeros(x.rows(), self.hidden)
            .map_err(|e| KernelError::shape(e.to_string()))?;
        for p in partials {
            let p = p?;
            for (o, v) in out.as_mut_slice().iter_mut().zip(p.as_slice()) {
                *o += v;
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for ExpertParallelMoe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpertParallelMoe")
            .field("sockets", &self.shards.len())
            .field("n_experts", &self.n_experts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_tensor::rng::seeded;
    use rand::Rng;

    fn dense_experts(n: usize, hidden: usize, inter: usize, seed: u64) -> Vec<DenseExpert> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| {
                (
                    Matrix::random_kaiming(inter, hidden, &mut rng).unwrap(),
                    Matrix::random_kaiming(inter, hidden, &mut rng).unwrap(),
                    Matrix::random_kaiming(hidden, inter, &mut rng).unwrap(),
                )
            })
            .collect()
    }

    fn routing(n_tokens: usize, n_experts: usize, k: usize, seed: u64) -> MoeRouting {
        let mut rng = seeded(seed);
        MoeRouting::new(
            (0..n_tokens)
                .map(|_| {
                    let mut picks: Vec<usize> = (0..n_experts).collect();
                    for i in (1..picks.len()).rev() {
                        let j = rng.gen_range(0..=i);
                        picks.swap(i, j);
                    }
                    picks[..k]
                        .iter()
                        .map(|&e| (e, rng.gen_range(0.1f32..1.0)))
                        .collect()
                })
                .collect(),
        )
    }

    fn single_domain_reference(
        experts: &[DenseExpert],
        x: &Matrix,
        r: &MoeRouting,
    ) -> Matrix {
        let packed = experts
            .iter()
            .map(|(g, u, d)| ExpertWeights::from_matrices(g, u, d, WeightDtype::F32).unwrap())
            .collect();
        let moe = FusedMoE::new(packed, Backend::HybridAmxAvx512).unwrap();
        moe.forward(x, r, None, SchedulePolicy::Dynamic).unwrap()
    }

    #[test]
    fn partition_covers_range() {
        for len in [1usize, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 5] {
                if parts > len {
                    continue;
                }
                let ranges = partition(len, parts);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn tensor_parallel_matches_single_domain() {
        let experts = dense_experts(4, 24, 36, 1);
        let topo = NumaTopology::new(2, 2).unwrap();
        let tp =
            TensorParallelMoe::new(&experts, WeightDtype::F32, Backend::HybridAmxAvx512, topo)
                .unwrap();
        let mut rng = seeded(2);
        let x = Matrix::random_uniform(6, 24, 1.0, &mut rng).unwrap();
        let r = routing(6, 4, 2, 3);
        let expect = single_domain_reference(&experts, &x, &r);
        let got = tp.forward(&x, &r, SchedulePolicy::Dynamic).unwrap();
        let err = expect.relative_error(&got);
        assert!(err < 1e-4, "err={err}");
    }

    #[test]
    fn tensor_parallel_handles_uneven_split() {
        // inter=37 not divisible by 3 sockets.
        let experts = dense_experts(2, 16, 37, 4);
        let topo = NumaTopology::new(3, 1).unwrap();
        let tp =
            TensorParallelMoe::new(&experts, WeightDtype::F32, Backend::HybridAmxAvx512, topo)
                .unwrap();
        let mut rng = seeded(5);
        let x = Matrix::random_uniform(3, 16, 1.0, &mut rng).unwrap();
        let r = routing(3, 2, 1, 6);
        let expect = single_domain_reference(&experts, &x, &r);
        let got = tp.forward(&x, &r, SchedulePolicy::Dynamic).unwrap();
        assert!(expect.relative_error(&got) < 1e-4);
    }

    #[test]
    fn expert_parallel_matches_single_domain() {
        let experts = dense_experts(6, 24, 32, 7);
        let topo = NumaTopology::new(2, 2).unwrap();
        let ep =
            ExpertParallelMoe::new(&experts, WeightDtype::F32, Backend::HybridAmxAvx512, topo)
                .unwrap();
        let mut rng = seeded(8);
        let x = Matrix::random_uniform(5, 24, 1.0, &mut rng).unwrap();
        let r = routing(5, 6, 3, 9);
        let expect = single_domain_reference(&experts, &x, &r);
        let got = ep.forward(&x, &r, SchedulePolicy::Dynamic).unwrap();
        assert!(expect.relative_error(&got) < 1e-4);
    }

    #[test]
    fn expert_parallel_load_reflects_skew() {
        let experts = dense_experts(4, 16, 24, 10);
        let topo = NumaTopology::new(2, 1).unwrap();
        let ep =
            ExpertParallelMoe::new(&experts, WeightDtype::F32, Backend::HybridAmxAvx512, topo)
                .unwrap();
        // All tokens route to experts {0, 2}, both owned by socket 0
        // under round-robin placement.
        let r = MoeRouting::new(vec![vec![(0, 1.0), (2, 1.0)]; 4]);
        let loads = ep.socket_loads(&r);
        assert_eq!(loads, vec![8, 0]);
        // Tensor parallelism would split this work evenly by design.
    }

    #[test]
    fn invalid_topologies_are_rejected() {
        assert!(NumaTopology::new(0, 1).is_err());
        assert!(NumaTopology::new(1, 0).is_err());
        let experts = dense_experts(1, 16, 24, 11);
        let topo = NumaTopology::new(2, 1).unwrap();
        assert!(ExpertParallelMoe::new(
            &experts,
            WeightDtype::F32,
            Backend::HybridAmxAvx512,
            topo
        )
        .is_err());
        let tiny = dense_experts(1, 16, 1, 12);
        assert!(TensorParallelMoe::new(
            &tiny,
            WeightDtype::F32,
            Backend::HybridAmxAvx512,
            topo
        )
        .is_err());
    }

    #[test]
    fn quantized_tensor_parallel_is_close() {
        let experts = dense_experts(3, 32, 32, 13);
        let topo = NumaTopology::new(2, 1).unwrap();
        let tp = TensorParallelMoe::new(
            &experts,
            WeightDtype::Int8 { group: 4 },
            Backend::HybridAmxAvx512,
            topo,
        )
        .unwrap();
        let mut rng = seeded(14);
        let x = Matrix::random_uniform(4, 32, 1.0, &mut rng).unwrap();
        let r = routing(4, 3, 2, 15);
        let expect = single_domain_reference(&experts, &x, &r);
        let got = tp.forward(&x, &r, SchedulePolicy::Dynamic).unwrap();
        let err = expect.relative_error(&got);
        assert!(err < 0.05, "err={err}");
    }
}
