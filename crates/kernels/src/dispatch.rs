//! Arithmetic-intensity-aware kernel selection (§3.2, Figure 7).
//!
//! The paper's microbenchmarks show the lightweight vector kernel
//! outperforming the tiled AMX kernel "when ARI is four or fewer tokens
//! per expert"; above that, tile amortization wins. The hybrid backend
//! therefore switches on the number of activation rows each expert must
//! process.

/// Tokens-per-expert at or below which the vector kernel is selected.
///
/// Figure 7: "AVX-512 consistently outperforming AMX when ARI is four
/// or fewer tokens per expert."
pub const ARI_CROSSOVER: usize = 4;

/// The two kernel classes of the hybrid backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Tile-blocked high-throughput kernel (AMX-class) for prefill-like
    /// high arithmetic intensity.
    Tiled,
    /// Fine-grained vector kernel (AVX-512-class) for decode-like low
    /// arithmetic intensity.
    Vector,
}

/// Selects the kernel class for a task processing `tokens_per_expert`
/// activation rows.
pub fn select_kernel(tokens_per_expert: usize) -> KernelClass {
    if tokens_per_expert <= ARI_CROSSOVER {
        KernelClass::Vector
    } else {
        KernelClass::Tiled
    }
}

/// Backend selection for the fused MoE operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// ARI-based hybrid dispatch (the paper's default).
    #[default]
    HybridAmxAvx512,
    /// Force the tiled kernel for all tasks (pure-AMX ablation).
    TiledOnly,
    /// Force the vector kernel for all tasks (pure-AVX-512 ablation).
    VectorOnly,
}

impl Backend {
    /// Resolves the kernel class for a given tokens-per-expert count.
    pub fn kernel_for(self, tokens_per_expert: usize) -> KernelClass {
        match self {
            Backend::HybridAmxAvx512 => select_kernel(tokens_per_expert),
            Backend::TiledOnly => KernelClass::Tiled,
            Backend::VectorOnly => KernelClass::Vector,
        }
    }

    /// Parses the configuration-string names used by the injection
    /// framework (Listing 1: `backend: "hybrid_AMX_AVX512"`).
    pub fn parse(name: &str) -> Option<Backend> {
        match name {
            "hybrid_AMX_AVX512" | "hybrid" => Some(Backend::HybridAmxAvx512),
            "AMX" | "tiled" => Some(Backend::TiledOnly),
            "AVX512" | "vector" => Some(Backend::VectorOnly),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_matches_paper() {
        assert_eq!(select_kernel(1), KernelClass::Vector);
        assert_eq!(select_kernel(4), KernelClass::Vector);
        assert_eq!(select_kernel(5), KernelClass::Tiled);
        assert_eq!(select_kernel(1024), KernelClass::Tiled);
    }

    #[test]
    fn forced_backends_ignore_ari() {
        assert_eq!(Backend::TiledOnly.kernel_for(1), KernelClass::Tiled);
        assert_eq!(Backend::VectorOnly.kernel_for(1000), KernelClass::Vector);
        assert_eq!(
            Backend::HybridAmxAvx512.kernel_for(1000),
            KernelClass::Tiled
        );
    }

    #[test]
    fn backend_names_parse() {
        assert_eq!(
            Backend::parse("hybrid_AMX_AVX512"),
            Some(Backend::HybridAmxAvx512)
        );
        assert_eq!(Backend::parse("AMX"), Some(Backend::TiledOnly));
        assert_eq!(Backend::parse("AVX512"), Some(Backend::VectorOnly));
        assert_eq!(Backend::parse("cuda"), None);
    }
}
