//! The fused MoE operator (§3.2, "Fused MoE Operator").
//!
//! A MoE layer evaluates, for every routed token, a SwiGLU expert MLP:
//! `down( silu(gate(x)) * up(x) )`, then scatter-adds the result back to
//! the token weighted by its routing score.
//!
//! Naively this is `3 * activated_experts` small GEMMs with a thread
//! barrier after each. The paper fuses them into exactly **two task
//! batches** with one barrier between:
//!
//! * **Batch 1** — Gate and Up projections of *all* activated experts,
//!   merged into one task list (they share inputs and have no mutual
//!   dependency).
//! * **Batch 2** — Down projections of all experts.
//!
//! Task granularity is one (expert matrix, output panel) pair, matching
//! Figure 6 step ① ("expert weight matrices are vertically partitioned
//! into tasks dynamically scheduled across threads"). Tasks of the same
//! expert are adjacent in the queue, so dynamic scheduling naturally
//! co-schedules them — the paper's cache-reuse heuristic.

use kt_tensor::{ArenaStats, Matrix, PackedWeights, ScratchArena, WeightDtype};
use rand::rngs::StdRng;

use crate::act::swiglu_combine;
use crate::dispatch::Backend;
use crate::error::KernelError;
use crate::gemm::{run_panel, OutPtr};
use crate::schedule::{SchedulePolicy, ThreadPool};

/// The three projection matrices of one expert, packed for the hybrid
/// kernels at load time.
#[derive(Debug, Clone)]
pub struct ExpertWeights {
    /// Gate projection, `inter x hidden`.
    pub gate: PackedWeights,
    /// Up projection, `inter x hidden`.
    pub up: PackedWeights,
    /// Down projection, `hidden x inter`.
    pub down: PackedWeights,
}

impl ExpertWeights {
    /// Packs dense gate/up/down matrices into expert weights.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on inconsistent dimensions and
    /// propagates packing errors.
    pub fn from_matrices(
        gate: &Matrix,
        up: &Matrix,
        down: &Matrix,
        dtype: WeightDtype,
    ) -> Result<Self, KernelError> {
        let hidden = gate.cols();
        let inter = gate.rows();
        if up.rows() != inter || up.cols() != hidden {
            return Err(KernelError::shape(format!(
                "up is {}x{}, expected {inter}x{hidden}",
                up.rows(),
                up.cols()
            )));
        }
        if down.rows() != hidden || down.cols() != inter {
            return Err(KernelError::shape(format!(
                "down is {}x{}, expected {hidden}x{inter}",
                down.rows(),
                down.cols()
            )));
        }
        let pack = |m: &Matrix| {
            PackedWeights::pack(m, dtype).map_err(|e| KernelError::config(e.to_string()))
        };
        Ok(ExpertWeights {
            gate: pack(gate)?,
            up: pack(up)?,
            down: pack(down)?,
        })
    }

    /// Generates a random expert with Kaiming-scaled weights.
    ///
    /// # Errors
    ///
    /// Propagates packing errors (e.g. invalid quantization groups).
    pub fn random(
        hidden: usize,
        inter: usize,
        dtype: WeightDtype,
        rng: &mut StdRng,
    ) -> Result<Self, KernelError> {
        let mk = |r: usize, c: usize, rng: &mut StdRng| {
            Matrix::random_kaiming(r, c, rng).map_err(|e| KernelError::shape(e.to_string()))
        };
        let gate = mk(inter, hidden, rng)?;
        let up = mk(inter, hidden, rng)?;
        let down = mk(hidden, inter, rng)?;
        Self::from_matrices(&gate, &up, &down, dtype)
    }

    /// Hidden (model) dimension.
    pub fn hidden(&self) -> usize {
        self.gate.k()
    }

    /// Intermediate (expert MLP) dimension.
    pub fn inter(&self) -> usize {
        self.gate.n()
    }

    /// Total stored bytes of all three projections.
    pub fn stored_bytes(&self) -> usize {
        self.gate.stored_bytes() + self.up.stored_bytes() + self.down.stored_bytes()
    }

    /// Serializes the expert (three packed projections).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), KernelError> {
        for m in [&self.gate, &self.up, &self.down] {
            m.write_to(w).map_err(|e| KernelError::config(e.to_string()))?;
        }
        Ok(())
    }

    /// Deserializes an expert written by [`ExpertWeights::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] on corrupt input or inconsistent
    /// projection shapes.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, KernelError> {
        fn read(r: &mut impl std::io::Read) -> Result<PackedWeights, KernelError> {
            PackedWeights::read_from(r).map_err(|e| KernelError::config(e.to_string()))
        }
        let gate = read(r)?;
        let up = read(r)?;
        let down = read(r)?;
        let (inter, hidden) = (gate.n(), gate.k());
        if up.n() != inter || up.k() != hidden || down.n() != hidden || down.k() != inter {
            return Err(KernelError::shape(
                "expert projections have inconsistent shapes",
            ));
        }
        Ok(ExpertWeights { gate, up, down })
    }
}

/// Routing decisions for a batch of tokens: `assignments[t]` lists the
/// `(expert_index, routing_weight)` pairs of token `t`.
#[derive(Debug, Clone, Default)]
pub struct MoeRouting {
    /// Per-token `(expert, weight)` activations.
    pub assignments: Vec<Vec<(usize, f32)>>,
}

impl MoeRouting {
    /// Builds a routing table; `assignments[t]` may have any length
    /// (top-k, deferred subsets, empty).
    pub fn new(assignments: Vec<Vec<(usize, f32)>>) -> Self {
        MoeRouting { assignments }
    }

    /// Number of tokens routed.
    pub fn n_tokens(&self) -> usize {
        self.assignments.len()
    }

    /// Total `(token, expert)` activation pairs.
    pub fn n_activations(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// Splits into (immediate, deferred) routings by per-token score
    /// rank: the `n_immediate` highest-weight experts of each token stay
    /// immediate, the rest are deferred (§4.1: "only the top-2 experts
    /// with the highest routing score ... are immediate experts").
    pub fn split_deferred(&self, n_immediate: usize) -> (MoeRouting, MoeRouting) {
        let mut imm = Vec::with_capacity(self.assignments.len());
        let mut def = Vec::with_capacity(self.assignments.len());
        for a in &self.assignments {
            let mut sorted: Vec<(usize, f32)> = a.clone();
            sorted.sort_by(|x, y| y.1.total_cmp(&x.1));
            let split = n_immediate.min(sorted.len());
            imm.push(sorted[..split].to_vec());
            def.push(sorted[split..].to_vec());
        }
        (MoeRouting::new(imm), MoeRouting::new(def))
    }
}

/// One expert's **unscattered** output from
/// [`FusedMoE::forward_buckets`]: the down-projected rows plus the
/// token ids and routing weights needed to scatter them later.
///
/// Holding scatter inputs rather than scattered sums lets two devices
/// (e.g. CPU workers and the vGPU) compute disjoint expert subsets
/// concurrently and still merge through the canonical serial
/// scatter-add order ([`scatter_bucket_outs`]) — bitwise identical to
/// computing every expert on one device. Return the buffers via
/// [`MoeWorkspace::retire_bucket_out`] when done.
#[derive(Debug)]
pub struct BucketOut {
    /// Expert index within the pool.
    pub expert: usize,
    /// Routed token ids, ascending.
    pub token_ids: Vec<usize>,
    /// Routing weights, parallel to `token_ids`.
    pub weights: Vec<f32>,
    /// Down-projected outputs, `t_e x hidden` (arena-backed).
    pub d: Matrix,
}

/// Serially scatter-adds unscattered bucket outputs into `out`, in the
/// order given: `out[t] += weight * d[row]` per routed token, the exact
/// loop the serial branch of [`FusedMoE::forward_accumulate_with`]
/// runs. For bitwise parity with a single-device forward, pass the
/// outputs sorted ascending by expert index (the order `build_buckets`
/// visits them).
///
/// # Errors
///
/// Returns [`KernelError::Shape`] on column mismatches or out-of-range
/// token ids.
pub fn scatter_bucket_outs(outs: &[BucketOut], out: &mut Matrix) -> Result<(), KernelError> {
    for b in outs {
        if b.d.cols() != out.cols() {
            return Err(KernelError::shape(format!(
                "bucket for expert {} has {} cols, out has {}",
                b.expert,
                b.d.cols(),
                out.cols()
            )));
        }
        for (row, (&t, &wgt)) in b.token_ids.iter().zip(&b.weights).enumerate() {
            if t >= out.rows() {
                return Err(KernelError::shape(format!(
                    "bucket for expert {} scatters token {t}, out has {} rows",
                    b.expert,
                    out.rows()
                )));
            }
            let src = b.d.row(row);
            let dst = out.row_mut(t);
            for (o, s) in dst.iter_mut().zip(src) {
                *o += wgt * s;
            }
        }
    }
    Ok(())
}

/// Per-expert gathered workspace used inside one forward call.
struct Bucket {
    expert: usize,
    /// Routed token ids, ascending (built in token order) — the parallel
    /// scatter-add relies on this to binary-search its row range.
    token_ids: Vec<usize>,
    weights: Vec<f32>,
    /// Gathered inputs, `t_e x hidden`.
    x: Matrix,
    /// Fused gate|up outputs, `t_e x (2 * inter)`: columns `0..inter`
    /// are Gate, `inter..2*inter` are Up — one output buffer so the two
    /// projections form a single task batch.
    gu: Matrix,
    /// SwiGLU-combined activations, `t_e x inter`.
    h: Matrix,
    /// Down-projected outputs, `t_e x hidden`.
    d: Matrix,
}

/// Reusable scratch state for [`FusedMoE`] forwards.
///
/// Every scratch object a forward call needs — per-expert gather tables,
/// bucket matrices (`x`/`gu`/`h`/`d`), and the phase task descriptors —
/// is checked out of this workspace and returned at the end of the call,
/// so consecutive layers and steps that route similar token counts
/// perform **zero heap allocations** once the working set has warmed up.
/// A workspace may be shared across different `FusedMoE` instances
/// (e.g. routed + shared expert pools of all layers).
///
/// Reset-on-error: checked-out buffers are always zeroed on checkout and
/// bucket state is retired (or self-healed at the next call) even when a
/// forward fails partway, so no stale or poisoned data can leak into a
/// later step — see the equivalence proptests.
#[derive(Default)]
pub struct MoeWorkspace {
    arena: ScratchArena,
    /// Per-expert `(token_ids, weights)` gather table; grows to the
    /// largest expert pool seen, entries keep their capacity.
    gather: Vec<(Vec<usize>, Vec<f32>)>,
    /// Buckets of the in-flight forward (empty between calls).
    buckets: Vec<Bucket>,
    /// Reused phase task descriptors (cleared between phases).
    descs: Vec<PanelDesc>,
}

impl std::fmt::Debug for MoeWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MoeWorkspace")
            .field("arena", &self.arena.stats())
            .finish_non_exhaustive()
    }
}

impl MoeWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a zeroed matrix from the workspace arena (for callers
    /// that manage output buffers alongside the MoE scratch state).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] for zero dimensions.
    pub fn checkout(&mut self, rows: usize, cols: usize) -> Result<Matrix, KernelError> {
        self.arena
            .checkout(rows, cols)
            .map_err(|e| KernelError::shape(e.to_string()))
    }

    /// Returns a matrix to the workspace arena for reuse.
    pub fn restore(&mut self, m: Matrix) {
        self.arena.restore(m);
    }

    /// Allocation/reuse counters of the backing arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Returns a [`BucketOut`]'s buffers to this workspace: the output
    /// matrix to the arena, the id/weight vectors (capacity intact) to
    /// the gather table. Hand each bucket back to the workspace that
    /// produced it so per-device working sets stay warm.
    pub fn retire_bucket_out(&mut self, b: BucketOut) {
        let BucketOut {
            expert,
            mut token_ids,
            mut weights,
            d,
        } = b;
        token_ids.clear();
        weights.clear();
        if let Some(slot) = self.gather.get_mut(expert) {
            slot.0 = token_ids;
            slot.1 = weights;
        }
        self.arena.restore(d);
    }

    /// Fills all pooled buffers with NaN (test hook; see
    /// [`ScratchArena::poison_for_test`]).
    pub fn poison_for_test(&mut self) {
        self.arena.poison_for_test();
    }
}

/// The fused MoE operator over a pool of experts.
#[derive(Debug)]
pub struct FusedMoE {
    experts: Vec<ExpertWeights>,
    hidden: usize,
    inter: usize,
    backend: Backend,
}

impl FusedMoE {
    /// Wraps a set of experts (all with identical shapes).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] when `experts` is empty or shapes
    /// disagree.
    pub fn new(experts: Vec<ExpertWeights>, backend: Backend) -> Result<Self, KernelError> {
        let Some(first) = experts.first() else {
            return Err(KernelError::config("FusedMoE requires at least one expert"));
        };
        let hidden = first.hidden();
        let inter = first.inter();
        for (i, e) in experts.iter().enumerate() {
            if e.hidden() != hidden || e.inter() != inter {
                return Err(KernelError::config(format!(
                    "expert {i} has shape {}x{}, expected {hidden}x{inter}",
                    e.hidden(),
                    e.inter()
                )));
            }
        }
        Ok(FusedMoE {
            experts,
            hidden,
            inter,
            backend,
        })
    }

    /// Builds a random MoE pool.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn random(
        n_experts: usize,
        hidden: usize,
        inter: usize,
        dtype: WeightDtype,
        backend: Backend,
        rng: &mut StdRng,
    ) -> Result<Self, KernelError> {
        let experts = (0..n_experts)
            .map(|_| ExpertWeights::random(hidden, inter, dtype, rng))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(experts, backend)
    }

    /// Number of experts in the pool.
    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Intermediate dimension.
    pub fn inter(&self) -> usize {
        self.inter
    }

    /// Direct access to an expert's packed weights.
    pub fn expert(&self, i: usize) -> &ExpertWeights {
        &self.experts[i]
    }

    /// Computes the MoE output for `x` (`tokens x hidden`) under
    /// `routing` and returns it as a fresh matrix (no residual).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on dimension or routing-index
    /// mismatches.
    pub fn forward(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        pool: Option<&ThreadPool>,
        policy: SchedulePolicy,
    ) -> Result<Matrix, KernelError> {
        let mut ws = MoeWorkspace::new();
        self.forward_with(x, routing, pool, policy, &mut ws)
    }

    /// [`FusedMoE::forward`] with a caller-owned workspace: the output
    /// matrix and all scratch buffers come from `ws`, so repeated calls
    /// allocate nothing once warmed up. Restore the returned matrix via
    /// [`MoeWorkspace::restore`] when done with it.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on dimension or routing-index
    /// mismatches.
    pub fn forward_with(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        pool: Option<&ThreadPool>,
        policy: SchedulePolicy,
        ws: &mut MoeWorkspace,
    ) -> Result<Matrix, KernelError> {
        let mut out = ws.checkout(x.rows(), self.hidden)?;
        self.forward_accumulate_with(x, routing, &mut out, pool, policy, ws)?;
        Ok(out)
    }

    /// Computes the MoE output and **adds** it into `out` (residual-style
    /// accumulation; used directly by Expert Deferral, which adds
    /// deferred contributions into a later layer's stream).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on dimension or routing-index
    /// mismatches.
    pub fn forward_accumulate(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        out: &mut Matrix,
        pool: Option<&ThreadPool>,
        policy: SchedulePolicy,
    ) -> Result<(), KernelError> {
        let mut ws = MoeWorkspace::new();
        self.forward_accumulate_with(x, routing, out, pool, policy, &mut ws)
    }

    /// [`FusedMoE::forward_accumulate`] with a caller-owned workspace.
    /// Results are bit-identical to the fresh-allocation path: checkouts
    /// are zeroed exactly like `Matrix::zeros`, and the execution order
    /// of every floating-point accumulation is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on dimension or routing-index
    /// mismatches.
    pub fn forward_accumulate_with(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        out: &mut Matrix,
        pool: Option<&ThreadPool>,
        policy: SchedulePolicy,
        ws: &mut MoeWorkspace,
    ) -> Result<(), KernelError> {
        self.validate_forward(x, routing)?;
        if out.rows() != x.rows() || out.cols() != self.hidden {
            return Err(KernelError::shape(format!(
                "out is {}x{}, expected {}x{}",
                out.rows(),
                out.cols(),
                x.rows(),
                self.hidden
            )));
        }

        // Self-heal: if a previous forward panicked mid-flight (e.g. a
        // fault-injected kernel), its buckets are still parked in the
        // workspace. Retire them back to the arena before reusing it.
        Self::retire_buckets(&mut ws.gather, &mut ws.buckets, &mut ws.arena);

        // Gather tokens per expert into workspace-owned buckets.
        if let Err(e) = self.build_buckets(x, routing, ws) {
            Self::retire_buckets(&mut ws.gather, &mut ws.buckets, &mut ws.arena);
            return Err(e);
        }
        let MoeWorkspace {
            arena,
            gather,
            buckets,
            descs,
        } = ws;
        if buckets.is_empty() {
            return Ok(());
        }

        self.run_phases(pool, policy, buckets, descs);

        // Weighted scatter-add back to token order. With a pool, tasks
        // own disjoint ranges of output token rows; within each range
        // buckets are visited in the same order as the serial loop, so
        // every token's floating-point accumulation order — and thus the
        // result — is bit-identical to serial execution.
        match pool {
            Some(p) => {
                let n_rows = out.rows();
                let out_cols = out.cols();
                // ~8 token rows per task: enough work per task at real
                // hidden sizes, and decode batches (a handful of rows)
                // degenerate gracefully to one task.
                let n_tasks = n_rows.div_ceil(SCATTER_ROWS_PER_TASK);
                let out_ptr = ScatterPtr(out.as_mut_slice().as_mut_ptr());
                // Capture the Sync wrapper by reference, not its raw
                // field (2021 disjoint capture would grab the bare ptr).
                let out_ptr = &out_ptr;
                let buckets = &*buckets;
                let scatter = |task: usize| {
                    let lo = task * SCATTER_ROWS_PER_TASK;
                    let hi = (lo + SCATTER_ROWS_PER_TASK).min(n_rows);
                    for b in buckets {
                        let s = b.token_ids.partition_point(|&t| t < lo);
                        let e = b.token_ids.partition_point(|&t| t < hi);
                        for i in s..e {
                            let t = b.token_ids[i];
                            let wgt = b.weights[i];
                            let src = b.d.row(i);
                            // SAFETY: rows `lo..hi` are owned exclusively
                            // by this task; `t` lies in `[lo, hi)`.
                            let dst = unsafe {
                                std::slice::from_raw_parts_mut(
                                    out_ptr.0.add(t * out_cols),
                                    out_cols,
                                )
                            };
                            for (o, s) in dst.iter_mut().zip(src) {
                                *o += wgt * s;
                            }
                        }
                    }
                };
                p.run(n_tasks, policy, scatter);
            }
            None => {
                for b in buckets.iter() {
                    for (row, (&t, &wgt)) in b.token_ids.iter().zip(&b.weights).enumerate() {
                        let src = b.d.row(row);
                        let dst = out.row_mut(t);
                        for (o, s) in dst.iter_mut().zip(src) {
                            *o += wgt * s;
                        }
                    }
                }
            }
        }

        // Return every scratch buffer to the workspace for the next call.
        Self::retire_buckets(gather, buckets, arena);
        Ok(())
    }

    /// Computes per-expert **unscattered** outputs for `x` under
    /// `routing`: the same two fused task batches as
    /// [`FusedMoE::forward_accumulate_with`] (same kernels, same
    /// per-bucket kernel class, same task order), stopping before the
    /// scatter-add. Buckets come back sorted ascending by expert index.
    ///
    /// This is the dual-device building block: partition a routing
    /// table by expert, run each partition on its own device with its
    /// own workspace, then fold every bucket through one
    /// [`scatter_bucket_outs`] call — bitwise identical to a
    /// single-device forward over the unpartitioned routing, because
    /// each expert's bucket contents and the global scatter order are
    /// unchanged. Retire each returned bucket to the workspace that
    /// produced it via [`MoeWorkspace::retire_bucket_out`].
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on dimension or routing-index
    /// mismatches.
    pub fn forward_buckets(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        pool: Option<&ThreadPool>,
        policy: SchedulePolicy,
        ws: &mut MoeWorkspace,
    ) -> Result<Vec<BucketOut>, KernelError> {
        self.validate_forward(x, routing)?;
        Self::retire_buckets(&mut ws.gather, &mut ws.buckets, &mut ws.arena);
        if let Err(e) = self.build_buckets(x, routing, ws) {
            Self::retire_buckets(&mut ws.gather, &mut ws.buckets, &mut ws.arena);
            return Err(e);
        }
        let MoeWorkspace {
            arena,
            buckets,
            descs,
            ..
        } = ws;
        if buckets.is_empty() {
            return Ok(Vec::new());
        }
        self.run_phases(pool, policy, buckets, descs);
        // Hand the down-projected rows to the caller; the intermediate
        // scratch (gathered inputs, gate|up, activations) retires now.
        let outs = buckets
            .drain(..)
            .map(|b| {
                arena.restore(b.x);
                arena.restore(b.gu);
                arena.restore(b.h);
                BucketOut {
                    expert: b.expert,
                    token_ids: b.token_ids,
                    weights: b.weights,
                    d: b.d,
                }
            })
            .collect();
        Ok(outs)
    }

    /// Shape/range checks shared by the forward entry points.
    fn validate_forward(&self, x: &Matrix, routing: &MoeRouting) -> Result<(), KernelError> {
        if x.cols() != self.hidden {
            return Err(KernelError::shape(format!(
                "x has {} cols, expected hidden={}",
                x.cols(),
                self.hidden
            )));
        }
        if routing.n_tokens() != x.rows() {
            return Err(KernelError::shape(format!(
                "routing covers {} tokens but x has {}",
                routing.n_tokens(),
                x.rows()
            )));
        }
        for (t, a) in routing.assignments.iter().enumerate() {
            for &(e, _) in a {
                if e >= self.experts.len() {
                    return Err(KernelError::shape(format!(
                        "token {t} routed to expert {e}, pool has {}",
                        self.experts.len()
                    )));
                }
            }
        }
        Ok(())
    }

    /// The two fused task batches (Gate+Up, SwiGLU combine, Down) over
    /// built buckets — everything between gathering and scattering.
    fn run_phases(
        &self,
        pool: Option<&ThreadPool>,
        policy: SchedulePolicy,
        buckets: &mut [Bucket],
        descs: &mut Vec<PanelDesc>,
    ) {
        // Task batch 1: fused Gate+Up for all experts. Task id encodes
        // (bucket, projection, panel): gate panels first, then up panels
        // per bucket, keeping same-expert tasks adjacent in the queue.
        let inter_panels = self.experts[0].gate.n_panels();
        let tasks_per_bucket = 2 * inter_panels;
        let n_tasks1 = buckets.len() * tasks_per_bucket;
        {
            descs.clear();
            for b in buckets.iter_mut() {
                descs.push(PanelDesc {
                    expert: b.expert,
                    input: &b.x,
                    out: OutPtr(b.gu.as_mut_slice().as_mut_ptr()),
                    t_e: b.token_ids.len(),
                });
            }
            let descs = &*descs;
            let run = |task: usize| {
                let b = &descs[task / tasks_per_bucket];
                // SAFETY: descriptors are filled immediately above from
                // live buckets and consumed before the buckets move.
                let input = unsafe { &*b.input };
                let slot = task % tasks_per_bucket;
                let (proj, panel) = if slot < inter_panels {
                    (&self.experts[b.expert].gate, slot)
                } else {
                    (&self.experts[b.expert].up, slot - inter_panels)
                };
                let class = self.backend.kernel_for(b.t_e);
                // Gate writes columns [panel*NR ..], Up writes columns
                // [inter + panel*NR ..] of the fused `gu` buffer.
                let col_off = if slot < inter_panels { 0 } else { self.inter };
                let shifted = OutPtr(
                    // SAFETY: `gu` is `t_e x 2*inter`; offsetting by
                    // `col_off <= inter` keeps all panel writes
                    // (`col_off + panel*NR + NR <= 2*inter`) in bounds.
                    unsafe { b.out.0.add(col_off) },
                );
                run_panel(input, proj, shifted, 2 * self.inter, panel, class);
            };
            match pool {
                Some(p) => p.run(n_tasks1, policy, run),
                None => (0..n_tasks1).for_each(run),
            }
        }

        // Barrier: combine SwiGLU elementwise per bucket.
        {
            let combine = |bi: usize| {
                // SAFETY note: serial/parallel over buckets; each task
                // touches only its own bucket via raw splitting below.
                let b_ptr = SyncBucketPtr(buckets.as_ptr() as *mut Bucket);
                // SAFETY: Each task index `bi` touches a distinct bucket.
                let b = unsafe { &mut *b_ptr.0.add(bi) };
                let inter = self.inter;
                for t in 0..b.token_ids.len() {
                    let gu = b.gu.row(t);
                    let (g, u) = gu.split_at(inter);
                    // Work around aliasing: copy combine into h.
                    let h = b.h.row_mut(t);
                    swiglu_combine(g, u, h);
                }
            };
            match pool {
                Some(p) => p.run(buckets.len(), policy, combine),
                None => (0..buckets.len()).for_each(combine),
            }
        }

        // Task batch 2: Down projections of all experts.
        let hidden_panels = self.experts[0].down.n_panels();
        let n_tasks2 = buckets.len() * hidden_panels;
        {
            descs.clear();
            for b in buckets.iter_mut() {
                descs.push(PanelDesc {
                    expert: b.expert,
                    input: &b.h,
                    out: OutPtr(b.d.as_mut_slice().as_mut_ptr()),
                    t_e: b.token_ids.len(),
                });
            }
            let descs = &*descs;
            let run = |task: usize| {
                let b = &descs[task / hidden_panels];
                // SAFETY: as for phase 1.
                let input = unsafe { &*b.input };
                let panel = task % hidden_panels;
                let class = self.backend.kernel_for(b.t_e);
                run_panel(input, &self.experts[b.expert].down, b.out, self.hidden, panel, class);
            };
            match pool {
                Some(p) => p.run(n_tasks2, policy, run),
                None => (0..n_tasks2).for_each(run),
            }
        }
        descs.clear();
    }

    /// Gathers tokens per expert into `ws.buckets`, drawing all scratch
    /// matrices from the workspace arena and reusing the gather tables'
    /// capacity.
    fn build_buckets(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        ws: &mut MoeWorkspace,
    ) -> Result<(), KernelError> {
        if ws.gather.len() < self.experts.len() {
            ws.gather.resize_with(self.experts.len(), Default::default);
        }
        for (ids, wgts) in ws.gather.iter_mut() {
            ids.clear();
            wgts.clear();
        }
        for (t, a) in routing.assignments.iter().enumerate() {
            for &(e, w) in a {
                ws.gather[e].0.push(t);
                ws.gather[e].1.push(w);
            }
        }
        let shape = |err: kt_tensor::TensorError| KernelError::shape(err.to_string());
        for e in 0..self.experts.len() {
            if ws.gather[e].0.is_empty() {
                continue;
            }
            let te = ws.gather[e].0.len();
            let mut xe = ws.arena.checkout(te, self.hidden).map_err(shape)?;
            for (row, &t) in ws.gather[e].0.iter().enumerate() {
                xe.row_mut(row).copy_from_slice(x.row(t));
            }
            let gu = ws.arena.checkout(te, 2 * self.inter).map_err(shape)?;
            let h = ws.arena.checkout(te, self.inter).map_err(shape)?;
            let d = ws.arena.checkout(te, self.hidden).map_err(shape)?;
            ws.buckets.push(Bucket {
                expert: e,
                token_ids: std::mem::take(&mut ws.gather[e].0),
                weights: std::mem::take(&mut ws.gather[e].1),
                x: xe,
                gu,
                h,
                d,
            });
        }
        Ok(())
    }

    /// Returns all bucket scratch back to the workspace: matrices to the
    /// arena, id/weight vectors (capacity intact) to the gather table.
    fn retire_buckets(
        gather: &mut [(Vec<usize>, Vec<f32>)],
        buckets: &mut Vec<Bucket>,
        arena: &mut ScratchArena,
    ) {
        for b in buckets.drain(..) {
            let Bucket {
                expert,
                mut token_ids,
                mut weights,
                x,
                gu,
                h,
                d,
            } = b;
            token_ids.clear();
            weights.clear();
            // A stale bucket from a larger pool than the current gather
            // table simply drops its vectors.
            if let Some(slot) = gather.get_mut(expert) {
                slot.0 = token_ids;
                slot.1 = weights;
            }
            arena.restore(x);
            arena.restore(gu);
            arena.restore(h);
            arena.restore(d);
        }
    }

    /// Serializes the pool (backend tag + every expert).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), KernelError> {
        let io = |e: kt_tensor::TensorError| KernelError::config(e.to_string());
        let tag = match self.backend {
            Backend::HybridAmxAvx512 => 0u64,
            Backend::TiledOnly => 1,
            Backend::VectorOnly => 2,
        };
        kt_tensor::serial::write_u64(w, tag).map_err(io)?;
        kt_tensor::serial::write_u64(w, self.experts.len() as u64).map_err(io)?;
        for e in &self.experts {
            e.write_to(w)?;
        }
        Ok(())
    }

    /// Deserializes a pool written by [`FusedMoE::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] on corrupt input.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, KernelError> {
        let io = |e: kt_tensor::TensorError| KernelError::config(e.to_string());
        let backend = match kt_tensor::serial::read_u64(r).map_err(io)? {
            0 => Backend::HybridAmxAvx512,
            1 => Backend::TiledOnly,
            2 => Backend::VectorOnly,
            other => {
                return Err(KernelError::config(format!("unknown backend tag {other}")))
            }
        };
        let n = kt_tensor::serial::read_len(r, 1 << 20).map_err(io)?;
        let experts = (0..n)
            .map(|_| ExpertWeights::read_from(r))
            .collect::<Result<Vec<_>, _>>()?;
        FusedMoE::new(experts, backend)
    }

    /// FLOPs required to execute `routing` (2 ops per multiply-add,
    /// three projections per activation) — used by throughput reports.
    pub fn flops(&self, routing: &MoeRouting) -> u64 {
        let per_activation = 2u64 * 3 * self.hidden as u64 * self.inter as u64;
        per_activation * routing.n_activations() as u64
    }

    /// Weight bytes that must be streamed from memory for `routing`,
    /// counting each activated expert once (decode-phase bandwidth
    /// accounting).
    pub fn weight_bytes(&self, routing: &MoeRouting) -> u64 {
        let mut active = vec![false; self.experts.len()];
        for a in &routing.assignments {
            for &(e, _) in a {
                active[e] = true;
            }
        }
        active
            .iter()
            .zip(&self.experts)
            .filter(|(on, _)| **on)
            .map(|(_, e)| e.stored_bytes() as u64)
            .sum()
    }
}

/// Output token rows owned by one parallel scatter-add task.
const SCATTER_ROWS_PER_TASK: usize = 8;

/// Per-bucket task descriptor for the two GEMM phases. Stored in the
/// workspace (lifetime-free raw pointers) so the descriptor list is
/// reused across calls without allocating.
struct PanelDesc {
    expert: usize,
    /// Phase input (`x` for Gate+Up, `h` for Down).
    input: *const Matrix,
    /// Phase output base pointer (`gu` or `d`).
    out: OutPtr,
    t_e: usize,
}
// SAFETY: descriptors are filled from live buckets at the start of each
// phase and consumed within it; `OutPtr` targets are written at disjoint
// panels per task (see `run_panel`), shared reads of `input` are safe.
unsafe impl Send for PanelDesc {}
unsafe impl Sync for PanelDesc {}

/// Raw output pointer for the parallel scatter-add tasks.
struct ScatterPtr(*mut f32);
// SAFETY: Each scatter task writes a disjoint range of output token
// rows (chunked by `SCATTER_ROWS_PER_TASK`).
unsafe impl Send for ScatterPtr {}
unsafe impl Sync for ScatterPtr {}

/// Raw bucket pointer for the per-bucket SwiGLU combine tasks.
struct SyncBucketPtr(*mut Bucket);
// SAFETY: Each combine task dereferences a distinct bucket index.
unsafe impl Send for SyncBucketPtr {}
unsafe impl Sync for SyncBucketPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::silu;
    use kt_tensor::rng::seeded;

    /// Dense reference MoE: no fusion, no bucketing, no packing tricks.
    fn reference_moe(
        x: &Matrix,
        experts: &[(Matrix, Matrix, Matrix)],
        routing: &MoeRouting,
    ) -> Matrix {
        let hidden = x.cols();
        let mut out = Matrix::zeros(x.rows(), hidden).unwrap();
        for (t, a) in routing.assignments.iter().enumerate() {
            for &(e, wgt) in a {
                let (gate, up, down) = &experts[e];
                let xt = Matrix::from_rows(1, hidden, x.row(t)).unwrap();
                let g = xt.matmul_wt(gate).unwrap();
                let u = xt.matmul_wt(up).unwrap();
                let mut h = Matrix::zeros(1, gate.rows()).unwrap();
                for j in 0..gate.rows() {
                    h.set(0, j, silu(g.get(0, j)) * u.get(0, j));
                }
                let d = h.matmul_wt(down).unwrap();
                for j in 0..hidden {
                    let v = out.get(t, j);
                    out.set(t, j, v + wgt * d.get(0, j));
                }
            }
        }
        out
    }

    fn setup(
        n_experts: usize,
        hidden: usize,
        inter: usize,
        seed: u64,
    ) -> (Vec<(Matrix, Matrix, Matrix)>, FusedMoE) {
        let mut rng = seeded(seed);
        let mut dense = Vec::new();
        let mut packed = Vec::new();
        for _ in 0..n_experts {
            let gate = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
            let up = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
            let down = Matrix::random_kaiming(hidden, inter, &mut rng).unwrap();
            packed.push(
                ExpertWeights::from_matrices(&gate, &up, &down, WeightDtype::F32).unwrap(),
            );
            dense.push((gate, up, down));
        }
        let moe = FusedMoE::new(packed, Backend::HybridAmxAvx512).unwrap();
        (dense, moe)
    }

    fn topk_routing(n_tokens: usize, n_experts: usize, k: usize, seed: u64) -> MoeRouting {
        use rand::Rng;
        let mut rng = seeded(seed);
        let assignments = (0..n_tokens)
            .map(|_| {
                let mut picks: Vec<usize> = (0..n_experts).collect();
                for i in (1..picks.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    picks.swap(i, j);
                }
                picks[..k]
                    .iter()
                    .map(|&e| (e, rng.gen_range(0.05f32..1.0)))
                    .collect()
            })
            .collect();
        MoeRouting::new(assignments)
    }

    #[test]
    fn fused_matches_reference_decode_shape() {
        let (dense, moe) = setup(8, 32, 48, 1);
        let mut rng = seeded(2);
        let x = Matrix::random_uniform(1, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(1, 8, 3, 3);
        let expect = reference_moe(&x, &dense, &routing);
        let got = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let err = expect.relative_error(&got);
        assert!(err < 1e-4, "err={err}");
    }

    #[test]
    fn fused_matches_reference_prefill_shape() {
        let (dense, moe) = setup(6, 32, 40, 4);
        let mut rng = seeded(5);
        let x = Matrix::random_uniform(17, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(17, 6, 2, 6);
        let expect = reference_moe(&x, &dense, &routing);
        let got = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let err = expect.relative_error(&got);
        assert!(err < 1e-4, "err={err}");
    }

    #[test]
    fn parallel_matches_serial_execution() {
        let (_, moe) = setup(8, 32, 48, 7);
        let mut rng = seeded(8);
        let x = Matrix::random_uniform(9, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(9, 8, 4, 9);
        let pool = ThreadPool::new(4).unwrap();
        let serial = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        for policy in [SchedulePolicy::Static, SchedulePolicy::Dynamic] {
            let par = moe.forward(&x, &routing, Some(&pool), policy).unwrap();
            assert_eq!(serial.as_slice(), par.as_slice(), "{policy:?}");
        }
    }

    #[test]
    fn quantized_experts_are_close() {
        let mut rng = seeded(10);
        let hidden = 32;
        let inter = 64;
        let mut dense = Vec::new();
        let mut packed = Vec::new();
        for _ in 0..4 {
            let gate = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
            let up = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
            let down = Matrix::random_kaiming(hidden, inter, &mut rng).unwrap();
            packed.push(
                ExpertWeights::from_matrices(&gate, &up, &down, WeightDtype::Int8 { group: 32 })
                    .unwrap(),
            );
            dense.push((gate, up, down));
        }
        let moe = FusedMoE::new(packed, Backend::HybridAmxAvx512).unwrap();
        let x = Matrix::random_uniform(5, hidden, 1.0, &mut rng).unwrap();
        let routing = topk_routing(5, 4, 2, 11);
        let expect = reference_moe(&x, &dense, &routing);
        let got = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let err = expect.relative_error(&got);
        assert!(err < 0.05, "int8 err={err}");
    }

    #[test]
    fn split_deferred_partitions_by_score() {
        let routing = MoeRouting::new(vec![vec![(0, 0.1), (1, 0.9), (2, 0.5)]]);
        let (imm, def) = routing.split_deferred(2);
        assert_eq!(imm.assignments[0], vec![(1, 0.9), (2, 0.5)]);
        assert_eq!(def.assignments[0], vec![(0, 0.1)]);
        // Immediate + deferred must equal the full computation.
        assert_eq!(imm.n_activations() + def.n_activations(), 3);
    }

    #[test]
    fn deferred_split_forward_sums_to_full_forward() {
        let (_, moe) = setup(8, 32, 48, 12);
        let mut rng = seeded(13);
        let x = Matrix::random_uniform(3, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(3, 8, 4, 14);
        let full = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let (imm, def) = routing.split_deferred(2);
        let mut sum = moe.forward(&x, &imm, None, SchedulePolicy::Dynamic).unwrap();
        moe.forward_accumulate(&x, &def, &mut sum, None, SchedulePolicy::Dynamic)
            .unwrap();
        let err = full.relative_error(&sum);
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn empty_routing_yields_zero_output() {
        let (_, moe) = setup(4, 16, 24, 15);
        let mut rng = seeded(16);
        let x = Matrix::random_uniform(2, 16, 1.0, &mut rng).unwrap();
        let routing = MoeRouting::new(vec![vec![], vec![]]);
        let out = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn routing_validation_errors() {
        let (_, moe) = setup(4, 16, 24, 17);
        let mut rng = seeded(18);
        let x = Matrix::random_uniform(2, 16, 1.0, &mut rng).unwrap();
        // Wrong token count.
        let r = MoeRouting::new(vec![vec![]]);
        assert!(moe.forward(&x, &r, None, SchedulePolicy::Dynamic).is_err());
        // Expert out of range.
        let r = MoeRouting::new(vec![vec![(9, 1.0)], vec![]]);
        assert!(moe.forward(&x, &r, None, SchedulePolicy::Dynamic).is_err());
        // Wrong hidden dim.
        let bad = Matrix::zeros(2, 8).unwrap();
        let r = MoeRouting::new(vec![vec![], vec![]]);
        assert!(moe.forward(&bad, &r, None, SchedulePolicy::Dynamic).is_err());
    }

    #[test]
    fn accounting_counts_flops_and_bytes() {
        let (_, moe) = setup(4, 16, 24, 19);
        let routing = MoeRouting::new(vec![vec![(0, 1.0), (1, 0.5)], vec![(0, 0.3)]]);
        // 3 activations x 3 projections x 2 * 16 * 24 flops.
        assert_eq!(moe.flops(&routing), 3 * 3 * 2 * 16 * 24);
        // Two distinct experts activated.
        let one = moe.expert(0).stored_bytes() as u64;
        assert_eq!(moe.weight_bytes(&routing), 2 * one);
    }

    #[test]
    fn pool_serialization_round_trips() {
        let (_, moe) = setup(4, 32, 48, 30);
        let mut buf = Vec::new();
        moe.write_to(&mut buf).unwrap();
        let loaded = FusedMoE::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.n_experts(), 4);
        let mut rng = seeded(31);
        let x = Matrix::random_uniform(3, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(3, 4, 2, 32);
        let a = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let b = loaded
            .forward(&x, &routing, None, SchedulePolicy::Dynamic)
            .unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "bit-exact after reload");
        // Corrupt backend tag fails cleanly.
        let mut bad = buf.clone();
        bad[0] = 7;
        assert!(FusedMoE::read_from(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn forward_buckets_plus_scatter_matches_forward_bitwise() {
        let (_, moe) = setup(8, 32, 48, 40);
        let mut rng = seeded(41);
        let x = Matrix::random_uniform(7, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(7, 8, 3, 42);
        let mut ws = MoeWorkspace::new();
        let expect = moe
            .forward_with(&x, &routing, None, SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        let outs = moe
            .forward_buckets(&x, &routing, None, SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        assert!(outs.windows(2).all(|w| w[0].expert < w[1].expert));
        let mut got = Matrix::zeros(7, 32).unwrap();
        scatter_bucket_outs(&outs, &mut got).unwrap();
        assert_eq!(expect.as_slice(), got.as_slice(), "bit-exact");
        for b in outs {
            ws.retire_bucket_out(b);
        }
        ws.restore(expect);
        // The workspace is warm and healthy after retirement.
        let again = moe
            .forward(&x, &routing, None, SchedulePolicy::Dynamic)
            .unwrap();
        let warm = moe
            .forward_with(&x, &routing, None, SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        assert_eq!(again.as_slice(), warm.as_slice());
    }

    #[test]
    fn partitioned_buckets_across_workspaces_match_unpartitioned() {
        // Split the routing by expert parity across two workspaces (the
        // dual-device pattern), merge in ascending-expert order: must be
        // bitwise identical to the single-workspace forward.
        let (_, moe) = setup(6, 32, 40, 50);
        let mut rng = seeded(51);
        let x = Matrix::random_uniform(9, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(9, 6, 3, 52);
        let expect = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();

        let split = |keep: &dyn Fn(usize) -> bool| {
            MoeRouting::new(
                routing
                    .assignments
                    .iter()
                    .map(|a| a.iter().copied().filter(|&(e, _)| keep(e)).collect())
                    .collect(),
            )
        };
        let (mut ws_a, mut ws_b) = (MoeWorkspace::new(), MoeWorkspace::new());
        let mut outs = moe
            .forward_buckets(&x, &split(&|e| e % 2 == 0), None, SchedulePolicy::Dynamic, &mut ws_a)
            .unwrap();
        outs.extend(
            moe.forward_buckets(&x, &split(&|e| e % 2 == 1), None, SchedulePolicy::Dynamic, &mut ws_b)
                .unwrap(),
        );
        outs.sort_by_key(|b| b.expert);
        let mut got = Matrix::zeros(9, 32).unwrap();
        scatter_bucket_outs(&outs, &mut got).unwrap();
        assert_eq!(expect.as_slice(), got.as_slice(), "bit-exact across devices");
    }

    #[test]
    fn scatter_bucket_outs_validates_shapes() {
        let (_, moe) = setup(4, 16, 24, 60);
        let mut rng = seeded(61);
        let x = Matrix::random_uniform(2, 16, 1.0, &mut rng).unwrap();
        let routing = topk_routing(2, 4, 2, 62);
        let mut ws = MoeWorkspace::new();
        let outs = moe
            .forward_buckets(&x, &routing, None, SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        // Wrong column count.
        let mut narrow = Matrix::zeros(2, 8).unwrap();
        assert!(scatter_bucket_outs(&outs, &mut narrow).is_err());
        // Token id out of range.
        let mut short = Matrix::zeros(1, 16).unwrap();
        assert!(scatter_bucket_outs(&outs, &mut short).is_err());
        for b in outs {
            ws.retire_bucket_out(b);
        }
    }

    #[test]
    fn rejects_empty_or_mismatched_pools() {
        assert!(FusedMoE::new(vec![], Backend::HybridAmxAvx512).is_err());
        let mut rng = seeded(20);
        let a = ExpertWeights::random(16, 24, WeightDtype::F32, &mut rng).unwrap();
        let b = ExpertWeights::random(16, 32, WeightDtype::F32, &mut rng).unwrap();
        assert!(FusedMoE::new(vec![a, b], Backend::HybridAmxAvx512).is_err());
    }
}
