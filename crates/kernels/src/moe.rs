//! The fused MoE operator (§3.2, "Fused MoE Operator").
//!
//! A MoE layer evaluates, for every routed token, a SwiGLU expert MLP:
//! `down( silu(gate(x)) * up(x) )`, then scatter-adds the result back to
//! the token weighted by its routing score.
//!
//! Naively this is `3 * activated_experts` small GEMMs with a thread
//! barrier after each. The paper fuses them into exactly **two task
//! batches** with one barrier between:
//!
//! * **Batch 1** — Gate and Up projections of *all* activated experts,
//!   merged into one task list (they share inputs and have no mutual
//!   dependency).
//! * **Batch 2** — Down projections of all experts.
//!
//! Task granularity is one (expert matrix, output panel) pair, matching
//! Figure 6 step ① ("expert weight matrices are vertically partitioned
//! into tasks dynamically scheduled across threads"). Tasks of the same
//! expert are adjacent in the queue, so dynamic scheduling naturally
//! co-schedules them — the paper's cache-reuse heuristic.

use kt_tensor::{Matrix, PackedWeights, WeightDtype};
use rand::rngs::StdRng;

use crate::act::swiglu_combine;
use crate::dispatch::Backend;
use crate::error::KernelError;
use crate::gemm::{run_panel, OutPtr};
use crate::schedule::{SchedulePolicy, ThreadPool};

/// The three projection matrices of one expert, packed for the hybrid
/// kernels at load time.
#[derive(Debug, Clone)]
pub struct ExpertWeights {
    /// Gate projection, `inter x hidden`.
    pub gate: PackedWeights,
    /// Up projection, `inter x hidden`.
    pub up: PackedWeights,
    /// Down projection, `hidden x inter`.
    pub down: PackedWeights,
}

impl ExpertWeights {
    /// Packs dense gate/up/down matrices into expert weights.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on inconsistent dimensions and
    /// propagates packing errors.
    pub fn from_matrices(
        gate: &Matrix,
        up: &Matrix,
        down: &Matrix,
        dtype: WeightDtype,
    ) -> Result<Self, KernelError> {
        let hidden = gate.cols();
        let inter = gate.rows();
        if up.rows() != inter || up.cols() != hidden {
            return Err(KernelError::shape(format!(
                "up is {}x{}, expected {inter}x{hidden}",
                up.rows(),
                up.cols()
            )));
        }
        if down.rows() != hidden || down.cols() != inter {
            return Err(KernelError::shape(format!(
                "down is {}x{}, expected {hidden}x{inter}",
                down.rows(),
                down.cols()
            )));
        }
        let pack = |m: &Matrix| {
            PackedWeights::pack(m, dtype).map_err(|e| KernelError::config(e.to_string()))
        };
        Ok(ExpertWeights {
            gate: pack(gate)?,
            up: pack(up)?,
            down: pack(down)?,
        })
    }

    /// Generates a random expert with Kaiming-scaled weights.
    ///
    /// # Errors
    ///
    /// Propagates packing errors (e.g. invalid quantization groups).
    pub fn random(
        hidden: usize,
        inter: usize,
        dtype: WeightDtype,
        rng: &mut StdRng,
    ) -> Result<Self, KernelError> {
        let mk = |r: usize, c: usize, rng: &mut StdRng| {
            Matrix::random_kaiming(r, c, rng).map_err(|e| KernelError::shape(e.to_string()))
        };
        let gate = mk(inter, hidden, rng)?;
        let up = mk(inter, hidden, rng)?;
        let down = mk(hidden, inter, rng)?;
        Self::from_matrices(&gate, &up, &down, dtype)
    }

    /// Hidden (model) dimension.
    pub fn hidden(&self) -> usize {
        self.gate.k()
    }

    /// Intermediate (expert MLP) dimension.
    pub fn inter(&self) -> usize {
        self.gate.n()
    }

    /// Total stored bytes of all three projections.
    pub fn stored_bytes(&self) -> usize {
        self.gate.stored_bytes() + self.up.stored_bytes() + self.down.stored_bytes()
    }

    /// Serializes the expert (three packed projections).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), KernelError> {
        for m in [&self.gate, &self.up, &self.down] {
            m.write_to(w).map_err(|e| KernelError::config(e.to_string()))?;
        }
        Ok(())
    }

    /// Deserializes an expert written by [`ExpertWeights::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] on corrupt input or inconsistent
    /// projection shapes.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, KernelError> {
        fn read(r: &mut impl std::io::Read) -> Result<PackedWeights, KernelError> {
            PackedWeights::read_from(r).map_err(|e| KernelError::config(e.to_string()))
        }
        let gate = read(r)?;
        let up = read(r)?;
        let down = read(r)?;
        let (inter, hidden) = (gate.n(), gate.k());
        if up.n() != inter || up.k() != hidden || down.n() != hidden || down.k() != inter {
            return Err(KernelError::shape(
                "expert projections have inconsistent shapes",
            ));
        }
        Ok(ExpertWeights { gate, up, down })
    }
}

/// Routing decisions for a batch of tokens: `assignments[t]` lists the
/// `(expert_index, routing_weight)` pairs of token `t`.
#[derive(Debug, Clone, Default)]
pub struct MoeRouting {
    /// Per-token `(expert, weight)` activations.
    pub assignments: Vec<Vec<(usize, f32)>>,
}

impl MoeRouting {
    /// Builds a routing table; `assignments[t]` may have any length
    /// (top-k, deferred subsets, empty).
    pub fn new(assignments: Vec<Vec<(usize, f32)>>) -> Self {
        MoeRouting { assignments }
    }

    /// Number of tokens routed.
    pub fn n_tokens(&self) -> usize {
        self.assignments.len()
    }

    /// Total `(token, expert)` activation pairs.
    pub fn n_activations(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// Splits into (immediate, deferred) routings by per-token score
    /// rank: the `n_immediate` highest-weight experts of each token stay
    /// immediate, the rest are deferred (§4.1: "only the top-2 experts
    /// with the highest routing score ... are immediate experts").
    pub fn split_deferred(&self, n_immediate: usize) -> (MoeRouting, MoeRouting) {
        let mut imm = Vec::with_capacity(self.assignments.len());
        let mut def = Vec::with_capacity(self.assignments.len());
        for a in &self.assignments {
            let mut sorted: Vec<(usize, f32)> = a.clone();
            sorted.sort_by(|x, y| y.1.total_cmp(&x.1));
            let split = n_immediate.min(sorted.len());
            imm.push(sorted[..split].to_vec());
            def.push(sorted[split..].to_vec());
        }
        (MoeRouting::new(imm), MoeRouting::new(def))
    }
}

/// Per-expert gathered workspace used inside one forward call.
struct Bucket {
    expert: usize,
    token_ids: Vec<usize>,
    weights: Vec<f32>,
    /// Gathered inputs, `t_e x hidden`.
    x: Matrix,
    /// Fused gate|up outputs, `t_e x (2 * inter)`: columns `0..inter`
    /// are Gate, `inter..2*inter` are Up — one output buffer so the two
    /// projections form a single task batch.
    gu: Matrix,
    /// SwiGLU-combined activations, `t_e x inter`.
    h: Matrix,
    /// Down-projected outputs, `t_e x hidden`.
    d: Matrix,
}

/// The fused MoE operator over a pool of experts.
#[derive(Debug)]
pub struct FusedMoE {
    experts: Vec<ExpertWeights>,
    hidden: usize,
    inter: usize,
    backend: Backend,
}

impl FusedMoE {
    /// Wraps a set of experts (all with identical shapes).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] when `experts` is empty or shapes
    /// disagree.
    pub fn new(experts: Vec<ExpertWeights>, backend: Backend) -> Result<Self, KernelError> {
        let Some(first) = experts.first() else {
            return Err(KernelError::config("FusedMoE requires at least one expert"));
        };
        let hidden = first.hidden();
        let inter = first.inter();
        for (i, e) in experts.iter().enumerate() {
            if e.hidden() != hidden || e.inter() != inter {
                return Err(KernelError::config(format!(
                    "expert {i} has shape {}x{}, expected {hidden}x{inter}",
                    e.hidden(),
                    e.inter()
                )));
            }
        }
        Ok(FusedMoE {
            experts,
            hidden,
            inter,
            backend,
        })
    }

    /// Builds a random MoE pool.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn random(
        n_experts: usize,
        hidden: usize,
        inter: usize,
        dtype: WeightDtype,
        backend: Backend,
        rng: &mut StdRng,
    ) -> Result<Self, KernelError> {
        let experts = (0..n_experts)
            .map(|_| ExpertWeights::random(hidden, inter, dtype, rng))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(experts, backend)
    }

    /// Number of experts in the pool.
    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Intermediate dimension.
    pub fn inter(&self) -> usize {
        self.inter
    }

    /// Direct access to an expert's packed weights.
    pub fn expert(&self, i: usize) -> &ExpertWeights {
        &self.experts[i]
    }

    /// Computes the MoE output for `x` (`tokens x hidden`) under
    /// `routing` and returns it as a fresh matrix (no residual).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on dimension or routing-index
    /// mismatches.
    pub fn forward(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        pool: Option<&ThreadPool>,
        policy: SchedulePolicy,
    ) -> Result<Matrix, KernelError> {
        let mut out = Matrix::zeros(x.rows(), self.hidden)
            .map_err(|e| KernelError::shape(e.to_string()))?;
        self.forward_accumulate(x, routing, &mut out, pool, policy)?;
        Ok(out)
    }

    /// Computes the MoE output and **adds** it into `out` (residual-style
    /// accumulation; used directly by Expert Deferral, which adds
    /// deferred contributions into a later layer's stream).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shape`] on dimension or routing-index
    /// mismatches.
    pub fn forward_accumulate(
        &self,
        x: &Matrix,
        routing: &MoeRouting,
        out: &mut Matrix,
        pool: Option<&ThreadPool>,
        policy: SchedulePolicy,
    ) -> Result<(), KernelError> {
        if x.cols() != self.hidden {
            return Err(KernelError::shape(format!(
                "x has {} cols, expected hidden={}",
                x.cols(),
                self.hidden
            )));
        }
        if routing.n_tokens() != x.rows() {
            return Err(KernelError::shape(format!(
                "routing covers {} tokens but x has {}",
                routing.n_tokens(),
                x.rows()
            )));
        }
        if out.rows() != x.rows() || out.cols() != self.hidden {
            return Err(KernelError::shape(format!(
                "out is {}x{}, expected {}x{}",
                out.rows(),
                out.cols(),
                x.rows(),
                self.hidden
            )));
        }
        for (t, a) in routing.assignments.iter().enumerate() {
            for &(e, _) in a {
                if e >= self.experts.len() {
                    return Err(KernelError::shape(format!(
                        "token {t} routed to expert {e}, pool has {}",
                        self.experts.len()
                    )));
                }
            }
        }

        // Gather tokens per expert.
        let mut buckets = self.build_buckets(x, routing)?;
        if buckets.is_empty() {
            return Ok(());
        }

        // Task batch 1: fused Gate+Up for all experts. Task id encodes
        // (bucket, projection, panel): gate panels first, then up panels
        // per bucket, keeping same-expert tasks adjacent in the queue.
        let inter_panels = self.experts[0].gate.n_panels();
        let tasks_per_bucket = 2 * inter_panels;
        let n_tasks1 = buckets.len() * tasks_per_bucket;
        {
            let descs: Vec<Phase1Task> = buckets
                .iter_mut()
                .map(|b| Phase1Task {
                    expert: b.expert,
                    x: &b.x,
                    gu: OutPtr(b.gu.as_mut_slice().as_mut_ptr()),
                    t_e: b.token_ids.len(),
                })
                .collect();
            let run = |task: usize| {
                let b = &descs[task / tasks_per_bucket];
                let slot = task % tasks_per_bucket;
                let (proj, panel) = if slot < inter_panels {
                    (&self.experts[b.expert].gate, slot)
                } else {
                    (&self.experts[b.expert].up, slot - inter_panels)
                };
                let class = self.backend.kernel_for(b.t_e);
                // Gate writes columns [panel*NR ..], Up writes columns
                // [inter + panel*NR ..] of the fused `gu` buffer.
                let col_off = if slot < inter_panels { 0 } else { self.inter };
                let shifted = OutPtr(
                    // SAFETY: `gu` is `t_e x 2*inter`; offsetting by
                    // `col_off <= inter` keeps all panel writes
                    // (`col_off + panel*NR + NR <= 2*inter`) in bounds.
                    unsafe { b.gu.0.add(col_off) },
                );
                run_panel(b.x, proj, shifted, 2 * self.inter, panel, class);
            };
            match pool {
                Some(p) => p.run(n_tasks1, policy, run),
                None => (0..n_tasks1).for_each(run),
            }
        }

        // Barrier: combine SwiGLU elementwise per bucket.
        {
            let combine = |bi: usize| {
                // SAFETY note: serial/parallel over buckets; each task
                // touches only its own bucket via raw splitting below.
                let b_ptr = SyncBucketPtr(buckets.as_ptr() as *mut Bucket);
                // SAFETY: Each task index `bi` touches a distinct bucket.
                let b = unsafe { &mut *b_ptr.0.add(bi) };
                let inter = self.inter;
                for t in 0..b.token_ids.len() {
                    let gu = b.gu.row(t);
                    let (g, u) = gu.split_at(inter);
                    // Work around aliasing: copy combine into h.
                    let h = b.h.row_mut(t);
                    swiglu_combine(g, u, h);
                }
            };
            match pool {
                Some(p) => p.run(buckets.len(), policy, combine),
                None => (0..buckets.len()).for_each(combine),
            }
        }

        // Task batch 2: Down projections of all experts.
        let hidden_panels = self.experts[0].down.n_panels();
        let n_tasks2 = buckets.len() * hidden_panels;
        {
            let descs: Vec<Phase2Task> = buckets
                .iter_mut()
                .map(|b| Phase2Task {
                    expert: b.expert,
                    h: &b.h,
                    d: OutPtr(b.d.as_mut_slice().as_mut_ptr()),
                    t_e: b.token_ids.len(),
                })
                .collect();
            let run = |task: usize| {
                let b = &descs[task / hidden_panels];
                let panel = task % hidden_panels;
                let class = self.backend.kernel_for(b.t_e);
                run_panel(b.h, &self.experts[b.expert].down, b.d, self.hidden, panel, class);
            };
            match pool {
                Some(p) => p.run(n_tasks2, policy, run),
                None => (0..n_tasks2).for_each(run),
            }
        }

        // Weighted scatter-add back to token order (serial: O(T*hidden),
        // negligible next to the GEMMs, and avoids write contention).
        for b in &buckets {
            for (row, (&t, &wgt)) in b.token_ids.iter().zip(&b.weights).enumerate() {
                let src = b.d.row(row);
                let dst = out.row_mut(t);
                for (o, s) in dst.iter_mut().zip(src) {
                    *o += wgt * s;
                }
            }
        }
        Ok(())
    }

    fn build_buckets(&self, x: &Matrix, routing: &MoeRouting) -> Result<Vec<Bucket>, KernelError> {
        let mut per_expert: Vec<(Vec<usize>, Vec<f32>)> =
            vec![(Vec::new(), Vec::new()); self.experts.len()];
        for (t, a) in routing.assignments.iter().enumerate() {
            for &(e, w) in a {
                per_expert[e].0.push(t);
                per_expert[e].1.push(w);
            }
        }
        let mut buckets = Vec::new();
        for (e, (ids, ws)) in per_expert.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let te = ids.len();
            let mut xe = Matrix::zeros(te, self.hidden)
                .map_err(|err| KernelError::shape(err.to_string()))?;
            for (row, &t) in ids.iter().enumerate() {
                xe.row_mut(row).copy_from_slice(x.row(t));
            }
            let mk = |r: usize, c: usize| {
                Matrix::zeros(r, c).map_err(|err| KernelError::shape(err.to_string()))
            };
            buckets.push(Bucket {
                expert: e,
                token_ids: ids,
                weights: ws,
                x: xe,
                gu: mk(te, 2 * self.inter)?,
                h: mk(te, self.inter)?,
                d: mk(te, self.hidden)?,
            });
        }
        Ok(buckets)
    }

    /// Serializes the pool (backend tag + every expert).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), KernelError> {
        let io = |e: kt_tensor::TensorError| KernelError::config(e.to_string());
        let tag = match self.backend {
            Backend::HybridAmxAvx512 => 0u64,
            Backend::TiledOnly => 1,
            Backend::VectorOnly => 2,
        };
        kt_tensor::serial::write_u64(w, tag).map_err(io)?;
        kt_tensor::serial::write_u64(w, self.experts.len() as u64).map_err(io)?;
        for e in &self.experts {
            e.write_to(w)?;
        }
        Ok(())
    }

    /// Deserializes a pool written by [`FusedMoE::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Config`] on corrupt input.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, KernelError> {
        let io = |e: kt_tensor::TensorError| KernelError::config(e.to_string());
        let backend = match kt_tensor::serial::read_u64(r).map_err(io)? {
            0 => Backend::HybridAmxAvx512,
            1 => Backend::TiledOnly,
            2 => Backend::VectorOnly,
            other => {
                return Err(KernelError::config(format!("unknown backend tag {other}")))
            }
        };
        let n = kt_tensor::serial::read_len(r, 1 << 20).map_err(io)?;
        let experts = (0..n)
            .map(|_| ExpertWeights::read_from(r))
            .collect::<Result<Vec<_>, _>>()?;
        FusedMoE::new(experts, backend)
    }

    /// FLOPs required to execute `routing` (2 ops per multiply-add,
    /// three projections per activation) — used by throughput reports.
    pub fn flops(&self, routing: &MoeRouting) -> u64 {
        let per_activation = 2u64 * 3 * self.hidden as u64 * self.inter as u64;
        per_activation * routing.n_activations() as u64
    }

    /// Weight bytes that must be streamed from memory for `routing`,
    /// counting each activated expert once (decode-phase bandwidth
    /// accounting).
    pub fn weight_bytes(&self, routing: &MoeRouting) -> u64 {
        let mut active = vec![false; self.experts.len()];
        for a in &routing.assignments {
            for &(e, _) in a {
                active[e] = true;
            }
        }
        active
            .iter()
            .zip(&self.experts)
            .filter(|(on, _)| **on)
            .map(|(_, e)| e.stored_bytes() as u64)
            .sum()
    }
}

/// Immutable per-bucket descriptor for phase-1 tasks.
struct Phase1Task<'a> {
    expert: usize,
    x: &'a Matrix,
    gu: OutPtr,
    t_e: usize,
}
// SAFETY: `OutPtr` targets are written at disjoint panels per task (see
// `run_panel`); shared reads of `x` are safe.
unsafe impl Sync for Phase1Task<'_> {}

/// Immutable per-bucket descriptor for phase-2 tasks.
struct Phase2Task<'a> {
    expert: usize,
    h: &'a Matrix,
    d: OutPtr,
    t_e: usize,
}
// SAFETY: As for `Phase1Task`.
unsafe impl Sync for Phase2Task<'_> {}

/// Raw bucket pointer for the per-bucket SwiGLU combine tasks.
struct SyncBucketPtr(*mut Bucket);
// SAFETY: Each combine task dereferences a distinct bucket index.
unsafe impl Send for SyncBucketPtr {}
unsafe impl Sync for SyncBucketPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::silu;
    use kt_tensor::rng::seeded;

    /// Dense reference MoE: no fusion, no bucketing, no packing tricks.
    fn reference_moe(
        x: &Matrix,
        experts: &[(Matrix, Matrix, Matrix)],
        routing: &MoeRouting,
    ) -> Matrix {
        let hidden = x.cols();
        let mut out = Matrix::zeros(x.rows(), hidden).unwrap();
        for (t, a) in routing.assignments.iter().enumerate() {
            for &(e, wgt) in a {
                let (gate, up, down) = &experts[e];
                let xt = Matrix::from_rows(1, hidden, x.row(t)).unwrap();
                let g = xt.matmul_wt(gate).unwrap();
                let u = xt.matmul_wt(up).unwrap();
                let mut h = Matrix::zeros(1, gate.rows()).unwrap();
                for j in 0..gate.rows() {
                    h.set(0, j, silu(g.get(0, j)) * u.get(0, j));
                }
                let d = h.matmul_wt(down).unwrap();
                for j in 0..hidden {
                    let v = out.get(t, j);
                    out.set(t, j, v + wgt * d.get(0, j));
                }
            }
        }
        out
    }

    fn setup(
        n_experts: usize,
        hidden: usize,
        inter: usize,
        seed: u64,
    ) -> (Vec<(Matrix, Matrix, Matrix)>, FusedMoE) {
        let mut rng = seeded(seed);
        let mut dense = Vec::new();
        let mut packed = Vec::new();
        for _ in 0..n_experts {
            let gate = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
            let up = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
            let down = Matrix::random_kaiming(hidden, inter, &mut rng).unwrap();
            packed.push(
                ExpertWeights::from_matrices(&gate, &up, &down, WeightDtype::F32).unwrap(),
            );
            dense.push((gate, up, down));
        }
        let moe = FusedMoE::new(packed, Backend::HybridAmxAvx512).unwrap();
        (dense, moe)
    }

    fn topk_routing(n_tokens: usize, n_experts: usize, k: usize, seed: u64) -> MoeRouting {
        use rand::Rng;
        let mut rng = seeded(seed);
        let assignments = (0..n_tokens)
            .map(|_| {
                let mut picks: Vec<usize> = (0..n_experts).collect();
                for i in (1..picks.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    picks.swap(i, j);
                }
                picks[..k]
                    .iter()
                    .map(|&e| (e, rng.gen_range(0.05f32..1.0)))
                    .collect()
            })
            .collect();
        MoeRouting::new(assignments)
    }

    #[test]
    fn fused_matches_reference_decode_shape() {
        let (dense, moe) = setup(8, 32, 48, 1);
        let mut rng = seeded(2);
        let x = Matrix::random_uniform(1, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(1, 8, 3, 3);
        let expect = reference_moe(&x, &dense, &routing);
        let got = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let err = expect.relative_error(&got);
        assert!(err < 1e-4, "err={err}");
    }

    #[test]
    fn fused_matches_reference_prefill_shape() {
        let (dense, moe) = setup(6, 32, 40, 4);
        let mut rng = seeded(5);
        let x = Matrix::random_uniform(17, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(17, 6, 2, 6);
        let expect = reference_moe(&x, &dense, &routing);
        let got = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let err = expect.relative_error(&got);
        assert!(err < 1e-4, "err={err}");
    }

    #[test]
    fn parallel_matches_serial_execution() {
        let (_, moe) = setup(8, 32, 48, 7);
        let mut rng = seeded(8);
        let x = Matrix::random_uniform(9, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(9, 8, 4, 9);
        let pool = ThreadPool::new(4).unwrap();
        let serial = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        for policy in [SchedulePolicy::Static, SchedulePolicy::Dynamic] {
            let par = moe.forward(&x, &routing, Some(&pool), policy).unwrap();
            assert_eq!(serial.as_slice(), par.as_slice(), "{policy:?}");
        }
    }

    #[test]
    fn quantized_experts_are_close() {
        let mut rng = seeded(10);
        let hidden = 32;
        let inter = 64;
        let mut dense = Vec::new();
        let mut packed = Vec::new();
        for _ in 0..4 {
            let gate = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
            let up = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
            let down = Matrix::random_kaiming(hidden, inter, &mut rng).unwrap();
            packed.push(
                ExpertWeights::from_matrices(&gate, &up, &down, WeightDtype::Int8 { group: 32 })
                    .unwrap(),
            );
            dense.push((gate, up, down));
        }
        let moe = FusedMoE::new(packed, Backend::HybridAmxAvx512).unwrap();
        let x = Matrix::random_uniform(5, hidden, 1.0, &mut rng).unwrap();
        let routing = topk_routing(5, 4, 2, 11);
        let expect = reference_moe(&x, &dense, &routing);
        let got = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let err = expect.relative_error(&got);
        assert!(err < 0.05, "int8 err={err}");
    }

    #[test]
    fn split_deferred_partitions_by_score() {
        let routing = MoeRouting::new(vec![vec![(0, 0.1), (1, 0.9), (2, 0.5)]]);
        let (imm, def) = routing.split_deferred(2);
        assert_eq!(imm.assignments[0], vec![(1, 0.9), (2, 0.5)]);
        assert_eq!(def.assignments[0], vec![(0, 0.1)]);
        // Immediate + deferred must equal the full computation.
        assert_eq!(imm.n_activations() + def.n_activations(), 3);
    }

    #[test]
    fn deferred_split_forward_sums_to_full_forward() {
        let (_, moe) = setup(8, 32, 48, 12);
        let mut rng = seeded(13);
        let x = Matrix::random_uniform(3, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(3, 8, 4, 14);
        let full = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let (imm, def) = routing.split_deferred(2);
        let mut sum = moe.forward(&x, &imm, None, SchedulePolicy::Dynamic).unwrap();
        moe.forward_accumulate(&x, &def, &mut sum, None, SchedulePolicy::Dynamic)
            .unwrap();
        let err = full.relative_error(&sum);
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn empty_routing_yields_zero_output() {
        let (_, moe) = setup(4, 16, 24, 15);
        let mut rng = seeded(16);
        let x = Matrix::random_uniform(2, 16, 1.0, &mut rng).unwrap();
        let routing = MoeRouting::new(vec![vec![], vec![]]);
        let out = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn routing_validation_errors() {
        let (_, moe) = setup(4, 16, 24, 17);
        let mut rng = seeded(18);
        let x = Matrix::random_uniform(2, 16, 1.0, &mut rng).unwrap();
        // Wrong token count.
        let r = MoeRouting::new(vec![vec![]]);
        assert!(moe.forward(&x, &r, None, SchedulePolicy::Dynamic).is_err());
        // Expert out of range.
        let r = MoeRouting::new(vec![vec![(9, 1.0)], vec![]]);
        assert!(moe.forward(&x, &r, None, SchedulePolicy::Dynamic).is_err());
        // Wrong hidden dim.
        let bad = Matrix::zeros(2, 8).unwrap();
        let r = MoeRouting::new(vec![vec![], vec![]]);
        assert!(moe.forward(&bad, &r, None, SchedulePolicy::Dynamic).is_err());
    }

    #[test]
    fn accounting_counts_flops_and_bytes() {
        let (_, moe) = setup(4, 16, 24, 19);
        let routing = MoeRouting::new(vec![vec![(0, 1.0), (1, 0.5)], vec![(0, 0.3)]]);
        // 3 activations x 3 projections x 2 * 16 * 24 flops.
        assert_eq!(moe.flops(&routing), 3 * 3 * 2 * 16 * 24);
        // Two distinct experts activated.
        let one = moe.expert(0).stored_bytes() as u64;
        assert_eq!(moe.weight_bytes(&routing), 2 * one);
    }

    #[test]
    fn pool_serialization_round_trips() {
        let (_, moe) = setup(4, 32, 48, 30);
        let mut buf = Vec::new();
        moe.write_to(&mut buf).unwrap();
        let loaded = FusedMoE::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.n_experts(), 4);
        let mut rng = seeded(31);
        let x = Matrix::random_uniform(3, 32, 1.0, &mut rng).unwrap();
        let routing = topk_routing(3, 4, 2, 32);
        let a = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let b = loaded
            .forward(&x, &routing, None, SchedulePolicy::Dynamic)
            .unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "bit-exact after reload");
        // Corrupt backend tag fails cleanly.
        let mut bad = buf.clone();
        bad[0] = 7;
        assert!(FusedMoE::read_from(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn rejects_empty_or_mismatched_pools() {
        assert!(FusedMoE::new(vec![], Backend::HybridAmxAvx512).is_err());
        let mut rng = seeded(20);
        let a = ExpertWeights::random(16, 24, WeightDtype::F32, &mut rng).unwrap();
        let b = ExpertWeights::random(16, 32, WeightDtype::F32, &mut rng).unwrap();
        assert!(FusedMoE::new(vec![a, b], Backend::HybridAmxAvx512).is_err());
    }
}
