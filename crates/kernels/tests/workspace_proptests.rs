//! Property tests for the step-workspace layer: MoE forwards that reuse
//! a [`MoeWorkspace`] must be **bit-identical** to fresh-allocation
//! forwards — across random shapes, batch mixes, consecutive steps, and
//! after a failed step or a poisoned (NaN-filled) arena. Checkouts are
//! zeroed exactly like `Matrix::zeros` and the floating-point
//! accumulation order is unchanged, so equality here is `==` on raw
//! f32 slices, not a tolerance.

use kt_kernels::dispatch::Backend;
use kt_kernels::{FusedMoE, MoeRouting, MoeWorkspace, SchedulePolicy, ThreadPool};
use kt_tensor::rng::seeded;
use kt_tensor::{Matrix, WeightDtype};
use proptest::prelude::*;
use rand::Rng;

const HIDDEN: usize = 32;
const INTER: usize = 40;
const N_EXPERTS: usize = 6;

fn pool_of_experts(seed: u64) -> FusedMoE {
    let mut rng = seeded(seed);
    FusedMoE::random(
        N_EXPERTS,
        HIDDEN,
        INTER,
        WeightDtype::F32,
        Backend::HybridAmxAvx512,
        &mut rng,
    )
    .unwrap()
}

fn topk_routing(n_tokens: usize, k: usize, seed: u64) -> MoeRouting {
    let mut rng = seeded(seed);
    let assignments = (0..n_tokens)
        .map(|_| {
            let mut picks: Vec<usize> = (0..N_EXPERTS).collect();
            for i in (1..picks.len()).rev() {
                let j = rng.gen_range(0..=i);
                picks.swap(i, j);
            }
            picks[..k]
                .iter()
                .map(|&e| (e, rng.gen_range(0.05f32..1.0)))
                .collect()
        })
        .collect();
    MoeRouting::new(assignments)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A sequence of forwards sharing one workspace produces exactly the
    /// bytes of independent fresh-allocation forwards, step after step,
    /// as shapes and batch mixes vary (decode-like single rows through
    /// prefill-like batches).
    #[test]
    fn workspace_reuse_is_bit_identical_across_steps(
        seed in 0u64..1_000,
        steps in proptest::collection::vec((1usize..=9, 1usize..=N_EXPERTS), 1..5),
    ) {
        let moe = pool_of_experts(seed);
        let mut ws = MoeWorkspace::new();
        let mut rng = seeded(seed.wrapping_add(1));
        for (i, &(n_tokens, k)) in steps.iter().enumerate() {
            let x = Matrix::random_uniform(n_tokens, HIDDEN, 1.0, &mut rng).unwrap();
            let routing = topk_routing(n_tokens, k, seed.wrapping_add(i as u64));
            let fresh = moe
                .forward(&x, &routing, None, SchedulePolicy::Dynamic)
                .unwrap();
            let reused = moe
                .forward_with(&x, &routing, None, SchedulePolicy::Dynamic, &mut ws)
                .unwrap();
            prop_assert_eq!(fresh.as_slice(), reused.as_slice(), "step {}", i);
            ws.restore(reused);
        }
    }

    /// Steady-state invariant: once the workspace has seen a shape, a
    /// second forward of the same shape performs zero fresh heap
    /// allocations.
    #[test]
    fn warmed_workspace_allocates_nothing(
        seed in 0u64..1_000,
        n_tokens in 1usize..=8,
        k in 1usize..=N_EXPERTS,
    ) {
        let moe = pool_of_experts(seed);
        let mut ws = MoeWorkspace::new();
        let mut rng = seeded(seed.wrapping_add(2));
        let x = Matrix::random_uniform(n_tokens, HIDDEN, 1.0, &mut rng).unwrap();
        let routing = topk_routing(n_tokens, k, seed);
        let warm = moe
            .forward_with(&x, &routing, None, SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        ws.restore(warm);
        let before = ws.arena_stats().allocations;
        let out = moe
            .forward_with(&x, &routing, None, SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        ws.restore(out);
        prop_assert_eq!(ws.arena_stats().allocations, before);
    }

    /// Fault containment: a forward that fails mid-step (a token routed
    /// to a nonexistent expert) followed by a NaN-poisoned arena must
    /// leak nothing — the next forward through the same workspace is
    /// still bit-identical to a fresh one, serial and pooled alike.
    #[test]
    fn faulted_then_poisoned_workspace_leaks_nothing(
        seed in 0u64..1_000,
        n_tokens in 1usize..=9,
        k in 1usize..=N_EXPERTS,
    ) {
        let moe = pool_of_experts(seed);
        let mut ws = MoeWorkspace::new();
        let mut rng = seeded(seed.wrapping_add(3));

        // Step 1: a good forward warms the workspace.
        let x0 = Matrix::random_uniform(4, HIDDEN, 1.0, &mut rng).unwrap();
        let r0 = topk_routing(4, 2, seed);
        let warm = moe
            .forward_with(&x0, &r0, None, SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        ws.restore(warm);

        // Step 2: injected expert fault — routing names an expert the
        // pool does not have, so the step fails.
        let bad = MoeRouting::new(vec![vec![(N_EXPERTS + 7, 1.0)]]);
        let x_bad = Matrix::random_uniform(1, HIDDEN, 1.0, &mut rng).unwrap();
        prop_assert!(moe
            .forward_with(&x_bad, &bad, None, SchedulePolicy::Dynamic, &mut ws)
            .is_err());

        // Poison every pooled buffer with NaN: if any forward ever read
        // stale workspace memory, the NaNs would propagate.
        ws.poison_for_test();

        // Step 3: equivalence must still hold bitwise.
        let x1 = Matrix::random_uniform(n_tokens, HIDDEN, 1.0, &mut rng).unwrap();
        let r1 = topk_routing(n_tokens, k, seed.wrapping_add(4));
        let fresh = moe
            .forward(&x1, &r1, None, SchedulePolicy::Dynamic)
            .unwrap();
        prop_assert!(fresh.as_slice().iter().all(|v| v.is_finite()));
        let reused = moe
            .forward_with(&x1, &r1, None, SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        prop_assert_eq!(fresh.as_slice(), reused.as_slice());
        ws.restore(reused);

        // And the pooled path reads the same workspace without drift.
        let pool = ThreadPool::new(3).unwrap();
        ws.poison_for_test();
        let pooled = moe
            .forward_with(&x1, &r1, Some(&pool), SchedulePolicy::Dynamic, &mut ws)
            .unwrap();
        prop_assert_eq!(fresh.as_slice(), pooled.as_slice());
        ws.restore(pooled);
    }
}
