//! Concurrency tests for the parallel weighted scatter-add in
//! [`FusedMoE`]: every parallel task owns a disjoint chunk of output
//! token rows and walks the expert buckets in bucket order, so the
//! floating-point accumulation order per token is exactly the serial
//! order — outputs must match the serial path **bitwise**, even under
//! adversarial routings.

use kt_kernels::dispatch::Backend;
use kt_kernels::{FusedMoE, MoeRouting, SchedulePolicy, ThreadPool};
use kt_tensor::rng::seeded;
use kt_tensor::{Matrix, WeightDtype};

const HIDDEN: usize = 32;
const INTER: usize = 40;
const N_EXPERTS: usize = 5;

fn pool_of_experts(seed: u64) -> FusedMoE {
    let mut rng = seeded(seed);
    FusedMoE::random(
        N_EXPERTS,
        HIDDEN,
        INTER,
        WeightDtype::F32,
        Backend::HybridAmxAvx512,
        &mut rng,
    )
    .unwrap()
}

/// Serial and pooled scatter-add must agree bitwise for `routing`,
/// across worker counts (1 worker, fewer workers than chunks, more
/// workers than chunks) and both scheduling policies.
fn assert_bitwise_parallel(moe: &FusedMoE, x: &Matrix, routing: &MoeRouting, what: &str) {
    let serial = moe
        .forward(x, routing, None, SchedulePolicy::Dynamic)
        .unwrap();
    for n_workers in [1usize, 3, 8] {
        let pool = ThreadPool::new(n_workers).unwrap();
        for policy in [SchedulePolicy::Static, SchedulePolicy::Dynamic] {
            let par = moe.forward(x, routing, Some(&pool), policy).unwrap();
            assert_eq!(
                serial.as_slice(),
                par.as_slice(),
                "{what}: {n_workers} workers, {policy:?}"
            );
        }
    }
}

/// All tokens collapse onto a single expert: one giant bucket spanning
/// every row chunk, maximal contention on the bucket's output rows.
#[test]
fn all_tokens_to_one_expert_matches_serial() {
    let moe = pool_of_experts(21);
    let mut rng = seeded(22);
    // 37 rows > several 8-row scatter chunks, so many tasks touch the
    // same bucket.
    let x = Matrix::random_uniform(37, HIDDEN, 1.0, &mut rng).unwrap();
    let routing = MoeRouting::new(vec![vec![(2, 0.7)]; 37]);
    assert_bitwise_parallel(&moe, &x, &routing, "all→one");
}

/// One token activates every expert: every bucket holds the same single
/// token, so one row receives contributions from all buckets and the
/// bucket iteration order IS the accumulation order.
#[test]
fn one_token_to_all_experts_matches_serial() {
    let moe = pool_of_experts(23);
    let mut rng = seeded(24);
    let x = Matrix::random_uniform(1, HIDDEN, 1.0, &mut rng).unwrap();
    let weights: Vec<(usize, f32)> = (0..N_EXPERTS)
        .map(|e| (e, 0.1 + 0.15 * e as f32))
        .collect();
    let routing = MoeRouting::new(vec![weights]);
    assert_bitwise_parallel(&moe, &x, &routing, "one→all");
}

/// Sparse adversarial mix: most experts empty, the active ones shared
/// by interleaved token subsets, plus rows routed nowhere at all (their
/// output rows must stay exactly zero).
#[test]
fn empty_experts_and_unrouted_rows_match_serial() {
    let moe = pool_of_experts(25);
    let mut rng = seeded(26);
    let n_tokens = 29;
    let x = Matrix::random_uniform(n_tokens, HIDDEN, 1.0, &mut rng).unwrap();
    let assignments: Vec<Vec<(usize, f32)>> = (0..n_tokens)
        .map(|t| match t % 4 {
            0 => vec![(0, 0.9)],
            1 => vec![(4, 0.4), (0, 0.6)],
            2 => Vec::new(), // routed to no expert at all
            _ => vec![(4, 1.0)],
        })
        .collect();
    let routing = MoeRouting::new(assignments);
    assert_bitwise_parallel(&moe, &x, &routing, "sparse");

    // Unrouted rows are exactly zero in the pooled output too.
    let pool = ThreadPool::new(4).unwrap();
    let out = moe
        .forward(&x, &routing, Some(&pool), SchedulePolicy::Dynamic)
        .unwrap();
    for t in (0..n_tokens).filter(|t| t % 4 == 2) {
        assert!(out.row(t).iter().all(|&v| v == 0.0), "row {t} not zero");
    }
}

/// Skewed weights with heavy expert overlap across chunk boundaries:
/// token t activates experts {t % E, (t+1) % E, (t+2) % E} so every
/// chunk boundary splits several buckets.
#[test]
fn overlapping_buckets_across_chunks_match_serial() {
    let moe = pool_of_experts(27);
    let mut rng = seeded(28);
    let n_tokens = 41;
    let x = Matrix::random_uniform(n_tokens, HIDDEN, 1.0, &mut rng).unwrap();
    let assignments: Vec<Vec<(usize, f32)>> = (0..n_tokens)
        .map(|t| {
            (0..3)
                .map(|j| ((t + j) % N_EXPERTS, 1.0 / (1.0 + j as f32)))
                .collect()
        })
        .collect();
    let routing = MoeRouting::new(assignments);
    assert_bitwise_parallel(&moe, &x, &routing, "overlap");
}
