//! Property tests for the fused-dequant GEMV microkernels and the
//! quantized checkpoint round-trip.
//!
//! The serving contract of the int8/int4 hot path is **bitwise**
//! SIMD-level independence: for every panel, group size, reduction
//! length and forced SIMD level, the fused-dequant kernels must
//! produce exactly the bytes of the scalar golden reference (same
//! widen, one IEEE scale multiply, one correctly-rounded FMA per
//! K-step, ascending order). That property is what keeps chunked
//! prefill bitwise-identical to monolithic prefill on quantized
//! models regardless of which microkernel the dispatcher picks.
//!
//! The round-trip property pins the checkpoint format: pack →
//! write_to → read_from must reproduce the packed payload exactly
//! (same panel bytes, scales and stored size), so a model loaded from
//! disk serves bit-identical logits to the freshly packed one.

use kt_kernels::simd::{
    self, gemv_bf16_scalar, gemv_int4_scalar, gemv_int8_scalar, with_forced_simd_level,
};
use kt_kernels::SimdLevel;
use kt_tensor::rng::{fill_uniform, seeded};
use kt_tensor::{Matrix, PackedWeights, WeightDtype, NR};
use proptest::prelude::*;

const LEVELS: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Avx2Fma, SimdLevel::Avx512];

/// A random matrix packed at `dtype`, plus a random input vector.
fn packed_fixture(n: usize, k: usize, dtype: WeightDtype, seed: u64) -> (PackedWeights, Vec<f32>) {
    let mut rng = seeded(seed);
    let w = Matrix::random_uniform(n, k, 1.0, &mut rng).expect("weights");
    let packed = PackedWeights::pack(&w, dtype).expect("pack");
    let mut x = vec![0.0f32; k];
    fill_uniform(&mut rng, &mut x, 1.0);
    (packed, x)
}

/// Dequantized matvec on the unpacked weights (independent reference;
/// plain mul/add, so compared with a tolerance, not bitwise).
fn unpacked_matvec(packed: &PackedWeights, x: &[f32]) -> Vec<f32> {
    let w = packed.unpack();
    (0..packed.n())
        .map(|r| {
            w.row(r)
                .iter()
                .zip(x)
                .map(|(&wv, &xv)| wv as f64 * xv as f64)
                .sum::<f64>() as f32
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every SIMD level of every fused-dequant GEMV produces exactly
    /// the scalar golden reference's bytes, across group sizes,
    /// reduction lengths (including ones that leave an odd int4 tail
    /// within the last pair) and seeded accumulators; and the shared
    /// result tracks the unpacked-weight matvec within quantization-
    /// free rounding error.
    #[test]
    fn fused_dequant_gemv_is_bitwise_simd_level_independent(
        seed in 0u64..1_000,
        n in 1usize..40,
        group_sel in 0usize..3,
        mult in 1usize..5,
        which in 0usize..3,
    ) {
        let group = [8usize, 16, 32][group_sel];
        let k = group * mult;
        let dtype = match which {
            0 => WeightDtype::Bf16,
            1 => WeightDtype::Int8 { group },
            _ => WeightDtype::Int4 { group },
        };
        let (packed, x) = packed_fixture(n, k, dtype, seed);
        let reference = unpacked_matvec(&packed, &x);

        for p in 0..packed.n_panels() {
            // Scalar golden reference for this panel.
            let mut want = [0.0f32; NR];
            match dtype {
                WeightDtype::Bf16 => gemv_bf16_scalar(&x, packed.panel_bf16(p), &mut want),
                WeightDtype::Int8 { group } => gemv_int8_scalar(
                    &x, packed.panel_bytes(p), packed.panel_scales(p), group, &mut want,
                ),
                WeightDtype::Int4 { group } => gemv_int4_scalar(
                    &x, packed.panel_bytes(p), packed.panel_scales(p), group, &mut want,
                ),
                WeightDtype::F32 => unreachable!(),
            }

            for level in LEVELS {
                let mut acc = [0.0f32; NR];
                with_forced_simd_level(level, || match dtype {
                    WeightDtype::Bf16 => simd::gemv_bf16(&x, packed.panel_bf16(p), &mut acc),
                    WeightDtype::Int8 { group } => simd::gemv_int8(
                        &x, packed.panel_bytes(p), packed.panel_scales(p), group, &mut acc,
                    ),
                    WeightDtype::Int4 { group } => simd::gemv_int4(
                        &x, packed.panel_bytes(p), packed.panel_scales(p), group, &mut acc,
                    ),
                    WeightDtype::F32 => unreachable!(),
                });
                let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                let acc_bits: Vec<u32> = acc.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    &want_bits, &acc_bits,
                    "panel {} diverged from scalar at {:?} ({:?})", p, level, dtype
                );
            }

            // Semantic cross-check against the unpacked weights for the
            // rows this panel actually covers.
            for (j, &got) in want.iter().enumerate() {
                let r = p * NR + j;
                if r >= packed.n() {
                    continue;
                }
                let err = (got as f64 - reference[r] as f64).abs();
                let tol = 1e-4 * (1.0 + reference[r].abs() as f64) * k as f64;
                prop_assert!(
                    err <= tol,
                    "row {} off by {} (got {}, want {})", r, err, got, reference[r]
                );
            }
        }
    }

    /// Staged dequantization (the tiled-GEMM path) is bitwise
    /// SIMD-level independent over arbitrary `[k0, k1)` windows.
    #[test]
    fn staged_dequant_is_bitwise_simd_level_independent(
        seed in 0u64..1_000,
        group_sel in 0usize..3,
        mult in 1usize..5,
        cut_a in 0usize..160,
        cut_b in 0usize..160,
        which in 0usize..3,
    ) {
        let group = [8usize, 16, 32][group_sel];
        let k = group * mult;
        let (k0, k1) = {
            let a = cut_a % (k + 1);
            let b = cut_b % (k + 1);
            (a.min(b), a.max(b))
        };
        let dtype = match which {
            0 => WeightDtype::Bf16,
            1 => WeightDtype::Int8 { group },
            _ => WeightDtype::Int4 { group },
        };
        let (packed, _x) = packed_fixture(20, k, dtype, seed);

        for p in 0..packed.n_panels() {
            let mut want = vec![f32::NAN; (k1 - k0) * NR];
            with_forced_simd_level(SimdLevel::Scalar, || match dtype {
                WeightDtype::Bf16 => simd::stage_bf16(packed.panel_bf16(p), k0, k1, &mut want),
                WeightDtype::Int8 { group } => simd::stage_int8(
                    packed.panel_bytes(p), packed.panel_scales(p), group, k0, k1, &mut want,
                ),
                WeightDtype::Int4 { group } => simd::stage_int4(
                    packed.panel_bytes(p), packed.panel_scales(p), group, k0, k1, &mut want,
                ),
                WeightDtype::F32 => unreachable!(),
            });
            for level in LEVELS {
                let mut buf = vec![f32::NAN; (k1 - k0) * NR];
                with_forced_simd_level(level, || match dtype {
                    WeightDtype::Bf16 => simd::stage_bf16(packed.panel_bf16(p), k0, k1, &mut buf),
                    WeightDtype::Int8 { group } => simd::stage_int8(
                        packed.panel_bytes(p), packed.panel_scales(p), group, k0, k1, &mut buf,
                    ),
                    WeightDtype::Int4 { group } => simd::stage_int4(
                        packed.panel_bytes(p), packed.panel_scales(p), group, k0, k1, &mut buf,
                    ),
                    WeightDtype::F32 => unreachable!(),
                });
                let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                let buf_bits: Vec<u32> = buf.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    &want_bits, &buf_bits,
                    "stage window [{}, {}) diverged at {:?} ({:?})", k0, k1, level, dtype
                );
            }
        }
    }

    /// The checkpoint round-trip of quantized weights is exact: the
    /// reloaded `PackedWeights` has the same dtype, shape, stored
    /// size, panel payloads and scales — and therefore serves bitwise
    /// the same GEMV results.
    #[test]
    fn quantized_checkpoint_roundtrip_is_exact(
        seed in 0u64..1_000,
        n in 1usize..40,
        group_sel in 0usize..3,
        mult in 1usize..5,
        which in 0usize..4,
    ) {
        let group = [8usize, 16, 32][group_sel];
        let k = group * mult;
        let dtype = match which {
            0 => WeightDtype::F32,
            1 => WeightDtype::Bf16,
            2 => WeightDtype::Int8 { group },
            _ => WeightDtype::Int4 { group },
        };
        let (packed, x) = packed_fixture(n, k, dtype, seed);

        let mut blob = Vec::new();
        packed.write_to(&mut blob).expect("serialize");
        let reloaded = PackedWeights::read_from(&mut blob.as_slice()).expect("deserialize");

        prop_assert_eq!(reloaded.dtype(), packed.dtype());
        prop_assert_eq!(reloaded.n(), packed.n());
        prop_assert_eq!(reloaded.k(), packed.k());
        prop_assert_eq!(reloaded.stored_bytes(), packed.stored_bytes());
        for p in 0..packed.n_panels() {
            prop_assert_eq!(reloaded.panel_bytes(p), packed.panel_bytes(p), "panel {} payload", p);
            prop_assert_eq!(reloaded.panel_scales(p), packed.panel_scales(p), "panel {} scales", p);
        }

        // The reloaded weights serve the same bits.
        if let WeightDtype::Int8 { group } = dtype {
            for p in 0..packed.n_panels() {
                let mut a = [0.0f32; NR];
                let mut b = [0.0f32; NR];
                simd::gemv_int8(&x, packed.panel_bytes(p), packed.panel_scales(p), group, &mut a);
                simd::gemv_int8(&x, reloaded.panel_bytes(p), reloaded.panel_scales(p), group, &mut b);
                let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(a_bits, b_bits);
            }
        }
    }
}
