//! Structural smoke tests over every figure/table regenerator: each
//! experiment function must produce complete, well-formed, correctly
//! ordered data (values are asserted in the crates' own tests; here we
//! guard the cross-crate wiring the bench binaries depend on).

use ktransformers::hwsim::experiments::{
    ablation_graph, ablation_numa, fig10_deferral_study, fig11_prefill, fig12_decode,
    fig14_breakdown, fig3_kernel_throughput, fig4_launch_analysis, fig7_kernel_latency,
    Deployment,
};
use ktransformers::hwsim::Calibration;
use ktransformers::model::ModelPreset;

fn cal() -> Calibration {
    Calibration::default()
}

#[test]
fn table1_params_match_paper_within_tolerance() {
    let expect = [
        (ModelPreset::DeepSeekV3, 671.0, 17.0, 654.0),
        (ModelPreset::DeepSeekV2, 236.0, 13.0, 223.0),
        (ModelPreset::Qwen2Moe, 57.0, 8.0, 49.0),
    ];
    for (preset, total, gpu, cpu) in expect {
        let c = preset.full_config();
        let b = |v: u64| v as f64 / 1e9;
        assert!((b(c.total_params()) - total).abs() / total < 0.08, "{preset:?} total");
        assert!((b(c.gpu_params()) - gpu).abs() / gpu < 0.35, "{preset:?} gpu");
        assert!((b(c.cpu_params()) - cpu).abs() / cpu < 0.05, "{preset:?} cpu");
    }
}

#[test]
fn fig3_and_fig7_are_complete() {
    let f3 = fig3_kernel_throughput(&cal());
    assert_eq!(f3.len(), 3);
    for s in &f3 {
        assert_eq!(s.points.len(), 11);
        assert!(s.points.iter().all(|p| p.y.is_finite() && p.y > 0.0));
    }
    let f7 = fig7_kernel_latency(&cal());
    assert_eq!(f7.len(), 3);
    for (_, series) in &f7 {
        assert_eq!(series.len(), 2);
    }
}

#[test]
fn fig4_and_fig10_are_complete() {
    let f4 = fig4_launch_analysis(&cal()).unwrap();
    assert_eq!(f4.len(), 3);
    let f10 = fig10_deferral_study(&cal()).unwrap();
    assert_eq!(
        f10.iter().map(|r| r.n_deferred).collect::<Vec<_>>(),
        vec![0, 2, 3, 4]
    );
}

#[test]
fn fig11_and_fig12_cover_all_deployments() {
    let prompts = [32usize, 512, 8192];
    let f11 = fig11_prefill(&cal(), &prompts).unwrap();
    assert_eq!(f11.len(), Deployment::all().len());
    for (_, series) in &f11 {
        assert_eq!(series.len(), 3, "three systems");
        for s in series {
            assert_eq!(s.points.len(), prompts.len());
        }
    }
    let f12 = fig12_decode(&cal()).unwrap();
    assert_eq!(f12.len(), 6);
    for (_, series) in &f12 {
        assert_eq!(series.len(), 4, "three systems + deferral variant");
    }
}

#[test]
fn prefill_throughput_grows_with_prompt_length() {
    // Figure 11's universal shape: throughput rises with prompt length
    // for every system (amortized weight traffic).
    let prompts = [32usize, 512, 8192];
    let f11 = fig11_prefill(&cal(), &prompts).unwrap();
    for (dep, series) in &f11 {
        for s in series {
            assert!(
                s.points[2].y > s.points[0].y,
                "{} / {}: prefill must speed up with longer prompts",
                dep.label(),
                s.name
            );
        }
    }
}

#[test]
fn fig14_has_six_stages_for_three_models() {
    let f14 = fig14_breakdown(&cal()).unwrap();
    assert_eq!(f14.len(), 3);
    for (_, stages) in &f14 {
        assert_eq!(stages.len(), 6);
        // Baseline is normalized to 1.0.
        assert!((stages[0].1 - 1.0).abs() < 1e-9);
        assert!((stages[0].2 - 1.0).abs() < 1e-9);
    }
}

#[test]
fn ablations_report_gains() {
    let numa = ablation_numa(&cal()).unwrap();
    assert!(numa[1].1 > numa[0].1);
    let graph = ablation_graph(&cal()).unwrap();
    assert!(graph[1].1 > graph[0].1);
}
