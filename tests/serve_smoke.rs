//! Smoke test for the serving layer through the facade crate: a
//! server comes up over a tiny engine, serves a handful of concurrent
//! requests end to end, and shuts down cleanly. Run directly in CI as
//! `cargo test --test serve_smoke`.

use ktransformers::core::{EngineConfig, HybridEngine, SchedMode};
use ktransformers::model::ModelPreset;
use ktransformers::serve::{Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn serve_smoke() {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = Arc::new(
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                seed: 11,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let server = Server::start(
        engine,
        ServerConfig {
            max_batch: 4,
            ..Default::default()
        },
    )
    .expect("valid config");

    let handles: Vec<_> = (0..4)
        .map(|i| server.submit(Request::greedy(&[i + 1, 2 * i + 1, 7], 6)))
        .collect();
    for (i, h) in handles.iter().enumerate() {
        let result = h
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("request {i} did not resolve"));
        assert!(result.is_completed(), "request {i}: {:?}", result.outcome);
        assert_eq!(result.tokens.len(), 6);
        assert!(result.metrics.ttft_ns.is_some());
    }

    let stats = server.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.tokens_generated, 24);
    assert!(stats.mean_occupancy() >= 1.0);
    server.shutdown();
}
