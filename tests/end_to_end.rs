//! Cross-crate integration tests: configuration-driven injection wired
//! into the live engine, and engine/model semantic agreement.

use ktransformers::core::{DeviceKind, EngineConfig, HybridEngine, PlacementPlan, SchedMode};
use ktransformers::inject::{inject, ModuleTree, OperatorRegistry};
use ktransformers::kernels::dispatch::Backend;
use ktransformers::model::{ExecMode, ModelPreset, MoeModel};
use ktransformers::tensor::{PrecisionPolicy, WeightDtype};

/// A quantized-deployment rule file in the paper's format.
const CONFIG: &str = r#"
- match:
    class: modeling_deepseek_v3.DeepseekV3MoE
  replace:
    class: operators.experts.FusedMoE
    device: "cpu"
    kwargs:
      backend: "hybrid_AMX_AVX512"
      data_type: "Int4"
      n_deferred_experts: 3
"#;

/// Parses the injected kwargs of the MoE replacement into an engine
/// configuration — YAML drives the runtime, as §5 intends.
fn engine_config_from_yaml(tree_cfg: &str) -> (EngineConfig, Backend) {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let mut tree = ModuleTree::hf_moe_model(
        "modeling_deepseek_v3.DeepseekV3",
        cfg.n_layers,
        cfg.n_dense_layers,
        true,
    );
    let report = inject(&mut tree, tree_cfg, &OperatorRegistry::builtin()).expect("inject");
    assert!(report.total() > 0);
    let moe = tree
        .find("model.layers.1.mlp")
        .expect("moe module replaced");
    assert_eq!(moe.class, "operators.experts.FusedMoE");
    assert_eq!(moe.device, "cpu");
    let get = |key: &str| {
        moe.kwargs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .expect("kwarg present")
    };
    let backend = Backend::parse(&get("backend")).expect("known backend");
    let dtype = match get("data_type").as_str() {
        "Int4" => WeightDtype::Int4 { group: 16 },
        "Int8" => WeightDtype::Int8 { group: 16 },
        _ => WeightDtype::F32,
    };
    let n_deferred: usize = get("n_deferred_experts").parse().expect("integer");
    (
        EngineConfig {
            n_cpu_workers: 2,
            mode: SchedMode::AsyncGraph,
            n_deferred,
            precision: PrecisionPolicy::experts(dtype),
            seed: 99,
            ..Default::default()
        },
        backend,
    )
}

#[test]
fn yaml_config_drives_the_engine() {
    let (econfig, backend) = engine_config_from_yaml(CONFIG);
    assert_eq!(backend, Backend::HybridAmxAvx512);
    assert_eq!(econfig.n_deferred, 3);
    assert!(matches!(econfig.precision.routed, WeightDtype::Int4 { .. }));

    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = HybridEngine::random(&cfg, econfig).expect("engine");
    let out = engine.generate_greedy(&[1, 2, 3], 8).expect("generation");
    assert_eq!(out.len(), 8);
    // The engine really deferred: decode graph replays exist and each
    // replay covers many ops.
    let stats = engine.launch_stats();
    assert!(stats.graph_replays >= 7);
}

#[test]
fn placement_plan_matches_injection_split() {
    // The YAML places routed experts on cpu; PlacementPlan::for_model
    // must agree for every MoE layer.
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let plan = PlacementPlan::for_model(&cfg);
    let mut tree = ModuleTree::hf_moe_model(
        "modeling_deepseek_v3.DeepseekV3",
        cfg.n_layers,
        cfg.n_dense_layers,
        true,
    );
    inject(&mut tree, CONFIG, &OperatorRegistry::builtin()).expect("inject");
    for layer in cfg.n_dense_layers..cfg.n_layers {
        let injected = tree.find(&format!("model.layers.{layer}.mlp")).unwrap();
        assert_eq!(injected.device, "cpu");
        assert_eq!(
            plan.device_of(&format!("model.layers.{layer}.mlp.experts")),
            Some(DeviceKind::Cpu)
        );
    }
}

#[test]
fn engine_and_model_share_deferral_semantics() {
    // Same qualitative behavior on both stacks: zero deferral is exact,
    // deferral perturbs decode less than skipping perturbs it.
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let model = MoeModel::random(&cfg, WeightDtype::F32, 5).expect("model");
    let mut c1 = model.new_cache();
    let mut c2 = model.new_cache();
    let mut c3 = model.new_cache();
    let prompt = [4u32, 9, 33];
    let _ = model
        .forward(&prompt, &mut c1, ExecMode::Standard, None)
        .unwrap();
    let _ = model
        .forward(&prompt, &mut c2, ExecMode::Standard, None)
        .unwrap();
    let _ = model
        .forward(&prompt, &mut c3, ExecMode::Standard, None)
        .unwrap();
    let std_l = model
        .forward(&[7], &mut c1, ExecMode::Standard, None)
        .unwrap();
    let def_l = model
        .forward(&[7], &mut c2, ExecMode::Deferred { n_immediate: 2 }, None)
        .unwrap();
    let skip_l = model
        .forward(&[7], &mut c3, ExecMode::Skipped { n_kept: 2 }, None)
        .unwrap();
    let d_def = std_l.relative_error(&def_l);
    let d_skip = std_l.relative_error(&skip_l);
    assert!(d_def < d_skip, "deferral {d_def} vs skipping {d_skip}");

    // Engine: sync and graph scheduling agree bit-for-bit.
    let mk = |mode| {
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode,
                n_deferred: 2,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let sync = mk(SchedMode::Sync);
    let graph = mk(SchedMode::AsyncGraph);
    assert_eq!(
        sync.generate_greedy(&prompt, 6).unwrap(),
        graph.generate_greedy(&prompt, 6).unwrap()
    );
}

#[test]
fn checkpoint_flow_spans_the_stack() {
    // YAML-adapted engine -> checkpoint -> reload -> identical decode,
    // with quantized experts: the full deployment loop.
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let engine = ktransformers::adapt::engine_from_yaml(&cfg, CONFIG, 123).expect("adapt");
    let expect = engine.generate_greedy(&[10, 20, 30], 6).expect("generate");

    let mut checkpoint = Vec::new();
    engine.save(&mut checkpoint).expect("save");
    let reloaded = HybridEngine::load(
        &mut checkpoint.as_slice(),
        EngineConfig {
            n_cpu_workers: 2,
            mode: SchedMode::AsyncGraph,
            n_deferred: 3,
            seed: 0,
            ..Default::default()
        },
    )
    .expect("load");
    let got = reloaded.generate_greedy(&[10, 20, 30], 6).expect("generate");
    assert_eq!(expect, got);
}

#[test]
fn all_presets_run_end_to_end_with_quantized_experts() {
    for preset in ModelPreset::all() {
        let cfg = preset.tiny_config();
        let engine = HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                precision: PrecisionPolicy::experts(WeightDtype::Int8 { group: 16 }),
                seed: 11,
                ..Default::default()
            },
        )
        .expect("engine");
        let out = engine.generate_greedy(&[1, 2], 4).expect("generation");
        assert_eq!(out.len(), 4, "{preset:?}");
    }
}
