//! Cross-crate property-based tests on the system's core invariants.

use ktransformers::kernels::dispatch::Backend;
use ktransformers::kernels::gemm::gemm_auto;
use ktransformers::kernels::moe::{ExpertWeights, FusedMoE, MoeRouting};
use ktransformers::kernels::schedule::SchedulePolicy;
use ktransformers::tensor::rng::seeded;
use ktransformers::tensor::{Matrix, PackedWeights, WeightDtype};
use proptest::prelude::*;

fn routing_strategy(
    n_tokens: usize,
    n_experts: usize,
) -> impl Strategy<Value = MoeRouting> {
    proptest::collection::vec(
        proptest::collection::vec((0..n_experts, 0.05f32..1.0), 0..=4),
        n_tokens..=n_tokens,
    )
    .prop_map(|mut a| {
        // De-duplicate experts per token (routers never pick twice).
        for row in &mut a {
            row.sort_by_key(|&(e, _)| e);
            row.dedup_by_key(|&mut (e, _)| e);
        }
        MoeRouting::new(a)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The hybrid-dispatch kernel agrees with the reference matmul for
    /// random shapes and dtypes.
    #[test]
    fn gemm_auto_matches_reference(
        m in 1usize..10,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let k = 64usize;
        let mut rng = seeded(seed);
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng).unwrap();
        let wmat = Matrix::random_uniform(n, k, 1.0, &mut rng).unwrap();
        for dt in [WeightDtype::F32, WeightDtype::Int8 { group: 32 }] {
            let w = PackedWeights::pack(&wmat, dt).unwrap();
            let expect = a.matmul_wt(&w.unpack()).unwrap();
            let mut out = Matrix::zeros(m, n).unwrap();
            gemm_auto(&a, &w, &mut out, None).unwrap();
            let err = expect.relative_error(&out);
            prop_assert!(err < 1e-4, "dtype {dt:?} err {err}");
        }
    }

    /// MoE linearity: splitting any routing into two parts and summing
    /// the partial outputs reproduces the full output — the invariant
    /// Expert Deferral is built on.
    #[test]
    fn moe_split_linearity(
        routing in routing_strategy(5, 6),
        n_imm in 0usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = seeded(seed);
        let moe = FusedMoE::random(6, 24, 32, WeightDtype::F32,
            Backend::HybridAmxAvx512, &mut rng).unwrap();
        let x = Matrix::random_uniform(5, 24, 1.0, &mut rng).unwrap();
        let full = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let (imm, def) = routing.split_deferred(n_imm);
        prop_assert_eq!(imm.n_activations() + def.n_activations(), routing.n_activations());
        let mut sum = moe.forward(&x, &imm, None, SchedulePolicy::Dynamic).unwrap();
        moe.forward_accumulate(&x, &def, &mut sum, None, SchedulePolicy::Dynamic).unwrap();
        let err = full.relative_error(&sum);
        prop_assert!(err < 1e-4, "err {err}");
    }

    /// Routing weights scale outputs linearly.
    #[test]
    fn moe_weight_scaling(scale in 0.1f32..4.0, seed in 0u64..200) {
        let mut rng = seeded(seed);
        let moe = FusedMoE::random(4, 16, 24, WeightDtype::F32,
            Backend::HybridAmxAvx512, &mut rng).unwrap();
        let x = Matrix::random_uniform(2, 16, 1.0, &mut rng).unwrap();
        let base = MoeRouting::new(vec![vec![(1, 1.0)], vec![(3, 1.0)]]);
        let scaled = MoeRouting::new(vec![vec![(1, scale)], vec![(3, scale)]]);
        let y1 = moe.forward(&x, &base, None, SchedulePolicy::Dynamic).unwrap();
        let y2 = moe.forward(&x, &scaled, None, SchedulePolicy::Dynamic).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * a.abs().max(1.0) * scale.max(1.0));
        }
    }

    /// Quantizing expert weights perturbs the MoE output by a bounded
    /// amount (Int8 stays within a few percent).
    #[test]
    fn quantized_moe_error_is_bounded(seed in 0u64..200) {
        let mut rng = seeded(seed);
        let hidden = 32;
        let inter = 32;
        let gate = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
        let up = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
        let down = Matrix::random_kaiming(hidden, inter, &mut rng).unwrap();
        let f32e = ExpertWeights::from_matrices(&gate, &up, &down, WeightDtype::F32).unwrap();
        let i8e = ExpertWeights::from_matrices(&gate, &up, &down,
            WeightDtype::Int8 { group: 16 }).unwrap();
        let full = FusedMoE::new(vec![f32e], Backend::HybridAmxAvx512).unwrap();
        let quant = FusedMoE::new(vec![i8e], Backend::HybridAmxAvx512).unwrap();
        let x = Matrix::random_uniform(3, hidden, 1.0, &mut rng).unwrap();
        let routing = MoeRouting::new(vec![vec![(0, 1.0)]; 3]);
        let a = full.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let b = quant.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let err = a.relative_error(&b);
        prop_assert!(err < 0.06, "int8 err {err}");
    }
}
