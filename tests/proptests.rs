//! Cross-crate property-based tests on the system's core invariants.

use ktransformers::core::{BatchSeq, EngineConfig, HybridEngine, SchedMode};
use ktransformers::kernels::dispatch::Backend;
use ktransformers::model::ModelPreset;
use ktransformers::kernels::gemm::gemm_auto;
use ktransformers::kernels::moe::{ExpertWeights, FusedMoE, MoeRouting};
use ktransformers::kernels::schedule::SchedulePolicy;
use ktransformers::tensor::rng::seeded;
use ktransformers::tensor::{Matrix, PackedWeights, WeightDtype};
use proptest::prelude::*;

fn routing_strategy(
    n_tokens: usize,
    n_experts: usize,
) -> impl Strategy<Value = MoeRouting> {
    proptest::collection::vec(
        proptest::collection::vec((0..n_experts, 0.05f32..1.0), 0..=4),
        n_tokens..=n_tokens,
    )
    .prop_map(|mut a| {
        // De-duplicate experts per token (routers never pick twice).
        for row in &mut a {
            row.sort_by_key(|&(e, _)| e);
            row.dedup_by_key(|&mut (e, _)| e);
        }
        MoeRouting::new(a)
    })
}

/// Greedy pick: highest logit, earliest index on ties.
fn argmax(row: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best as u32
}

/// Turns proptest-drawn raw cut sizes into an exact cover of `total`.
fn chunks_covering(total: usize, raw: &[usize]) -> Vec<usize> {
    let mut chunks = Vec::new();
    let mut left = total;
    for &c in raw {
        if left == 0 {
            break;
        }
        let take = c.clamp(1, left);
        chunks.push(take);
        left -= take;
    }
    if left > 0 {
        chunks.push(left);
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full engine's chunk-invariance contract, end to end: a
    /// prompt prefilled through `forward_batch` in random chunks —
    /// with a concurrent decode row sharing every step, as the serving
    /// scheduler composes them — produces bitwise the logits and KV
    /// state of a solo monolithic prefill, and the bystander decode
    /// row's greedy continuation is exactly what it decodes alone.
    /// (TiledOnly pins one kernel class so expert GEMMs are invariant
    /// to how many tokens share a step — the serve-equivalence
    /// convention; position-dependent math is row-stable under any
    /// backend.)
    #[test]
    fn engine_chunked_prefill_with_concurrent_decode_is_bitwise(
        seed in 0u64..500,
        prompt_len in 1usize..13,
        raw_chunks in proptest::collection::vec(1usize..5, 0..10),
    ) {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let e = HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::Sync,
                n_deferred: 2,
                backend: Backend::TiledOnly,
                seed: 31,
                ..Default::default()
            },
        )
        .unwrap();
        let prompt: Vec<u32> =
            (0..prompt_len).map(|i| ((seed + i as u64 * 37) % 251) as u32).collect();
        let chunks = chunks_covering(prompt_len, &raw_chunks);

        // Monolithic reference: the whole prompt in one solo step.
        let mut mono = vec![BatchSeq::prefill(e.fresh_cache(), prompt.clone())];
        let mut ref_logits = e.forward_batch(&mut mono).unwrap();
        let ref_logits = ref_logits[0].take().unwrap();

        // A bystander sequence mid-generation: prefill its prompt,
        // then precompute the greedy tokens it decodes when running
        // alone, one step per upcoming chunk.
        let dec_prompt = [3u32, 1, 4];
        let mut dec = vec![BatchSeq::prefill(e.fresh_cache(), dec_prompt.to_vec())];
        let mut first = e.forward_batch(&mut dec).unwrap();
        let first = first[0].take().unwrap();
        let first = argmax(first.row(first.rows() - 1));
        let dec_cache = dec.pop().unwrap().cache;
        let mut solo = vec![BatchSeq::decode(dec_cache.clone(), first)];
        let mut expect_dec = Vec::with_capacity(chunks.len());
        for _ in &chunks {
            let mut l = e.forward_batch(&mut solo).unwrap();
            let l = l[0].take().unwrap();
            let t = argmax(l.row(0));
            expect_dec.push(t);
            solo[0].tokens = vec![t];
        }

        // Mixed steps: one prefill chunk + the decode row per step.
        let mut batch = vec![
            BatchSeq::prefill(e.fresh_cache(), Vec::new()),
            BatchSeq::decode(dec_cache, first),
        ];
        let mut start = 0;
        for (ci, &len) in chunks.iter().enumerate() {
            batch[0].tokens = prompt[start..start + len].to_vec();
            let mut logits = e.forward_batch(&mut batch).unwrap();
            let l0 = logits[0].take().unwrap();
            for t in 0..len {
                prop_assert_eq!(
                    l0.row(t),
                    ref_logits.row(start + t),
                    "chunked logits diverged at position {} (chunks {:?})",
                    start + t,
                    &chunks
                );
            }
            let l1 = logits[1].take().unwrap();
            let t = argmax(l1.row(l1.rows() - 1));
            prop_assert_eq!(
                t, expect_dec[ci],
                "concurrent decode row perturbed by prefill chunks"
            );
            batch[1].tokens = vec![t];
            start += len;
        }

        // KV state bitwise identical to the monolithic cache.
        let mono_cache = &mono[0].cache;
        let chunked_cache = &batch[0].cache;
        prop_assert_eq!(chunked_cache.seq_len(), prompt.len());
        for layer in 0..mono_cache.n_layers() {
            for pos in 0..prompt.len() {
                prop_assert_eq!(
                    mono_cache.layer(layer).k_row(pos),
                    chunked_cache.layer(layer).k_row(pos),
                    "layer {} k row {} diverged", layer, pos
                );
                prop_assert_eq!(
                    mono_cache.layer(layer).v_row(pos),
                    chunked_cache.layer(layer).v_row(pos),
                    "layer {} v row {} diverged", layer, pos
                );
            }
        }
    }

    /// The hybrid-dispatch kernel agrees with the reference matmul for
    /// random shapes and dtypes.
    #[test]
    fn gemm_auto_matches_reference(
        m in 1usize..10,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let k = 64usize;
        let mut rng = seeded(seed);
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng).unwrap();
        let wmat = Matrix::random_uniform(n, k, 1.0, &mut rng).unwrap();
        for dt in [WeightDtype::F32, WeightDtype::Int8 { group: 32 }] {
            let w = PackedWeights::pack(&wmat, dt).unwrap();
            let expect = a.matmul_wt(&w.unpack()).unwrap();
            let mut out = Matrix::zeros(m, n).unwrap();
            gemm_auto(&a, &w, &mut out, None).unwrap();
            let err = expect.relative_error(&out);
            prop_assert!(err < 1e-4, "dtype {dt:?} err {err}");
        }
    }

    /// MoE linearity: splitting any routing into two parts and summing
    /// the partial outputs reproduces the full output — the invariant
    /// Expert Deferral is built on.
    #[test]
    fn moe_split_linearity(
        routing in routing_strategy(5, 6),
        n_imm in 0usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = seeded(seed);
        let moe = FusedMoE::random(6, 24, 32, WeightDtype::F32,
            Backend::HybridAmxAvx512, &mut rng).unwrap();
        let x = Matrix::random_uniform(5, 24, 1.0, &mut rng).unwrap();
        let full = moe.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let (imm, def) = routing.split_deferred(n_imm);
        prop_assert_eq!(imm.n_activations() + def.n_activations(), routing.n_activations());
        let mut sum = moe.forward(&x, &imm, None, SchedulePolicy::Dynamic).unwrap();
        moe.forward_accumulate(&x, &def, &mut sum, None, SchedulePolicy::Dynamic).unwrap();
        let err = full.relative_error(&sum);
        prop_assert!(err < 1e-4, "err {err}");
    }

    /// Routing weights scale outputs linearly.
    #[test]
    fn moe_weight_scaling(scale in 0.1f32..4.0, seed in 0u64..200) {
        let mut rng = seeded(seed);
        let moe = FusedMoE::random(4, 16, 24, WeightDtype::F32,
            Backend::HybridAmxAvx512, &mut rng).unwrap();
        let x = Matrix::random_uniform(2, 16, 1.0, &mut rng).unwrap();
        let base = MoeRouting::new(vec![vec![(1, 1.0)], vec![(3, 1.0)]]);
        let scaled = MoeRouting::new(vec![vec![(1, scale)], vec![(3, scale)]]);
        let y1 = moe.forward(&x, &base, None, SchedulePolicy::Dynamic).unwrap();
        let y2 = moe.forward(&x, &scaled, None, SchedulePolicy::Dynamic).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * a.abs().max(1.0) * scale.max(1.0));
        }
    }

    /// Quantizing expert weights perturbs the MoE output by a bounded
    /// amount (Int8 stays within a few percent).
    #[test]
    fn quantized_moe_error_is_bounded(seed in 0u64..200) {
        let mut rng = seeded(seed);
        let hidden = 32;
        let inter = 32;
        let gate = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
        let up = Matrix::random_kaiming(inter, hidden, &mut rng).unwrap();
        let down = Matrix::random_kaiming(hidden, inter, &mut rng).unwrap();
        let f32e = ExpertWeights::from_matrices(&gate, &up, &down, WeightDtype::F32).unwrap();
        let i8e = ExpertWeights::from_matrices(&gate, &up, &down,
            WeightDtype::Int8 { group: 16 }).unwrap();
        let full = FusedMoE::new(vec![f32e], Backend::HybridAmxAvx512).unwrap();
        let quant = FusedMoE::new(vec![i8e], Backend::HybridAmxAvx512).unwrap();
        let x = Matrix::random_uniform(3, hidden, 1.0, &mut rng).unwrap();
        let routing = MoeRouting::new(vec![vec![(0, 1.0)]; 3]);
        let a = full.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let b = quant.forward(&x, &routing, None, SchedulePolicy::Dynamic).unwrap();
        let err = a.relative_error(&b);
        prop_assert!(err < 0.06, "int8 err {err}");
    }
}
