//! Quickstart: build a (scaled-down) DeepSeek-V3-architecture MoE model
//! and serve it with the KTransformers hybrid engine.
//!
//! Run with: `cargo run --release --example quickstart`

use ktransformers::core::{EngineConfig, HybridEngine, SchedMode};
use ktransformers::model::ModelPreset;
use ktransformers::tensor::{PrecisionPolicy, WeightDtype};

fn main() {
    // 1. Pick an architecture. `tiny_config` keeps DeepSeek-V3's shape
    //    (grouped sigmoid top-k routing, shared expert, MLA attention,
    //    leading dense layer) at laptop scale; `full_config` carries
    //    the real 671B dimensions for the simulator.
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    println!("model: {} ({} layers, {} routed experts, top-{})",
        cfg.name, cfg.n_layers, cfg.n_routed_experts, cfg.top_k);

    // 2. Build the hybrid engine: routed experts quantized to Int4 on
    //    the CPU backend, everything else on the virtual GPU, the whole
    //    decode path captured in a single graph, 3 experts deferred.
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 2,
            mode: SchedMode::AsyncGraph,
            n_deferred: 3,
            precision: PrecisionPolicy::experts(WeightDtype::Int4 { group: 16 }),
            seed: 42,
            ..Default::default()
        },
    )
    .expect("engine construction");

    // 3. Prefill a real text prompt (byte-level tokenizer: the tiny
    //    models use a 256-entry vocabulary, so UTF-8 bytes ARE tokens)
    //    and decode greedily. The weights are random, so the output is
    //    gibberish — the point is the full serving path.
    let prompt = ktransformers::model::tokenizer::encode("MoE models are ");
    let generated = engine.generate_greedy(&prompt, 16).expect("generation");
    println!("prompt tokens:    {prompt:?}");
    println!("generated tokens: {generated:?}");
    println!(
        "decoded (random weights => noise): {:?}",
        ktransformers::model::tokenizer::decode(&generated)
    );

    // 4. Inspect the scheduling stats: the decode path replays ONE
    //    graph per token instead of launching every op.
    let stats = engine.launch_stats();
    println!(
        "launches: {} individual kernels, {} graph replays covering {} ops",
        stats.kernel_launches, stats.graph_replays, stats.graph_ops
    );
    assert!(stats.graph_replays >= 15);
}
