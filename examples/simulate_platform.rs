//! Capacity planning with the hardware simulator: how would DeepSeek-V3
//! decode/prefill behave on *your* machine under each serving system?
//!
//! Demonstrates the `kt-hwsim` API on a custom platform (a 4-socket
//! server with a smaller GPU) — the workflow a user would follow before
//! buying hardware for local MoE deployment.
//!
//! Run with: `cargo run --release --example simulate_platform`

use ktransformers::hwsim::policy::{simulate, Phase, SystemPolicy};
use ktransformers::hwsim::workload::Precision;
use ktransformers::hwsim::{Calibration, CpuSpec, GpuSpec, Platform};
use ktransformers::model::ModelPreset;

fn main() {
    // A hypothetical deployment target: 4 sockets with slower DDR5 and
    // a 24 GB consumer GPU.
    let platform = Platform {
        cpu: CpuSpec {
            sockets: 4,
            cores_per_socket: 24,
            amx_peak_tflops: 49.2, // 24 cores at the same per-core rate
            avx512_tflops: 1.2,
            local_bw_gbs: 180.0,
            remote_bw_gbs: 90.0,
        },
        gpu: GpuSpec {
            tflops: 165.0,
            hbm_gbs: 1008.0,
            vram_gb: 24.0,
        },
        pcie_gbs: 32.0,
    };
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let cal = Calibration::default();

    println!("platform: {} sockets x {} GB/s local DRAM, {} TFLOPS GPU",
        platform.cpu.sockets, platform.cpu.local_bw_gbs, platform.gpu.tflops);
    println!("model: {} (Int4 experts)", cfg.name);
    println!();
    println!("{:<26} {:>14} {:>14}", "system", "prefill tok/s", "decode tok/s");
    for policy in [
        SystemPolicy::fiddler(),
        SystemPolicy::llamacpp(),
        SystemPolicy::ktransformers(),
        SystemPolicy::ktransformers_deferred(6),
    ] {
        let prefill = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Int4,
            Precision::Int4,
            Phase::Prefill { prompt: 4096 },
            &cal,
        )
        .expect("prefill sim");
        let decode = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Int4,
            Precision::Int4,
            Phase::Decode {
                prompt: 32,
                steps: 16,
            },
            &cal,
        )
        .expect("decode sim");
        println!(
            "{:<26} {:>14.1} {:>14.2}   (cpu {:.0}% / gpu {:.0}%)",
            policy.name,
            prefill.tokens_per_s,
            decode.tokens_per_s,
            decode.cpu_util * 100.0,
            decode.gpu_util * 100.0
        );
    }
    println!();
    println!("The simulator reproduces the paper's orderings; swap in your own");
    println!("CpuSpec/GpuSpec to size a deployment before buying hardware.");
}
