//! Expert-popularity profiling and hot-expert GPU placement — the
//! Fiddler-style path the paper describes for models *without* shared
//! experts (§1): profile routing on real traffic, pin the hottest
//! experts to the GPU, and verify outputs are unchanged (placement is
//! pure scheduling).
//!
//! Run with: `cargo run --release --example expert_placement`

use ktransformers::core::{EngineConfig, HybridEngine, SchedMode};
use ktransformers::model::ModelPreset;

fn main() {
    // Qwen2-style architecture: its popularity-based placement story is
    // the interesting one (DeepSeek's shared experts are always-hot by
    // construction).
    let cfg = ModelPreset::Qwen2Moe.tiny_config();
    let engine = HybridEngine::random(
        &cfg,
        EngineConfig {
            n_cpu_workers: 2,
            mode: SchedMode::AsyncGraph,
            n_gpu_experts: 4,
            seed: 77,
            ..Default::default()
        },
    )
    .expect("engine");

    // 1. Profile: run representative traffic.
    let prompts: [&[u32]; 3] = [&[1, 2, 3, 4, 5], &[90, 12, 44], &[200, 201, 202, 203]];
    for p in prompts {
        let _ = engine.generate_greedy(p, 6).expect("profiling traffic");
        engine.reset();
    }
    let profile = engine.expert_profile();
    let layer = cfg.n_dense_layers;
    println!(
        "layer {layer}: {} activations recorded, concentration {:.3} (1/E = {:.3})",
        profile.total(layer),
        profile.concentration(layer),
        1.0 / cfg.n_routed_experts as f64
    );
    println!("hottest experts of layer {layer}: {:?}", profile.hottest(layer, 4));

    // 2. Place: pin the 4 hottest experts per layer onto the GPU.
    let before = engine.generate_greedy(&[7, 8, 9], 8).expect("baseline");
    engine.reset();
    let pinned = engine.refresh_placement();
    println!("pinned {pinned} experts to the GPU across {} MoE layers", cfg.n_moe_layers());

    // 3. Verify: same tokens, different schedule.
    let after = engine.generate_greedy(&[7, 8, 9], 8).expect("pinned run");
    assert_eq!(before, after, "placement must not change outputs");
    println!("outputs identical with and without placement: {after:?}");

    // 4. Measure real utilization over a decode burst.
    engine.reset();
    let _ = engine.forward(&[7, 8, 9]).expect("prefill");
    let report = engine
        .measure_utilization(|| {
            for _ in 0..16 {
                engine.forward(&[11])?;
            }
            Ok(())
        })
        .expect("measurement");
    println!(
        "decode window: CPU workers {:.0}% busy, device {:.0}% busy, {:.1}% of device time on launches",
        report.cpu_util * 100.0,
        report.gpu_util * 100.0,
        report.gpu_overhead_frac * 100.0
    );
}
