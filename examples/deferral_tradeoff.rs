//! Expert Deferral trade-off study on a live engine: throughput gain
//! (with realistic injected launch latencies) against output
//! divergence, sweeping the number of deferred experts.
//!
//! Run with: `cargo run --release --example deferral_tradeoff`

use ktransformers::core::{EngineConfig, HybridEngine, SchedMode, VgpuConfig};
use ktransformers::eval::{kl_divergence, top1_agreement};
use ktransformers::model::ModelPreset;
use std::time::{Duration, Instant};

fn main() {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    let prompt = [3u32, 17, 40, 99, 7];
    let n_new = 12;

    let build = |n_deferred: usize| {
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred,
                vgpu: VgpuConfig {
                    launch_latency: Duration::from_micros(5),
                    graph_launch_latency: Duration::from_micros(5),
                    n_streams: 1,
                },
                seed: 9,
                ..Default::default()
            },
        )
        .expect("engine")
    };

    // Reference logits from the standard path.
    let reference = build(0);
    let ref_logits = collect_decode_logits(&reference, &prompt, n_new);

    println!("deferred  tok/s     KL vs standard  greedy agreement");
    for n_def in [0usize, 1, 2, 3, 4, 5] {
        let engine = build(n_def);
        // Warm up (captures the decode graph), then time decoding.
        let _ = engine.generate_greedy(&prompt, 2).expect("warmup");
        engine.reset();
        let start = Instant::now();
        let logits = collect_decode_logits(&engine, &prompt, n_new);
        let elapsed = start.elapsed().as_secs_f64();
        let tput = n_new as f64 / elapsed;

        let mut kl = 0.0;
        let mut agree = 0usize;
        for (a, b) in ref_logits.iter().zip(&logits) {
            kl += kl_divergence(a, b);
            agree += usize::from(top1_agreement(a, b));
        }
        println!(
            "{:<8}  {:<8.1}  {:<14.5}  {}/{}",
            n_def,
            tput,
            kl / n_new as f64,
            agree,
            n_new
        );
    }
    println!();
    println!("Deferring more experts increases CPU/GPU overlap (speed) while the");
    println!("residual architecture keeps outputs close — the Figure 10/13 trade.");
}

/// Prefills `prompt`, decodes `n_new` greedy tokens, returning each
/// step's logits.
fn collect_decode_logits(engine: &HybridEngine, prompt: &[u32], n_new: usize) -> Vec<Vec<f32>> {
    let logits = engine.forward(prompt).expect("prefill");
    let mut out = Vec::with_capacity(n_new);
    let mut next = ktransformers::model::model::argmax(logits.row(logits.rows() - 1));
    for _ in 0..n_new {
        let l = engine.forward(&[next]).expect("decode");
        let row = l.row(0).to_vec();
        next = ktransformers::model::model::argmax(&row);
        out.push(row);
    }
    out
}
