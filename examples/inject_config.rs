//! Module injection walkthrough: adapt a stock DeepSeek-V3 module tree
//! with the paper's Listing-1 YAML configuration, then build the
//! placement plan the engine uses.
//!
//! Run with: `cargo run --release --example inject_config`

use ktransformers::core::placement::PlacementPlan;
use ktransformers::inject::{inject, ModuleTree, OperatorRegistry};
use ktransformers::model::ModelPreset;

/// Listing 1 of the paper, verbatim structure.
const LISTING_1: &str = r#"
- match:
    class: modeling_deepseek_v3.DeepseekV3MoE
  replace:
    class: operators.experts.FusedMoE
    device: "cpu"
    kwargs:
      backend: "hybrid_AMX_AVX512"
      data_type: "Int4"
      n_deferred_experts: 6

- match:
    name: "^model\\.layers\\..*\\.self_attn$"
  replace:
    class: operators.attention.FlashInferMLA
    device: "cuda:0"

- match:
    name: "^(?!lm_head$).*"
    class: torch.nn.Linear
  replace:
    class: operators.linear.MarlinLinear
    device: "cuda:0"
    kwargs:
      data_type: "Int4"
"#;

fn main() {
    let cfg = ModelPreset::DeepSeekV3.tiny_config();
    // A HuggingFace-shaped module tree for the model.
    let mut tree = ModuleTree::hf_moe_model(
        "modeling_deepseek_v3.DeepseekV3",
        cfg.n_layers,
        cfg.n_dense_layers,
        cfg.n_shared_experts > 0,
    );
    println!("module tree: {} modules before injection", tree.len());

    let registry = OperatorRegistry::builtin();
    let report = inject(&mut tree, LISTING_1, &registry).expect("injection");
    println!("injection performed {} replacements:", report.total());
    for (i, count) in report.per_rule.iter().enumerate() {
        println!("  rule {}: {count} modules", i + 1);
    }

    // Show a few rewritten modules.
    for path in [
        "model.layers.1.mlp",
        "model.layers.1.self_attn",
        "model.layers.1.self_attn.q_proj",
        "lm_head",
    ] {
        let node = tree.find(path).expect("module exists");
        println!("  {:<35} -> {} on {}", node.path, node.class, node.device);
        for (k, v) in &node.kwargs {
            println!("  {:<35}    kwargs: {k} = {v}", "");
        }
    }

    // The same split expressed as a placement plan.
    let plan = PlacementPlan::for_model(&cfg);
    println!(
        "placement plan: {} modules on GPU, {} (routed expert lists) on CPU",
        plan.count(ktransformers::core::DeviceKind::Gpu),
        plan.count(ktransformers::core::DeviceKind::Cpu)
    );
}
