//! Facade crate re-exporting the KTransformers reproduction workspace,
//! plus [`adapt`]: configuration-driven engine construction (§5's
//! YAML-drives-everything workflow as a one-call API).
pub mod adapt;

pub use kt_core as core;
pub use kt_eval as eval;
pub use kt_hwsim as hwsim;
pub use kt_inject as inject;
pub use kt_kernels as kernels;
pub use kt_model as model;
pub use kt_serve as serve;
pub use kt_tensor as tensor;
