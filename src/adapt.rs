//! Configuration-driven engine construction: the §5 workflow end to
//! end. A YAML rule file is applied to the model's module tree, and the
//! injected `FusedMoE` kwargs (backend, quantization, deferral) become
//! the engine configuration — "a single YAML file drives the process".

use kt_core::{EngineConfig, HybridEngine};
use kt_inject::{inject, InjectError, ModuleTree, OperatorRegistry};
use kt_kernels::dispatch::Backend;
use kt_model::ModelConfig;
use kt_tensor::{PrecisionPolicy, WeightDtype};

/// Everything derived from applying a rule file to a model.
#[derive(Debug)]
pub struct AdaptedModel {
    /// The rewritten module tree.
    pub tree: ModuleTree,
    /// Engine configuration extracted from the injected kwargs.
    pub engine_config: EngineConfig,
    /// CPU kernel backend selected by the configuration.
    pub backend: Backend,
    /// Modules replaced by the rule file.
    pub replacements: usize,
}

/// Derives the class-name prefix for the module tree from the model
/// name ("DeepSeek-V3-0324" -> `modeling_deepseek_v3.DeepseekV3`).
fn class_prefix(cfg: &ModelConfig) -> String {
    let lower = cfg.name.to_lowercase();
    if lower.contains("deepseek-v3") {
        "modeling_deepseek_v3.DeepseekV3".into()
    } else if lower.contains("deepseek-v2") {
        "modeling_deepseek_v2.DeepseekV2".into()
    } else if lower.contains("qwen2") {
        "modeling_qwen2_moe.Qwen2Moe".into()
    } else {
        "modeling_generic.Generic".into()
    }
}

/// Applies a YAML rule file to `cfg`'s module tree and extracts an
/// engine configuration from the injected MoE operator's kwargs
/// (`backend`, `data_type`, `n_deferred_experts`, `n_gpu_experts`).
///
/// Unknown kwargs are ignored (forward compatibility); missing ones
/// keep [`EngineConfig::default`] values.
///
/// # Errors
///
/// Returns [`InjectError`] on parse/pattern/registry failures or when
/// no rule matched a MoE module.
pub fn adapt(cfg: &ModelConfig, yaml_rules: &str) -> Result<AdaptedModel, InjectError> {
    let mut tree = ModuleTree::hf_moe_model(
        &class_prefix(cfg),
        cfg.n_layers,
        cfg.n_dense_layers,
        cfg.n_shared_experts > 0,
    );
    let registry = OperatorRegistry::builtin();
    let report = inject(&mut tree, yaml_rules, &registry)?;

    // Find the injected MoE module (any MoE layer; they share kwargs).
    let moe_layer = cfg.n_dense_layers;
    let moe = tree
        .find(&format!("model.layers.{moe_layer}.mlp"))
        .filter(|n| n.class == "operators.experts.FusedMoE")
        .ok_or_else(|| {
            kt_inject::InjectError::rule(
                "no rule injected operators.experts.FusedMoE into a MoE layer",
            )
        })?;

    let kwarg = |key: &str| {
        moe.kwargs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let backend = kwarg("backend")
        .and_then(Backend::parse)
        .unwrap_or_default();
    // `data_type` quantizes the experts (the historical knob);
    // `precision: "quantized_serving"` selects the full per-role serving
    // preset (routed int4, shared/dense int8, attention + head F32).
    let precision = match kwarg("precision") {
        Some("quantized_serving") => PrecisionPolicy::quantized_serving(16),
        _ => match kwarg("data_type") {
            Some("Int4") => PrecisionPolicy::experts(WeightDtype::Int4 { group: 16 }),
            Some("Int8") => PrecisionPolicy::experts(WeightDtype::Int8 { group: 16 }),
            Some("BF16") => PrecisionPolicy::experts(WeightDtype::Bf16),
            _ => PrecisionPolicy::default(),
        },
    };
    let n_deferred = kwarg("n_deferred_experts")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let n_gpu_experts = kwarg("n_gpu_experts")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    Ok(AdaptedModel {
        engine_config: EngineConfig {
            n_deferred,
            n_gpu_experts,
            precision,
            backend,
            ..Default::default()
        },
        backend,
        replacements: report.total(),
        tree,
    })
}

/// One-call convenience: adapt per the YAML and build a runnable engine
/// with seeded random weights.
///
/// # Errors
///
/// Returns a human-readable error for injection or engine-construction
/// failures.
pub fn engine_from_yaml(
    cfg: &ModelConfig,
    yaml_rules: &str,
    seed: u64,
) -> Result<HybridEngine, String> {
    let adapted = adapt(cfg, yaml_rules).map_err(|e| e.to_string())?;
    let mut econfig = adapted.engine_config;
    econfig.seed = seed;
    HybridEngine::random(cfg, econfig).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_model::ModelPreset;

    const RULES: &str = r#"
- match:
    class: modeling_deepseek_v3.DeepseekV3MoE
  replace:
    class: operators.experts.FusedMoE
    device: "cpu"
    kwargs:
      backend: "hybrid_AMX_AVX512"
      data_type: "Int8"
      n_deferred_experts: 2
      n_gpu_experts: 3
"#;

    #[test]
    fn adapt_extracts_engine_config() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let adapted = adapt(&cfg, RULES).unwrap();
        assert_eq!(adapted.engine_config.n_deferred, 2);
        assert_eq!(adapted.engine_config.n_gpu_experts, 3);
        assert!(matches!(
            adapted.engine_config.precision.routed,
            WeightDtype::Int8 { .. }
        ));
        assert!(matches!(
            adapted.engine_config.precision.shared,
            WeightDtype::Int8 { .. }
        ));
        assert_eq!(adapted.engine_config.precision.attention, WeightDtype::F32);
        assert_eq!(adapted.backend, Backend::HybridAmxAvx512);
        assert_eq!(adapted.replacements, cfg.n_moe_layers());
    }

    #[test]
    fn precision_preset_kwarg_selects_serving_policy() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let rules = RULES.replace("data_type: \"Int8\"", "precision: \"quantized_serving\"");
        let adapted = adapt(&cfg, &rules).unwrap();
        let p = adapted.engine_config.precision;
        assert!(matches!(p.routed, WeightDtype::Int4 { .. }));
        assert!(matches!(p.shared, WeightDtype::Int8 { .. }));
        assert!(matches!(p.dense, WeightDtype::Int8 { .. }));
        assert_eq!(p.attention, WeightDtype::F32);
        assert_eq!(p.lm_head, WeightDtype::F32);
    }

    #[test]
    fn adapt_requires_a_moe_rule() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let no_moe = r#"
- match:
    name: "lm_head"
  replace:
    class: operators.linear.MarlinLinear
"#;
        assert!(adapt(&cfg, no_moe).is_err());
    }

    #[test]
    fn wrong_model_class_does_not_match() {
        // A DS-3 rule file applied to Qwen2 matches nothing — the §5
        // one-line-change property, inverted.
        let cfg = ModelPreset::Qwen2Moe.tiny_config();
        assert!(adapt(&cfg, RULES).is_err());
        let qwen_rules = RULES.replace(
            "modeling_deepseek_v3.DeepseekV3MoE",
            "modeling_qwen2_moe.Qwen2MoeMoE",
        );
        let adapted = adapt(&cfg, &qwen_rules).unwrap();
        assert_eq!(adapted.replacements, cfg.n_moe_layers());
    }

    #[test]
    fn engine_from_yaml_generates() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let engine = engine_from_yaml(&cfg, RULES, 7).unwrap();
        let out = engine.generate_greedy(&[1, 2, 3], 4).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(engine.engine_config().n_deferred, 2);
    }
}
